//! `ppdiv` — command-line runner for the Diversification protocol.
//!
//! Runs a single seeded simulation with configurable population, weights,
//! topology and horizon, printing colour-share snapshots and a final
//! property report. Useful for quick exploration without writing code.
//!
//! ```sh
//! cargo run --release --bin ppdiv -- --n 2000 --weights 1,1,2,4 --rounds 200
//! cargo run --release --bin ppdiv -- --n 1024 --weights 1,3 --topology cycle
//! cargo run --release --bin ppdiv -- --help
//! ```

use population_diversity::prelude::*;

#[derive(Debug)]
struct Args {
    n: usize,
    weights: Vec<f64>,
    topology: String,
    rounds: f64,
    seed: u64,
    snapshots: u32,
    start: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 1_000,
            weights: vec![1.0, 1.0, 2.0],
            topology: "complete".to_string(),
            rounds: 0.0, // 0 = auto (Theorem 1.3 budget)
            seed: 42,
            snapshots: 10,
            start: "balanced".to_string(),
        }
    }
}

const HELP: &str = "\
ppdiv — run the Diversification population protocol (PODC 2021)

USAGE:
    ppdiv [OPTIONS]

OPTIONS:
    --n <N>              population size                        [default: 1000]
    --weights <W1,W2,..> colour weights, each >= 1              [default: 1,1,2]
    --topology <NAME>    complete | cycle | torus | hypercube   [default: complete]
    --rounds <R>         parallel rounds to run (R*n steps);
                         0 = the Theorem 1.3 budget 4*w^2*n*ln n [default: 0]
    --seed <S>           RNG seed (runs are reproducible)       [default: 42]
    --snapshots <K>      progress rows to print                 [default: 10]
    --start <NAME>       balanced | proportional | minority     [default: balanced]
    --help               print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{HELP}");
            std::process::exit(0);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--n" => args.n = value.parse().map_err(|e| format!("--n: {e}"))?,
            "--weights" => {
                args.weights = value
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("--weights: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--topology" => args.topology = value,
            "--rounds" => args.rounds = value.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--snapshots" => {
                args.snapshots = value.parse().map_err(|e| format!("--snapshots: {e}"))?;
            }
            "--start" => args.start = value,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn make_topology(name: &str, n: usize) -> Result<Box<dyn Topology>, String> {
    match name {
        "complete" => Ok(Box::new(Complete::new(n))),
        "cycle" => Ok(Box::new(Cycle::new(n))),
        "torus" => {
            let side = (n as f64).sqrt() as usize;
            if side * side != n {
                return Err(format!("--topology torus needs a square n, got {n}"));
            }
            Ok(Box::new(Torus2d::new(side, side)))
        }
        "hypercube" => {
            let dim = n.trailing_zeros();
            if n == 0 || 1usize << dim != n {
                return Err(format!(
                    "--topology hypercube needs a power-of-two n, got {n}"
                ));
            }
            Ok(Box::new(population_diversity::graph::Hypercube::new(dim)))
        }
        other => Err(format!("unknown topology {other} (try --help)")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let weights =
        Weights::new(args.weights.clone()).map_err(|e| format!("invalid weights: {e}"))?;
    let k = weights.len();
    let states = match args.start.as_str() {
        "balanced" => init::all_dark_balanced(args.n, &weights),
        "proportional" => init::all_dark_proportional(args.n, &weights),
        "minority" => init::all_dark_single_minority(args.n, &weights),
        other => return Err(format!("unknown start {other} (try --help)")),
    };
    let topology = make_topology(&args.topology, args.n)?;
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        topology,
        states,
        args.seed,
    );

    let steps = if args.rounds > 0.0 {
        (args.rounds * args.n as f64) as u64
    } else {
        population_diversity::core::theory::convergence_budget(args.n, weights.total(), 4.0)
    };

    println!(
        "ppdiv: n = {}, k = {k}, weights = {:?} (w = {}), topology = {}, seed = {}, steps = {steps}",
        args.n,
        weights.as_slice(),
        weights.total(),
        args.topology,
        args.seed,
    );
    println!(
        "fair shares: {:?}",
        (0..k)
            .map(|i| format!("{:.4}", weights.fair_share(i)))
            .collect::<Vec<_>>()
    );

    let mut header = format!("{:>12} {:>10}", "step", "max err");
    for i in 0..k {
        header.push_str(&format!(" {:>8}", format!("c{i}")));
    }
    println!("{header}");

    let mut checker = SustainabilityChecker::new();
    let snapshots = args.snapshots.max(1) as u64;
    for _ in 0..snapshots {
        sim.run(steps / snapshots);
        let stats = ConfigStats::from_states(sim.population().states(), k);
        checker.observe(&stats, sim.step_count());
        let mut row = format!(
            "{:>12} {:>10.4}",
            sim.step_count(),
            stats.max_diversity_error(&weights)
        );
        for i in 0..k {
            row.push_str(&format!(" {:>8.4}", stats.colour_fraction(i)));
        }
        println!("{row}");
    }

    let stats = ConfigStats::from_states(sim.population().states(), k);
    println!("\nproperty report:");
    println!(
        "  diversity: max |C_i/n - w_i/w| = {:.4}  (Eq. (1) scale sqrt(ln n / n) = {:.4})",
        stats.max_diversity_error(&weights),
        population_diversity::core::theory::diversity_error_scale(args.n)
    );
    println!(
        "  equilibrium (Eq. 7): max dark error = {:.1}, max light error = {:.1} (scale n^0.75 ln^0.25 n = {:.1})",
        stats.max_dark_equilibrium_error(&weights),
        stats.max_light_equilibrium_error(&weights),
        population_diversity::core::theory::phase3_error_scale(args.n)
    );
    println!(
        "  sustainability: all colours alive = {} (min dark support seen: {})",
        checker.holds() && stats.all_colours_alive(),
        checker.min_dark_seen().min(stats.min_dark_count()),
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
