//! **population-diversity** — a reproduction of
//! *Diversity, Fairness, and Sustainability in Population Protocols*
//! (Nan Kang, Frederik Mallmann-Trenn, Nicolás Rivera; PODC 2021,
//! arXiv:2105.09926).
//!
//! The paper proposes the **Diversification** protocol: `n` anonymous
//! agents, each holding one of `k` weighted colours plus a single
//! confidence bit, converge to — and indefinitely sustain — a population
//! split proportional to the colour weights, with each agent spending its
//! time fairly across colours and no colour ever going extinct.
//!
//! This crate is an umbrella over the workspace:
//!
//! * [`core`] (`pp-core`) — the protocol, its derandomised variant,
//!   potentials, regions, and property checkers;
//! * [`engine`] (`pp-engine`) — the agent-based population-protocol
//!   simulator (any topology, per-agent measurements);
//! * [`dense`] (`pp-dense`) — the count-based batched engine for the
//!   complete graph (τ-leaped interaction batches over the `k × 2` count
//!   matrix; scales to `n = 10⁸`);
//! * [`graph`] (`pp-graph`) — interaction topologies;
//! * [`markov`] (`pp-markov`) — the §2.4 Markov-chain machinery;
//! * [`baselines`] (`pp-baselines`) — Voter, 2-Choices, 3-Majority,
//!   Anti-Voter, averaging, and ablations;
//! * [`adversary`] (`pp-adversary`) — structural shocks and recovery
//!   measurement;
//! * [`stats`] (`pp-stats`) — the numerical substrate.
//!
//! Three more crates sit above the umbrella and are used as binaries
//! rather than libraries: `pp-bench` (the `t*` experiment bins, the
//! result-JSON v1 writer/validator, and the engine dispatch point),
//! `pp-check` (the fail-closed bounded model checker), and `pp-serve`
//! (the multi-tenant simulation service with snapshot/resume). See
//! `ARCHITECTURE.md` for the full crate map and wire formats.
//!
//! # Six engine tiers, one dispatch point
//!
//! The workspace ships six behaviour-equivalent simulators. Every tier
//! implements the object-safe [`Engine`](pp_engine::Engine) trait —
//! clock, class-count observation, structural mutation, and versioned
//! [`save_snapshot`](pp_engine::Engine::save_snapshot)/
//! [`restore_snapshot`](pp_engine::Engine::restore_snapshot) — and
//! everything above the engines (experiments, the adversary suite, the
//! serve loop) holds a `Box<dyn Engine<State = AgentState>>` built at
//! **one** dispatch point: `pp_bench::runner::build_engine` /
//! `build_graph_engine`, selected by `EngineKind` (env: `PP_ENGINE`).
//! The per-interaction hot loops stay monomorphized inside each engine;
//! the `dyn` dispatch happens once per `run` call, not per step.
//!
//! Two equivalence contracts tie the tiers together (details and the
//! verification grid in `EXPERIMENTS.md`):
//!
//! * **Bit-exact** — identical trajectories under a shared seed. The
//!   generic [`Simulator`](pp_engine::Simulator) (`agent`) is the
//!   reference; [`PackedSimulator`](pp_engine::PackedSimulator)
//!   (`packed`) matches it draw for draw over `u32` packed states; and
//!   [`VecSimulator`](pp_engine::VecSimulator) (`vec`) matches
//!   [`TurboSimulator`](pp_engine::TurboSimulator) on lane 0.
//! * **Statistical** — same process distribution, verified by the
//!   [`pp_stats::equivalence`] harness
//!   (chi-square / KS / moment batteries under one Bonferroni budget):
//!   [`TurboSimulator`](pp_engine::TurboSimulator) (`turbo`,
//!   counter-based per-step randomness, branch- and rejection-free),
//!   [`ShardedSimulator`](pp_engine::ShardedSimulator) (`sharded`,
//!   parallel shards with deterministic block reconciliation — a
//!   trajectory depends on `(seed, shards, block)`, never thread
//!   count), and the count-based
//!   [`DenseSimulator`](pp_dense::DenseSimulator) (`dense`), which
//!   applies only on the complete graph, advancing the
//!   `(colour, shade)` count matrix in τ-leaped batches,
//!   `O(k²/(ε·n))` amortised per step — use it for complete-graph
//!   count-level measurements at scale:
//!
//! ```
//! use population_diversity::prelude::*;
//!
//! let weights = Weights::new(vec![1.0, 1.0, 2.0])?;
//! let n: u64 = 1_000_000;
//! let mut sim = DenseSimulator::new(
//!     Diversification::new(weights.clone()),
//!     CountConfig::all_dark_balanced(n, 3).to_classes(),
//!     42,
//! );
//! sim.run(30 * n);
//! let stats = CountConfig::from_classes(sim.counts()).stats();
//! assert!(stats.max_diversity_error(&weights) < 0.01);
//! assert!(stats.all_colours_alive());
//! # Ok::<(), population_diversity::core::WeightsError>(())
//! ```
//!
//! # Quickstart
//!
//! ```
//! use population_diversity::prelude::*;
//!
//! // Three tasks; the third is twice as important.
//! let weights = Weights::new(vec![1.0, 1.0, 2.0])?;
//! let n = 400;
//! let states = init::all_dark_balanced(n, &weights);
//! let mut sim = Simulator::new(
//!     Diversification::new(weights.clone()),
//!     Complete::new(n),
//!     states,
//!     42,
//! );
//! sim.run(200_000);
//!
//! let stats = ConfigStats::from_states(sim.population().states(), weights.len());
//! assert!(stats.max_diversity_error(&weights) < 0.15);
//! assert!(stats.all_colours_alive());
//! # Ok::<(), population_diversity::core::WeightsError>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios (ant task
//! allocation, portfolio diversification, consensus-vs-diversity) and
//! EXPERIMENTS.md for the paper-vs-measured record.
//!
//! # Environment variables
//!
//! Every knob in the workspace, in one place. All parsers are
//! fail-fast: an unrecognized value panics with the accepted set
//! rather than silently falling back.
//!
//! | variable | read by | effect |
//! |---|---|---|
//! | `PP_ENGINE` | `pp-bench` dispatch (`EngineKind::from_env`) | selects the tier for every experiment bin: `agent`, `packed`, `turbo`, `sharded`, `vec`, or `dense` (default for complete-graph experiments; per-agent workloads map it to `packed`) |
//! | `PP_PRESET` | `pp-bench` bins | `quick` (default, seconds) or `full` (paper scales) |
//! | `PP_POOL_THREADS` | `pp-engine` worker pool | caps the shared thread pool the sharded tier and `replicate` use (default: available parallelism) |
//! | `PP_OBS` | `pp-obs` (`init_from_env`) | recorder sink: unset/`off`, `table` (stderr table at exit), `json` (dump embedded in the result envelope), `jsonl` (events streamed to stderr); requires the `obs` feature — errors if set on an uninstrumented build |
//! | `PP_BENCH_DIR` | `pp-bench` output writer | directory for `BENCH_<name>.json` envelopes (created if missing; default: working directory) |
//! | `PP_EQUIV_SEEDS` | equivalence test suites | seed-ensemble size for the statistical batteries (default 48; CI uses 24–32) |
//! | `PP_CHECK_INJECT` | `pp-check` | `1` switches in the deliberately-bugged protocol — the model-check gate must fail closed (exit 3) |
//! | `PP_PERF_ASSERT` | `pp-bench` throughput tests | any value opts the release-build test suite into asserting engine speed *ratios* (packed ≥ agent etc.), not just progress |
//! | `PP_SERVE_QUANTUM` | `pp-serve` | deficit-round-robin slice quantum in steps (default 2048) — smaller interleaves tenants more finely |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pp_adversary as adversary;
pub use pp_baselines as baselines;
pub use pp_core as core;
pub use pp_dense as dense;
pub use pp_engine as engine;
pub use pp_graph as graph;
pub use pp_markov as markov;
pub use pp_stats as stats;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pp_adversary::{apply, recovery_time, Schedule, Shock};
    pub use pp_core::{
        init, phi, psi, region::GoodSet, sigma_sq, AgentState, Colour, ConfigStats,
        DerandomisedDiversification, Diversification, DiversityChecker, FairnessTracker,
        IntWeights, Shade, SustainabilityChecker, Weights,
    };
    pub use pp_dense::{CountConfig, CountProtocol, DenseSimulator};
    pub use pp_engine::{
        replicate, sweep_grid, PackedProtocol, PackedSimulator, Population, Protocol, Simulator,
        TurboSimulator,
    };
    pub use pp_graph::{Complete, Csr, Cycle, Topology, Torus2d};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let w = Weights::uniform(2);
        assert_eq!(w.len(), 2);
        let g = Complete::new(4);
        assert_eq!(g.len(), 4);
    }
}
