//! **population-diversity** — a reproduction of
//! *Diversity, Fairness, and Sustainability in Population Protocols*
//! (Nan Kang, Frederik Mallmann-Trenn, Nicolás Rivera; PODC 2021,
//! arXiv:2105.09926).
//!
//! The paper proposes the **Diversification** protocol: `n` anonymous
//! agents, each holding one of `k` weighted colours plus a single
//! confidence bit, converge to — and indefinitely sustain — a population
//! split proportional to the colour weights, with each agent spending its
//! time fairly across colours and no colour ever going extinct.
//!
//! This crate is an umbrella over the workspace:
//!
//! * [`core`] (`pp-core`) — the protocol, its derandomised variant,
//!   potentials, regions, and property checkers;
//! * [`engine`] (`pp-engine`) — the agent-based population-protocol
//!   simulator (any topology, per-agent measurements);
//! * [`dense`] (`pp-dense`) — the count-based batched engine for the
//!   complete graph (τ-leaped interaction batches over the `k × 2` count
//!   matrix; scales to `n = 10⁸`);
//! * [`graph`] (`pp-graph`) — interaction topologies;
//! * [`markov`] (`pp-markov`) — the §2.4 Markov-chain machinery;
//! * [`baselines`] (`pp-baselines`) — Voter, 2-Choices, 3-Majority,
//!   Anti-Voter, averaging, and ablations;
//! * [`adversary`] (`pp-adversary`) — structural shocks and recovery
//!   measurement;
//! * [`stats`] (`pp-stats`) — the numerical substrate.
//!
//! # Four engine tiers, two equivalence contracts
//!
//! The workspace ships four behaviour-equivalent simulators under two
//! contracts. **Bit-exact tier:** the generic agent-based
//! [`Simulator`](pp_engine::Simulator) is the reference — any topology,
//! any state type, per-agent measurements (fairness, trajectories,
//! adversarial shocks) — and the packed
//! [`PackedSimulator`](pp_engine::PackedSimulator) runs the same dynamics
//! — bit-for-bit identical trajectories under a shared seed — over `u32`
//! packed states with the protocol, topology ([`Csr`](pp_graph::Csr) or
//! arithmetic), and RNG all statically dispatched. **Statistical tier**
//! (same process distribution, verified by the
//! [`pp_stats::equivalence`](pp_stats::equivalence) harness rather than
//! trajectory equality): the [`TurboSimulator`](pp_engine::TurboSimulator)
//! replaces the sequential RNG with counter-based per-step randomness —
//! branch-free, rejection-free, optionally `u8`-stored — for general-graph
//! runs past the exact engines' serial-stream ceiling, and the count-based
//! [`DenseSimulator`](pp_dense::DenseSimulator) applies only on the
//! complete graph, advancing the `(colour, shade)` count matrix in
//! τ-leaped batches, `O(k²/(ε·n))` amortised per step — use it for
//! complete-graph count-level measurements at scale:
//!
//! ```
//! use population_diversity::prelude::*;
//!
//! let weights = Weights::new(vec![1.0, 1.0, 2.0])?;
//! let n: u64 = 1_000_000;
//! let mut sim = DenseSimulator::new(
//!     Diversification::new(weights.clone()),
//!     CountConfig::all_dark_balanced(n, 3).to_classes(),
//!     42,
//! );
//! sim.run(30 * n);
//! let stats = CountConfig::from_classes(sim.counts()).stats();
//! assert!(stats.max_diversity_error(&weights) < 0.01);
//! assert!(stats.all_colours_alive());
//! # Ok::<(), population_diversity::core::WeightsError>(())
//! ```
//!
//! # Quickstart
//!
//! ```
//! use population_diversity::prelude::*;
//!
//! // Three tasks; the third is twice as important.
//! let weights = Weights::new(vec![1.0, 1.0, 2.0])?;
//! let n = 400;
//! let states = init::all_dark_balanced(n, &weights);
//! let mut sim = Simulator::new(
//!     Diversification::new(weights.clone()),
//!     Complete::new(n),
//!     states,
//!     42,
//! );
//! sim.run(200_000);
//!
//! let stats = ConfigStats::from_states(sim.population().states(), weights.len());
//! assert!(stats.max_diversity_error(&weights) < 0.15);
//! assert!(stats.all_colours_alive());
//! # Ok::<(), population_diversity::core::WeightsError>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios (ant task
//! allocation, portfolio diversification, consensus-vs-diversity) and
//! EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pp_adversary as adversary;
pub use pp_baselines as baselines;
pub use pp_core as core;
pub use pp_dense as dense;
pub use pp_engine as engine;
pub use pp_graph as graph;
pub use pp_markov as markov;
pub use pp_stats as stats;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pp_adversary::{apply, recovery_time, Schedule, Shock};
    pub use pp_core::{
        init, phi, psi, region::GoodSet, sigma_sq, AgentState, Colour, ConfigStats,
        DerandomisedDiversification, Diversification, DiversityChecker, FairnessTracker,
        IntWeights, Shade, SustainabilityChecker, Weights,
    };
    pub use pp_dense::{CountConfig, CountProtocol, DenseSimulator};
    pub use pp_engine::{
        replicate, sweep_grid, PackedProtocol, PackedSimulator, Population, Protocol, Simulator,
        TurboSimulator,
    };
    pub use pp_graph::{Complete, Csr, Cycle, Topology, Torus2d};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let w = Weights::uniform(2);
        assert_eq!(w.len(), 2);
        let g = Complete::new(4);
        assert_eq!(g.len(), 4);
    }
}
