//! Consensus vs diversity — the paper's framing, live.
//!
//! The same balanced 4-colour population is run under the classic consensus
//! dynamics (Voter, 2-Choices, 3-Majority) and under Diversification. The
//! consensus protocols do what they are built for: colours go extinct one
//! by one until a single opinion remains. Diversification holds all four
//! colours at their fair shares indefinitely.
//!
//! ```sh
//! cargo run --release --example consensus_vs_diversity
//! ```

use population_diversity::prelude::*;
use pp_baselines::{ThreeMajority, TwoChoices, Voter};

/// Runs a colour-state protocol and reports (surviving colours, step of
/// first extinction).
fn survivors<P>(protocol: P, n: usize, k: usize, steps: u64, seed: u64) -> (usize, Option<u64>)
where
    P: Protocol<State = Colour>,
{
    let states: Vec<Colour> = (0..n).map(|u| Colour::new(u % k)).collect();
    let mut sim = Simulator::new(protocol, Complete::new(n), states, seed);
    let mut first_extinction = None;
    let stride = n as u64;
    let mut run = 0;
    while run < steps {
        sim.run(stride.min(steps - run));
        run = sim.step_count();
        let alive = (0..k)
            .filter(|&i| sim.population().count_matching(|&c| c == Colour::new(i)) > 0)
            .count();
        if alive < k && first_extinction.is_none() {
            first_extinction = Some(run);
        }
    }
    let alive = (0..k)
        .filter(|&i| sim.population().count_matching(|&c| c == Colour::new(i)) > 0)
        .count();
    (alive, first_extinction)
}

fn main() -> Result<(), population_diversity::core::WeightsError> {
    let n = 600;
    let k = 4;
    let seed = 5;
    let horizon = (n * n * 10) as u64; // enough for Voter's Θ(n²) consensus

    println!("n = {n}, k = {k} colours, horizon = {horizon} steps\n");
    println!(
        "{:<18} {:>18} {:>22}",
        "protocol", "colours surviving", "first extinction at"
    );

    for (name, result) in [
        ("voter", survivors(Voter, n, k, horizon, seed)),
        ("2-choices", survivors(TwoChoices, n, k, horizon, seed)),
        ("3-majority", survivors(ThreeMajority, n, k, horizon, seed)),
    ] {
        let (alive, ext) = result;
        println!(
            "{name:<18} {alive:>18} {:>22}",
            ext.map(|t| t.to_string()).unwrap_or_else(|| "never".into())
        );
    }

    // Diversification on the same population.
    let weights = Weights::uniform(k);
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    let mut checker = SustainabilityChecker::new();
    let mut steps = 0u64;
    while steps < horizon {
        sim.run(n as u64);
        steps = sim.step_count();
        checker.observe(
            &ConfigStats::from_states(sim.population().states(), k),
            steps,
        );
    }
    let stats = ConfigStats::from_states(sim.population().states(), k);
    let alive = (0..k).filter(|&i| stats.colour_count(i) > 0).count();
    println!(
        "{:<18} {alive:>18} {:>22}",
        "diversification",
        checker
            .first_violation()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into())
    );

    println!(
        "\ndiversification held every colour within {:.3} of its fair share \
         (min dark support ever: {})",
        stats.max_diversity_error(&weights),
        checker.min_dark_seen()
    );
    assert_eq!(alive, k);
    Ok(())
}
