//! Diversity in a dynamic environment: sustained churn.
//!
//! One-off shocks (see `ant_colony.rs`) are the easy case. Here the
//! environment never stops: every few time-steps a random agent is replaced
//! by a fresh dark agent of a random colour (workers die and are born,
//! opinions get reset by external events). Diversification holds the
//! population in a *dynamic* equilibrium whose distance from the fair share
//! degrades gracefully with the churn rate — and sustainability never
//! breaks, because churn only ever adds confident agents.
//!
//! ```sh
//! cargo run --release --example dynamic_environment
//! ```

use population_diversity::adversary::error_under_churn;
use population_diversity::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn converged(n: usize, weights: &Weights, seed: u64) -> Simulator<Diversification, Complete> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    sim.run(population_diversity::core::theory::convergence_budget(
        n,
        weights.total(),
        4.0,
    ));
    sim
}

fn main() -> Result<(), population_diversity::core::WeightsError> {
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0])?;
    let n = 1_000;
    let horizon = (30.0 * n as f64 * (n as f64).ln()) as u64;

    println!("n = {n}, weights = (1,1,2,4); churn = 1 random agent reset per interval\n");
    println!(
        "{:>22} {:>26} {:>16}",
        "reset interval (steps)", "mean diversity error", "still diverse?"
    );

    // Sweep the churn rate over three orders of magnitude.
    for interval in [10u64, 100, 1_000, 10_000, 100_000] {
        let mut sim = converged(n, &weights, 5);
        let mut rng = StdRng::seed_from_u64(interval);
        let err = error_under_churn(&mut sim, &weights, interval, horizon, &mut rng);
        let stats = ConfigStats::from_states(sim.population().states(), weights.len());
        println!(
            "{interval:>22} {err:>26.4} {:>16}",
            if stats.all_colours_alive() && err < 0.3 {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!(
        "\nchurn-free baseline (Eq. (1)): ~{:.4}",
        population_diversity::core::theory::diversity_error_scale(n)
    );
    println!("slower churn → error approaches the churn-free concentration width.");
    Ok(())
}
