//! Ant-colony task allocation — the paper's motivating scenario.
//!
//! A colony of ants allocates itself across tasks of unequal importance
//! (foraging matters most). The environment then interferes, exactly as the
//! introduction describes:
//!
//! 1. a raid kills a third of the colony ("too many foragers fell victim to
//!    other ant colonies");
//! 2. the nest overheats and fanning becomes a brand-new task ("an ant
//!    notices that the nest temperature is too hot and starts fanning");
//! 3. the brood matures and brood care is no longer needed ("a task is
//!    fulfilled and no longer necessary").
//!
//! After every shock the colony re-balances onto the fair shares of the
//! remaining tasks — without any ant knowing the task list.
//!
//! ```sh
//! cargo run --release --example ant_colony
//! ```

use population_diversity::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TASKS: [&str; 5] = ["forage", "brood", "nest", "defend", "fan"];

fn print_allocation(label: &str, sim: &Simulator<Diversification, Complete>, k: usize) {
    let stats = ConfigStats::from_states(sim.population().states(), k);
    let n = stats.population();
    print!("{label:<34} n={n:>5} |");
    for (i, task) in TASKS.iter().enumerate().take(k) {
        print!(
            " {task}: {:>5.1}%",
            100.0 * stats.colour_count(i) as f64 / n as f64
        );
    }
    println!();
}

fn main() -> Result<(), population_diversity::core::WeightsError> {
    // Task weights: foraging 4, brood care 2, nest repair 1, defence 1,
    // fanning 2 — fanning starts UNUSED (no ant performs it yet).
    let weights = Weights::new(vec![4.0, 2.0, 1.0, 1.0, 2.0])?;
    let k = weights.len();
    let n = 3_000;

    // Initial colony: everyone piled onto the first four tasks evenly.
    let mut counts = [n / 4, n / 4, n / 4, n / 4, 0];
    counts[0] += n - counts.iter().sum::<usize>();
    let states: Vec<AgentState> = counts
        .iter()
        .enumerate()
        .flat_map(|(i, &c)| std::iter::repeat_n(AgentState::dark(Colour::new(i)), c))
        .collect();

    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        7,
    );
    let mut shock_rng = StdRng::seed_from_u64(8);
    let settle = population_diversity::core::theory::convergence_budget(n, weights.total(), 4.0);

    println!("task weights: forage=4 brood=2 nest=1 defend=1 fan=2 (fan initially unmanned)\n");
    print_allocation("start", &sim, k);

    sim.run(settle);
    print_allocation("settled", &sim, k);

    // Shock 1: a raid kills 1/3 of the colony.
    apply(
        &Shock::RemoveAgents { count: n / 3 },
        &mut sim,
        &mut shock_rng,
    );
    print_allocation("after raid (-1/3 of ants)", &sim, k);
    sim.run(settle);
    print_allocation("re-settled", &sim, k);

    // Shock 2: the nest overheats; a few ants start fanning (new task,
    // injected dark so sustainability covers it).
    apply(
        &Shock::InjectColour {
            colour: Colour::new(4),
            recruits: 20,
        },
        &mut sim,
        &mut shock_rng,
    );
    print_allocation("nest too hot: 20 ants start fanning", &sim, k);
    sim.run(settle);
    print_allocation("re-settled (fanning at fair share)", &sim, k);

    // Shock 3: the brood matures; brood care is retired.
    apply(
        &Shock::RetireColour {
            colour: Colour::new(1),
            replacement: Colour::new(0),
        },
        &mut sim,
        &mut shock_rng,
    );
    print_allocation("brood matured: task retired", &sim, k);
    sim.run(settle);
    print_allocation("re-settled (no brood care)", &sim, k);

    let stats = ConfigStats::from_states(sim.population().states(), k);
    assert_eq!(stats.colour_count(1), 0, "retired task should stay retired");
    for i in [0usize, 2, 3, 4] {
        assert!(
            stats.dark_count(i) >= 1,
            "live task {i} lost its last confident ant"
        );
    }
    println!("\nretired task stayed retired; every live task kept at least one confident ant.");
    Ok(())
}
