//! Portfolio diversification — the "investment funds diversifying their
//! portfolios" example from the paper's first paragraph.
//!
//! Each agent is one unit of capital; colours are asset classes with target
//! weights. The Diversification protocol is the *rebalancing rule*: a unit
//! of capital sampled for review looks at one other random unit and applies
//! Eq. (2). The fund converges to the target allocation, tracks it through
//! a market shock, and — thanks to fairness (Theorem 2.12) — every
//! individual unit of capital rotates through the asset classes in
//! proportion to their weights (no unit is permanently parked).
//!
//! ```sh
//! cargo run --release --example portfolio
//! ```

use population_diversity::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ASSETS: [&str; 4] = ["bonds", "equities", "real-estate", "commodities"];

fn allocation(sim: &Simulator<Diversification, Complete>, k: usize) -> Vec<f64> {
    let stats = ConfigStats::from_states(sim.population().states(), k);
    (0..k).map(|i| stats.colour_fraction(i)).collect()
}

fn print_allocation(label: &str, alloc: &[f64]) {
    print!("{label:<42}");
    for (name, frac) in ASSETS.iter().zip(alloc) {
        print!(" {name}: {:>5.1}%", 100.0 * frac);
    }
    println!();
}

fn main() -> Result<(), population_diversity::core::WeightsError> {
    // Target allocation 40/30/20/10 ⇒ weights 4/3/2/1.
    let weights = Weights::new(vec![4.0, 3.0, 2.0, 1.0])?;
    let k = weights.len();
    let n = 5_000; // units of capital

    let states = init::all_dark_balanced(n, &weights); // start at 25/25/25/25
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        11,
    );

    println!("target allocation: 40/30/20/10 (weights 4/3/2/1), {n} units of capital\n");
    print_allocation("initial (equal split)", &allocation(&sim, k));

    let settle = population_diversity::core::theory::convergence_budget(n, weights.total(), 2.0);
    sim.run(settle);
    print_allocation("after rebalancing", &allocation(&sim, k));

    // Market shock: fresh inflows arrive all in equities (momentum chasing).
    let mut shock_rng = StdRng::seed_from_u64(12);
    apply(
        &Shock::AddAgents {
            count: n / 5,
            state: AgentState::dark(Colour::new(1)),
        },
        &mut sim,
        &mut shock_rng,
    );
    print_allocation("inflow: +20% capital, all equities", &allocation(&sim, k));
    sim.run(settle);
    print_allocation("after rebalancing", &allocation(&sim, k));

    // Fairness: track where ONE unit of capital sits over a long horizon.
    let horizon_snapshots = 4_000u64;
    let mut tracker = FairnessTracker::new(sim.population().len(), k);
    let stride = sim.population().len() as u64;
    for _ in 0..horizon_snapshots {
        sim.run(stride);
        tracker.record(sim.population().states());
    }
    println!("\nfairness (Theorem 2.12): unit #0's time in each asset class vs target");
    for (i, name) in ASSETS.iter().enumerate() {
        println!(
            "  {name:<12} time share {:>5.1}%  target {:>5.1}%",
            100.0 * tracker.occupancy(0, i),
            100.0 * weights.fair_share(i),
        );
    }
    let dev = tracker.max_deviation(&weights);
    println!("  worst deviation over ALL units: {:.3}", dev);

    let final_alloc = allocation(&sim, k);
    for (i, frac) in final_alloc.iter().enumerate() {
        assert!(
            (frac - weights.fair_share(i)).abs() < 0.08,
            "asset {i} drifted: {frac}"
        );
    }
    Ok(())
}
