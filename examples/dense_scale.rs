//! Diversification at `n = 10⁸` — the scale the dense engine unlocks.
//!
//! The paper's guarantees are asymptotic in `n`; the agent-based engine
//! tops out around `n ≈ 10⁵` interactions-per-second-wise. This example
//! runs one hundred million agents through convergence and checks all
//! three headline properties, in seconds, via the count-based engine:
//!
//! ```sh
//! cargo run --release --example dense_scale
//! ```

use population_diversity::prelude::*;
use std::time::Instant;

fn main() {
    let n: u64 = 100_000_000;
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).expect("valid weights");
    let k = weights.len();

    println!("# Diversification, n = 10^8, weights (1,1,2,4), dense engine");
    let mut sim = DenseSimulator::new(
        Diversification::new(weights.clone()),
        CountConfig::all_dark_balanced(n, k).to_classes(),
        2021,
    );

    // The full Theorem 1.3 budget, c·w²·n·ln n ≈ 4.7×10¹¹ interactions —
    // the weight spread (w = 8) makes convergence two orders slower than
    // mean-field mixing, and the dense engine still clears it in well under
    // a second.
    let steps =
        population_diversity::core::theory::convergence_budget(n as usize, weights.total(), 4.0);
    let start = Instant::now();
    sim.run(steps);
    let elapsed = start.elapsed();

    let config = CountConfig::from_classes(sim.counts());
    let stats = config.stats();
    println!(
        "simulated {steps} interactions in {elapsed:.2?} \
         ({:.3e} steps/s; {} leap batches, {} exact events)",
        steps as f64 / elapsed.as_secs_f64(),
        sim.leap_batches(),
        sim.exact_events(),
    );

    println!("\ncolour  weight  share      fair share  dark fraction");
    for i in 0..k {
        println!(
            "c{i}      {:>5}  {:.6}   {:.6}    {:.6}",
            weights.get(i),
            stats.colour_fraction(i),
            weights.fair_share(i),
            stats.dark_count(i) as f64 / n as f64,
        );
    }

    let err = stats.max_diversity_error(&weights);
    println!("\nmax diversity error: {err:.2e} (Õ(1/√n) predicts ~1e-4 at n = 10^8)");
    println!("all colours alive:   {}", stats.all_colours_alive());
    assert!(stats.all_colours_alive(), "sustainability violated");
    assert!(err < 1e-3, "diversity error {err} unexpectedly large");
}
