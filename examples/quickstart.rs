//! Quickstart: run the Diversification protocol and watch the population
//! settle on its weighted fair shares.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use population_diversity::prelude::*;

fn main() -> Result<(), population_diversity::core::WeightsError> {
    // Four colours; colour weights say how much of the population each
    // deserves: fair shares are w_i / w = 1/8, 1/8, 2/8, 4/8.
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0])?;
    let n = 2_000;
    let seed = 42;

    // Every agent starts dark (confident); colours are spread round-robin,
    // far from the weighted fair split.
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );

    println!("n = {n}, weights = {:?}, seed = {seed}", weights.as_slice());
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "step", "c0", "c1", "c2", "c3", "max err"
    );

    // The paper's Theorem 1.3: convergence within O(w² n log n) steps.
    let budget = population_diversity::core::theory::convergence_budget(n, weights.total(), 4.0);
    let checkpoints = 10;
    for _ in 0..checkpoints {
        sim.run(budget / checkpoints);
        let stats = ConfigStats::from_states(sim.population().states(), weights.len());
        println!(
            "{:>12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10.4}",
            sim.step_count(),
            stats.colour_fraction(0),
            stats.colour_fraction(1),
            stats.colour_fraction(2),
            stats.colour_fraction(3),
            stats.max_diversity_error(&weights),
        );
    }

    let stats = ConfigStats::from_states(sim.population().states(), weights.len());
    println!(
        "\nfair shares: {:?}",
        (0..weights.len())
            .map(|i| weights.fair_share(i))
            .collect::<Vec<_>>()
    );
    println!(
        "final diversity error: {:.4} (Eq. (1) predicts Õ(1/sqrt(n)) = {:.4})",
        stats.max_diversity_error(&weights),
        population_diversity::core::theory::diversity_error_scale(n),
    );
    assert!(stats.all_colours_alive(), "sustainability violated?!");
    println!("all colours alive: true (sustainability, Definition 1.1(3))");
    Ok(())
}
