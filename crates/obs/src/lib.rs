//! Run-level instrumentation for the simulation engines and bench harness.
//!
//! The recorder is a process-wide set of **named monotonic counters**,
//! **log2-bucketed histograms**, and **timestamped trace events**. Hot code
//! reports through the [`obs_count!`], [`obs_value!`], and [`obs_event!`]
//! macros, which guard every argument behind [`enabled()`]:
//!
//! - built **without** the `obs` cargo feature (the default), `enabled()` is
//!   a constant `false`, the guarded block is dead code, and the macros cost
//!   literally nothing — arguments are never evaluated;
//! - built **with** `obs`, `enabled()` is one relaxed check of the sink
//!   selected by the `PP_OBS` environment variable, so an instrumented build
//!   with `PP_OBS` unset still pays only a branch per *batch* (call sites
//!   instrument block/batch boundaries, never per-step inner loops).
//!
//! `PP_OBS` selects where recordings go (unknown values panic with the
//! accepted list, matching the `PP_PRESET`/`PP_ENGINE` convention):
//!
//! | value   | behaviour |
//! |---------|-----------|
//! | unset / `off` | recorder disabled |
//! | `table` | human-readable dump to stderr at end of run |
//! | `jsonl` | events stream to stderr as they happen; counters/histograms follow as JSONL at end of run |
//! | `json`  | dump embedded in the bin's result-JSON envelope under `"recorder"` |
//!
//! The crate is dependency-free; the result-JSON writer in `pp-bench` reuses
//! [`json::escape`] so the whole workspace has exactly one JSON string
//! escaper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b >= 1`
/// holds values in `[2^(b-1), 2^b - 1]` (b = bit length), up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// Trace events beyond this cap are counted in `dropped_events` instead of
/// stored, so a hot loop wired to `obs_event!` by mistake cannot OOM a run.
pub const EVENT_CAP: usize = 65_536;

/// Whether this build carries the recorder (`--features obs`).
pub const FEATURE_ENABLED: bool = cfg!(feature = "obs");

/// Where recordings go, selected once per process from `PP_OBS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Recorder disabled (the default).
    Off,
    /// Human-readable dump to stderr at end of run.
    Table,
    /// Events stream to stderr immediately; summary as JSONL at end of run.
    Jsonl,
    /// Dump embedded in the result-JSON envelope by the bench writer.
    Json,
}

impl Sink {
    /// The `PP_OBS` spelling of this sink.
    pub fn name(self) -> &'static str {
        match self {
            Sink::Off => "off",
            Sink::Table => "table",
            Sink::Jsonl => "jsonl",
            Sink::Json => "json",
        }
    }

    /// Parses a `PP_OBS` value.
    ///
    /// # Panics
    ///
    /// Panics on anything other than `off`/`table`/`jsonl`/`json`
    /// (case-insensitive), listing the accepted values — the same fail-fast
    /// convention as `Preset::from_env` and `EngineKind::from_env`.
    pub fn parse(v: &str) -> Sink {
        match v.to_ascii_lowercase().as_str() {
            "" | "off" => Sink::Off,
            "table" => Sink::Table,
            "jsonl" => Sink::Jsonl,
            "json" => Sink::Json,
            other => panic!(
                "PP_OBS must be one of `off`, `table`, `jsonl`, `json` (unset = off), got `{other}`"
            ),
        }
    }
}

/// The sink requested via `PP_OBS`, parsed (and validated) once per process
/// **regardless of the `obs` feature**, so typos fail fast even in
/// uninstrumented builds.
pub fn requested_sink() -> Sink {
    static REQUESTED: OnceLock<Sink> = OnceLock::new();
    *REQUESTED.get_or_init(|| match std::env::var("PP_OBS") {
        Ok(v) => Sink::parse(&v),
        Err(_) => Sink::Off,
    })
}

/// The *active* sink: the requested one in an `obs` build, [`Sink::Off`]
/// otherwise.
#[cfg(feature = "obs")]
pub fn sink() -> Sink {
    requested_sink()
}

/// The *active* sink: the requested one in an `obs` build, [`Sink::Off`]
/// otherwise.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn sink() -> Sink {
    Sink::Off
}

/// Whether the recorder is live. This is the guard the macros expand to; in
/// a build without the `obs` feature it is a constant `false` and everything
/// behind it is dead code.
#[cfg(feature = "obs")]
#[inline]
pub fn enabled() -> bool {
    sink() != Sink::Off
}

/// Whether the recorder is live. This is the guard the macros expand to; in
/// a build without the `obs` feature it is a constant `false` and everything
/// behind it is dead code.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Validates `PP_OBS` and warns (once) when a sink is requested from a build
/// compiled without the `obs` feature. Bench bins call this on startup so an
/// operator asking for instrumentation finds out immediately instead of
/// reading an empty dump.
///
/// # Panics
///
/// Panics on an unknown `PP_OBS` value (see [`Sink::parse`]).
pub fn init_from_env() {
    let requested = requested_sink();
    if !FEATURE_ENABLED && requested != Sink::Off {
        static WARNED: OnceLock<()> = OnceLock::new();
        WARNED.get_or_init(|| {
            eprintln!(
                "warning: PP_OBS={} requested but this binary was built without the `obs` \
                 feature; rebuild with `--features obs` to record (the run proceeds unrecorded)",
                requested.name()
            );
        });
    }
}

/// Increments counter `name` by `delta` **if** the recorder is live.
///
/// Call sites should sit on batch/block boundaries, accumulating in locals
/// inside hot loops and flushing once per batch.
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $delta as u64);
        }
    };
}

/// Records `value` into the log2 histogram `name` **if** the recorder is
/// live.
#[macro_export]
macro_rules! obs_value {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::record_value($name, $value as u64);
        }
    };
}

/// Records a timestamped trace event **if** the recorder is live. The
/// `detail` format arguments are not evaluated when disabled.
#[macro_export]
macro_rules! obs_event {
    ($name:expr, $tag:expr, $($detail:tt)*) => {
        if $crate::enabled() {
            $crate::event($name, $tag, &format!($($detail)*));
        }
    };
}

#[derive(Debug, Clone, Copy)]
struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// The log2 bucket index of a value: 0 for 0, else the bit length.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The half-open value range `[lo, hi]` covered by a bucket index.
pub fn bucket_range(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else {
        (1u64 << (b - 1), (1u64 << (b - 1)) | ((1u64 << (b - 1)) - 1))
    }
}

struct EventBuf {
    events: Vec<Event>,
    dropped: u64,
}

#[derive(Debug, Clone)]
struct Event {
    t_us: u64,
    name: &'static str,
    tag: &'static str,
    detail: String,
}

struct Recorder {
    start: Instant,
    counters: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<&'static str, Hist>>,
    events: Mutex<EventBuf>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        start: Instant::now(),
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        events: Mutex::new(EventBuf {
            events: Vec::new(),
            dropped: 0,
        }),
    })
}

/// Adds `delta` to the named monotonic counter. Prefer [`obs_count!`], which
/// compiles this call out of uninstrumented builds; the function itself is
/// always available so the recorder can be tested without the feature.
pub fn counter_add(name: &'static str, delta: u64) {
    counter_add_dyn(name, delta);
}

/// Adds `delta` to a counter whose name is built at run time — e.g. the
/// per-tenant `serve.steps.<tenant>` counters in `pp-serve`, where the set
/// of tenants is only known when jobs arrive. Hot loops should prefer
/// [`obs_count!`] with a static name; this entry point allocates the key on
/// first use of each name.
pub fn counter_add_dyn(name: &str, delta: u64) {
    let r = recorder();
    let mut c = r.counters.lock().unwrap();
    if let Some(slot) = c.get_mut(name) {
        *slot += delta;
    } else {
        c.insert(name.to_string(), delta);
    }
}

/// Records `value` into the named log2 histogram. Prefer [`obs_value!`].
pub fn record_value(name: &'static str, value: u64) {
    let r = recorder();
    let mut h = r.hists.lock().unwrap();
    h.entry(name).or_insert_with(Hist::new).record(value);
}

/// Records a timestamped trace event. Prefer [`obs_event!`]. With the
/// `jsonl` sink active the event is also streamed to stderr immediately.
pub fn event(name: &'static str, tag: &'static str, detail: &str) {
    let r = recorder();
    let t_us = r.start.elapsed().as_micros() as u64;
    if sink() == Sink::Jsonl {
        eprintln!(
            "{{\"t_us\":{t_us},\"event\":{},\"tag\":{},\"detail\":{}}}",
            json::quote(name),
            json::quote(tag),
            json::quote(detail)
        );
    }
    let mut buf = r.events.lock().unwrap();
    if buf.events.len() < EVENT_CAP {
        buf.events.push(Event {
            t_us,
            name,
            tag,
            detail: detail.to_string(),
        });
    } else {
        buf.dropped += 1;
    }
}

/// One histogram in a [`Dump`]: summary statistics plus the sparse list of
/// non-empty `(bucket, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistDump {
    /// Histogram name as passed to [`obs_value!`].
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs; see [`bucket_range`].
    pub buckets: Vec<(u32, u64)>,
}

/// One trace event in a [`Dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDump {
    /// Microseconds since the recorder was first touched.
    pub t_us: u64,
    /// Event name as passed to [`obs_event!`].
    pub name: String,
    /// Event tag (a short category within the name).
    pub tag: String,
    /// Rendered detail text.
    pub detail: String,
}

/// An immutable snapshot of the recorder, renderable as JSON (for the
/// result envelope) or as an aligned human table (for stderr).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dump {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Log2 histograms, sorted by name.
    pub histograms: Vec<HistDump>,
    /// Trace events in recording order (capped at [`EVENT_CAP`]).
    pub events: Vec<EventDump>,
    /// Events discarded after the cap was hit.
    pub dropped_events: u64,
}

impl Dump {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
    }

    /// The dump as a self-contained JSON object (the `"recorder"` field of
    /// the result-JSON v1 envelope).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json::quote(name)));
        }
        s.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("[{b},{c}]"))
                .collect();
            s.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json::quote(&h.name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                buckets.join(",")
            ));
        }
        s.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"t_us\":{},\"event\":{},\"tag\":{},\"detail\":{}}}",
                e.t_us,
                json::quote(&e.name),
                json::quote(&e.tag),
                json::quote(&e.detail)
            ));
        }
        s.push_str(&format!("],\"dropped_events\":{}}}", self.dropped_events));
        s
    }

    /// The dump as an aligned human-readable block (the `table` sink).
    pub fn render_table(&self) -> String {
        let mut out = String::from("== recorder dump ==\n");
        if self.is_empty() {
            out.push_str("(nothing recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            let w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<w$}  {v}\n"));
            }
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "histogram {} (count {}, min {}, max {}, mean {:.1}):\n",
                h.name,
                h.count,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                }
            ));
            for &(b, c) in &h.buckets {
                let (lo, hi) = bucket_range(b as usize);
                out.push_str(&format!("  [{lo:>12} .. {hi:>12}]  {c}\n"));
            }
        }
        if !self.events.is_empty() || self.dropped_events > 0 {
            out.push_str(&format!(
                "events ({} recorded, {} dropped):\n",
                self.events.len(),
                self.dropped_events
            ));
            for e in &self.events {
                out.push_str(&format!(
                    "  {:>10} us  {} [{}] {}\n",
                    e.t_us, e.name, e.tag, e.detail
                ));
            }
        }
        out
    }
}

/// Snapshots the recorder.
pub fn dump() -> Dump {
    let r = recorder();
    let counters = r
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(n, &v)| (n.clone(), v))
        .collect();
    let histograms = r
        .hists
        .lock()
        .unwrap()
        .iter()
        .map(|(&n, h)| HistDump {
            name: n.to_string(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: (0..HIST_BUCKETS)
                .filter(|&b| h.buckets[b] > 0)
                .map(|b| (b as u32, h.buckets[b]))
                .collect(),
        })
        .collect();
    let buf = r.events.lock().unwrap();
    Dump {
        counters,
        histograms,
        events: buf
            .events
            .iter()
            .map(|e| EventDump {
                t_us: e.t_us,
                name: e.name.to_string(),
                tag: e.tag.to_string(),
                detail: e.detail.clone(),
            })
            .collect(),
        dropped_events: buf.dropped,
    }
}

/// Clears all counters, histograms, and events (tests and A/B loops).
pub fn reset() {
    let r = recorder();
    r.counters.lock().unwrap().clear();
    r.hists.lock().unwrap().clear();
    let mut buf = r.events.lock().unwrap();
    buf.events.clear();
    buf.dropped = 0;
}

/// End-of-run flush for the stderr sinks: `table` renders the human dump,
/// `jsonl` emits one summary line per counter/histogram. The `json` sink is
/// flushed by the result-JSON writer instead, and `off` does nothing.
pub fn flush_to_stderr() {
    match sink() {
        Sink::Off | Sink::Json => {}
        Sink::Table => eprint!("{}", dump().render_table()),
        Sink::Jsonl => {
            let d = dump();
            for (name, v) in &d.counters {
                eprintln!("{{\"counter\":{},\"value\":{v}}}", json::quote(name));
            }
            for h in &d.histograms {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(b, c)| format!("[{b},{c}]"))
                    .collect();
                eprintln!(
                    "{{\"histogram\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    json::quote(&h.name),
                    h.count,
                    h.sum,
                    buckets.join(",")
                );
            }
            if d.dropped_events > 0 {
                eprintln!("{{\"dropped_events\":{}}}", d.dropped_events);
            }
        }
    }
}

/// JSON string escaping shared by the recorder and the bench result writer.
pub mod json {
    /// Escapes a string for inclusion inside JSON quotes: `"`, `\`, the
    /// common control escapes, and `\u00XX` for remaining control bytes.
    /// Non-ASCII text passes through as UTF-8.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// `escape` wrapped in quotes.
    pub fn quote(s: &str) -> String {
        format!("\"{}\"", escape(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_dump_sorted() {
        counter_add("test.z_counter", 2);
        counter_add("test.a_counter", 1);
        counter_add("test.z_counter", 3);
        let d = dump();
        let get = |n: &str| {
            d.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("test.z_counter"), Some(5));
        assert_eq!(get("test.a_counter"), Some(1));
        let names: Vec<&str> = d.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "dump must be deterministically ordered");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(3), (4, 7));
        for v in [0u64, 1, 7, 8, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_range(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        for v in [1u64, 2, 3, 100] {
            record_value("test.hist_stats", v);
        }
        let d = dump();
        let h = d
            .histograms
            .iter()
            .find(|h| h.name == "test.hist_stats")
            .expect("histogram recorded");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
    }

    #[test]
    fn events_record_and_render() {
        event("test.shock", "inject_colour", "recruits=5");
        let d = dump();
        let e = d
            .events
            .iter()
            .find(|e| e.name == "test.shock")
            .expect("event recorded");
        assert_eq!(e.tag, "inject_colour");
        assert_eq!(e.detail, "recruits=5");
        let json = d.to_json();
        assert!(json.contains("\"inject_colour\""));
        let table = d.render_table();
        assert!(table.contains("inject_colour"));
    }

    #[test]
    fn dump_json_is_minimally_wellformed() {
        counter_add("test.json \"quoted\"\n", 1);
        record_value("test.json_hist", 9);
        let json = dump().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces in {json}"
        );
    }

    #[test]
    fn sink_parse_accepts_known_values() {
        assert_eq!(Sink::parse("off"), Sink::Off);
        assert_eq!(Sink::parse(""), Sink::Off);
        assert_eq!(Sink::parse("TABLE"), Sink::Table);
        assert_eq!(Sink::parse("jsonl"), Sink::Jsonl);
        assert_eq!(Sink::parse("json"), Sink::Json);
    }

    #[test]
    #[should_panic(expected = "PP_OBS must be one of")]
    fn sink_parse_rejects_unknown_values() {
        Sink::parse("tables");
    }

    #[test]
    fn macros_do_nothing_when_disabled() {
        // Without the `obs` feature `enabled()` is constant false and the
        // macro arguments must not be evaluated; with the feature but no
        // PP_OBS sink the same holds at runtime.
        if !enabled() {
            let mut evaluated = false;
            obs_count!("test.macro_off", {
                evaluated = true;
                1u64
            });
            obs_value!("test.macro_off", {
                evaluated = true;
                1u64
            });
            obs_event!("test.macro_off", "tag", "{}", {
                evaluated = true;
                1u64
            });
            assert!(!evaluated, "disabled macros must not evaluate arguments");
            let d = dump();
            assert!(!d.counters.iter().any(|(n, _)| n == "test.macro_off"));
        }
    }

    #[test]
    fn escape_round_trip_basics() {
        assert_eq!(json::escape("plain"), "plain");
        assert_eq!(json::escape("a\"b"), "a\\\"b");
        assert_eq!(json::escape("a\\b"), "a\\\\b");
        assert_eq!(json::escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
        assert_eq!(json::escape("naïve 🦀"), "naïve 🦀");
        assert_eq!(json::quote("x"), "\"x\"");
    }
}
