//! Property-based tests for the adversary machinery.

use pp_adversary::{apply, Churn, Schedule, Shock};
use pp_core::{init, AgentState, Colour, ConfigStats, Diversification, Weights};
use pp_engine::Simulator;
use pp_graph::{Complete, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n: usize, k: usize, seed: u64) -> Simulator<Diversification, Complete> {
    let weights = Weights::uniform(k);
    let states = init::all_dark_balanced(n, &weights);
    Simulator::new(
        Diversification::new(weights),
        Complete::new(n),
        states,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_agents_size_accounting(
        n in 4usize..60,
        add in 0usize..40,
        seed in 0u64..100,
    ) {
        let mut sim = setup(n, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        apply(
            &Shock::AddAgents { count: add, state: AgentState::dark(Colour::new(0)) },
            &mut sim,
            &mut rng,
        );
        prop_assert_eq!(sim.population().len(), n + add);
        prop_assert_eq!(sim.topology().len(), n + add);
        sim.run(50);
        prop_assert_eq!(sim.population().len(), n + add);
    }

    #[test]
    fn remove_agents_size_accounting(
        n in 10usize..60,
        remove in 0usize..8,
        seed in 0u64..100,
    ) {
        let mut sim = setup(n, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        apply(&Shock::RemoveAgents { count: remove }, &mut sim, &mut rng);
        prop_assert_eq!(sim.population().len(), n - remove);
        sim.run(50);
    }

    #[test]
    fn inject_makes_recruits_dark(
        n in 10usize..60,
        recruits in 1usize..10,
        seed in 0u64..100,
    ) {
        let recruits = recruits.min(n);
        let mut sim = setup(n, 3, seed);
        // Soften the population a bit first so shades are mixed.
        sim.run(5 * n as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let before = ConfigStats::from_states(sim.population().states(), 3);
        apply(
            &Shock::InjectColour { colour: Colour::new(2), recruits },
            &mut sim,
            &mut rng,
        );
        let after = ConfigStats::from_states(sim.population().states(), 3);
        // Dark support of the injected colour can only grow or stay.
        prop_assert!(after.dark_count(2) >= before.dark_count(2).min(recruits));
        prop_assert_eq!(after.population(), n);
    }

    #[test]
    fn retire_moves_all_mass(n in 10usize..60, seed in 0u64..100) {
        let mut sim = setup(n, 2, seed);
        sim.run(10 * n as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let before = ConfigStats::from_states(sim.population().states(), 2);
        apply(
            &Shock::RetireColour { colour: Colour::new(0), replacement: Colour::new(1) },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        prop_assert_eq!(stats.colour_count(0), 0);
        prop_assert_eq!(stats.colour_count(1), n);
        // Converted agents arrive dark (the paper's requirement): the dark
        // support of the replacement grows by exactly the retired mass.
        prop_assert_eq!(
            stats.dark_count(1),
            before.dark_count(1) + before.colour_count(0)
        );
    }

    #[test]
    fn schedule_applies_all_in_horizon(
        n in 20usize..50,
        gap in 10u64..200,
        seed in 0u64..100,
    ) {
        let mut sim = setup(n, 2, seed);
        let schedule = Schedule::new(vec![
            (gap, Shock::AddAgents { count: 3, state: AgentState::dark(Colour::new(0)) }),
            (2 * gap, Shock::AddAgents { count: 2, state: AgentState::dark(Colour::new(1)) }),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut observed = 0;
        schedule.run(&mut sim, 3 * gap, &mut rng, |_, _| observed += 1);
        // Two shocks + final observation.
        prop_assert_eq!(observed, 3);
        prop_assert_eq!(sim.population().len(), n + 5);
        prop_assert_eq!(sim.step_count(), 3 * gap);
    }

    #[test]
    fn churn_conserves_size_and_universe(
        n in 20usize..60,
        interval in 5u64..50,
        seed in 0u64..100,
    ) {
        let mut sim = setup(n, 3, seed);
        let churn = Churn::new(interval, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        churn.run(&mut sim, 20 * interval, &mut rng, |_, e| {
            assert_eq!(e.population().len(), n);
        });
        prop_assert!(sim
            .population()
            .states()
            .iter()
            .all(|s| s.colour.index() < 3));
    }
}
