//! Individual structural changes.

use pp_core::{AgentState, Colour};
use pp_engine::{Protocol, Simulator};
use pp_graph::Complete;
use rand::{Rng, RngExt};

/// A structural change an adversary (or the environment) applies to a
/// running population between time-steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shock {
    /// Add `count` new agents, all in the given state. The paper requires
    /// injected states to be **dark** for sustainability to extend to them;
    /// light injections are allowed here to study the unprotected case.
    AddAgents {
        /// Number of agents to add.
        count: usize,
        /// State of every added agent.
        state: AgentState,
    },
    /// Introduce (or reinforce) a colour by recolouring `recruits` random
    /// agents to `(colour, dark)` — the paper's "nature changes the colour
    /// of an agent by a completely new one" (an ant starts fanning).
    InjectColour {
        /// The colour to inject; must be within the protocol's weight table.
        colour: Colour,
        /// How many random agents are converted.
        recruits: usize,
    },
    /// Retire a colour: every supporter of `colour` is recoloured to
    /// `(replacement, dark)` — "a task is fulfilled and no longer
    /// necessary". This deliberately violates sustainability for the
    /// retired colour; the claim under test is that the *rest* of the
    /// system re-balances.
    RetireColour {
        /// The colour being removed from the population.
        colour: Colour,
        /// The colour its supporters convert to.
        replacement: Colour,
    },
    /// Remove `count` uniformly random agents (e.g. foragers lost to a
    /// rival colony). May erase a colour entirely if it hits the last
    /// supporters; experiments use it to probe the boundary of the
    /// robustness claim.
    RemoveAgents {
        /// Number of agents to remove.
        count: usize,
    },
}

/// Applies a shock to the simulator, resizing the complete-graph topology
/// when the population grows or shrinks.
///
/// # Panics
///
/// Panics if the shock would leave fewer than 2 agents, or if a recolouring
/// names an agent colour outside the population's weight universe (checked
/// downstream by `ConfigStats`).
pub fn apply<P>(shock: &Shock, sim: &mut Simulator<P, Complete>, rng: &mut dyn Rng)
where
    P: Protocol<State = AgentState>,
{
    match *shock {
        Shock::AddAgents { count, state } => {
            for _ in 0..count {
                sim.population_mut().push(state);
            }
            let n = sim.population().len();
            sim.set_topology(Complete::new(n));
        }
        Shock::InjectColour { colour, recruits } => {
            let n = sim.population().len();
            assert!(
                recruits <= n,
                "cannot recruit {recruits} agents from a population of {n}"
            );
            // Sample distinct agents by partial Fisher–Yates over indices.
            let mut indices: Vec<usize> = (0..n).collect();
            for slot in 0..recruits {
                let pick = rng.random_range(slot..n);
                indices.swap(slot, pick);
                sim.population_mut()
                    .set_state(indices[slot], AgentState::dark(colour));
            }
        }
        Shock::RetireColour {
            colour,
            replacement,
        } => {
            assert_ne!(colour, replacement, "retirement must change the colour");
            for s in sim.population_mut().states_mut() {
                if s.colour == colour {
                    *s = AgentState::dark(replacement);
                }
            }
        }
        Shock::RemoveAgents { count } => {
            let n = sim.population().len();
            assert!(
                n.saturating_sub(count) >= 2,
                "removing {count} of {n} agents would leave fewer than 2"
            );
            for _ in 0..count {
                let len = sim.population().len();
                let victim = rng.random_range(0..len);
                sim.population_mut().swap_remove(victim);
            }
            let n = sim.population().len();
            sim.set_topology(Complete::new(n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, ConfigStats, Diversification, Weights};
    use pp_graph::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, k: usize) -> Simulator<Diversification, Complete> {
        let weights = Weights::uniform(k);
        let states = init::all_dark_balanced(n, &weights);
        Simulator::new(Diversification::new(weights), Complete::new(n), states, 1)
    }

    #[test]
    fn add_agents_grows_population_and_topology() {
        let mut sim = setup(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        apply(
            &Shock::AddAgents {
                count: 5,
                state: AgentState::dark(Colour::new(1)),
            },
            &mut sim,
            &mut rng,
        );
        assert_eq!(sim.population().len(), 15);
        assert_eq!(sim.topology().len(), 15);
        // Simulation continues without panicking.
        sim.run(100);
    }

    #[test]
    fn inject_colour_converts_exactly_recruits() {
        let mut sim = setup(20, 3);
        let mut rng = StdRng::seed_from_u64(3);
        apply(
            &Shock::InjectColour {
                colour: Colour::new(2),
                recruits: 7,
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 3);
        // Colour 2 had ~7 agents before; injection recolours random agents,
        // so its support is at least 7 and all recruits are dark.
        assert!(stats.colour_count(2) >= 7);
        assert_eq!(stats.population(), 20);
    }

    #[test]
    fn inject_distinct_agents() {
        // Recruiting n agents converts the whole population: distinctness.
        let mut sim = setup(12, 2);
        let mut rng = StdRng::seed_from_u64(4);
        apply(
            &Shock::InjectColour {
                colour: Colour::new(0),
                recruits: 12,
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        assert_eq!(stats.colour_count(0), 12);
        assert_eq!(stats.dark_count(0), 12);
    }

    #[test]
    fn retire_colour_eliminates_it() {
        let mut sim = setup(20, 2);
        let mut rng = StdRng::seed_from_u64(5);
        apply(
            &Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(1),
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        assert_eq!(stats.colour_count(0), 0);
        assert_eq!(stats.colour_count(1), 20);
    }

    #[test]
    fn remove_agents_shrinks() {
        let mut sim = setup(30, 2);
        let mut rng = StdRng::seed_from_u64(6);
        apply(&Shock::RemoveAgents { count: 10 }, &mut sim, &mut rng);
        assert_eq!(sim.population().len(), 20);
        assert_eq!(sim.topology().len(), 20);
        sim.run(100);
    }

    #[test]
    #[should_panic(expected = "fewer than 2")]
    fn remove_cannot_empty_population() {
        let mut sim = setup(5, 2);
        let mut rng = StdRng::seed_from_u64(7);
        apply(&Shock::RemoveAgents { count: 4 }, &mut sim, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must change")]
    fn retire_requires_distinct_replacement() {
        let mut sim = setup(5, 2);
        let mut rng = StdRng::seed_from_u64(8);
        apply(
            &Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(0),
            },
            &mut sim,
            &mut rng,
        );
    }
}
