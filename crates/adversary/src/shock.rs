//! Individual structural changes.

use pp_core::{AgentState, Colour};
use pp_engine::Engine;
use rand::{Rng, RngExt};

/// A structural change an adversary (or the environment) applies to a
/// running population between time-steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shock {
    /// Add `count` new agents, all in the given state. The paper requires
    /// injected states to be **dark** for sustainability to extend to them;
    /// light injections are allowed here to study the unprotected case.
    AddAgents {
        /// Number of agents to add.
        count: usize,
        /// State of every added agent.
        state: AgentState,
    },
    /// Introduce (or reinforce) a colour by recolouring `recruits` random
    /// agents to `(colour, dark)` — the paper's "nature changes the colour
    /// of an agent by a completely new one" (an ant starts fanning).
    InjectColour {
        /// The colour to inject; must be within the protocol's weight table.
        colour: Colour,
        /// How many random agents are converted.
        recruits: usize,
    },
    /// Retire a colour: every supporter of `colour` is recoloured to
    /// `(replacement, dark)` — "a task is fulfilled and no longer
    /// necessary". This deliberately violates sustainability for the
    /// retired colour; the claim under test is that the *rest* of the
    /// system re-balances.
    RetireColour {
        /// The colour being removed from the population.
        colour: Colour,
        /// The colour its supporters convert to.
        replacement: Colour,
    },
    /// Remove `count` uniformly random agents (e.g. foragers lost to a
    /// rival colony). May erase a colour entirely if it hits the last
    /// supporters; experiments use it to probe the boundary of the
    /// robustness claim.
    RemoveAgents {
        /// Number of agents to remove.
        count: usize,
    },
}

impl Shock {
    /// Whether applying this shock changes the population size — and
    /// therefore requires a topology family with a canonical resize
    /// ([`Topology::resized`](pp_graph::Topology::resized) returning
    /// `Some`).
    pub fn resizes(&self) -> bool {
        matches!(self, Shock::AddAgents { .. } | Shock::RemoveAgents { .. })
    }

    /// Short stable label for tables and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Shock::AddAgents { .. } => "add_agents",
            Shock::InjectColour { .. } => "inject_colour",
            Shock::RetireColour { .. } => "retire_colour",
            Shock::RemoveAgents { .. } => "remove_agents",
        }
    }

    /// One representative instance of every shock variant, sized for a
    /// population of `n` agents over `k` colours. The model-check explorer
    /// enumerates these to check monotone invariants under each variant;
    /// `t14_adversary` uses them for its family × shock grid.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (retirement needs a distinct replacement colour).
    pub fn enumerate(n: usize, k: usize) -> Vec<Shock> {
        assert!(k >= 2, "shock enumeration needs at least 2 colours");
        vec![
            Shock::AddAgents {
                count: n.div_ceil(4).max(1),
                state: AgentState::dark(Colour::new(k - 1)),
            },
            Shock::InjectColour {
                colour: Colour::new(k - 1),
                recruits: (n / 3).max(1),
            },
            Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(1),
            },
            Shock::RemoveAgents {
                count: (n / 4).min(n.saturating_sub(2)),
            },
        ]
    }
}

/// Applies a shock to any engine tier between time-steps, through the
/// [`Engine`] structural-mutation surface: recolourings rewrite states,
/// agent addition/removal resizes the population (and therefore the
/// topology, via [`Topology::resized`](pp_graph::Topology::resized)).
///
/// RNG consumption is identical across tiers — the same `rng` stream
/// recruits the same agent indices on the generic, packed, turbo, and
/// sharded engines — so a generic and a packed run sharing both seeds
/// stay bit-identical through arbitrary shock sequences (verified by
/// `tests/adversary_equivalence.rs`).
///
/// # Panics
///
/// Panics if the shock would leave fewer than 2 agents, if a resizing
/// shock hits a topology family without a canonical resize, or if a
/// recolouring names an agent colour outside the population's weight
/// universe (checked downstream by `ConfigStats`).
pub fn apply<E>(shock: &Shock, sim: &mut E, rng: &mut dyn Rng)
where
    E: Engine<State = AgentState> + ?Sized,
{
    assert!(
        !shock.resizes() || sim.supports_resize(),
        "shock `{}` resizes the population, but topology family `{}` has no \
         canonical resize; use a resizable family (complete, cycle, path, star) \
         or a non-resizing shock",
        shock.label(),
        sim.topology_name()
    );
    match *shock {
        Shock::AddAgents { count, .. } => {
            pp_obs::obs_event!("adversary.shock", "add_agents", "count={count}")
        }
        Shock::InjectColour { colour, recruits } => pp_obs::obs_event!(
            "adversary.shock",
            "inject_colour",
            "colour={} recruits={recruits}",
            colour.index()
        ),
        Shock::RetireColour {
            colour,
            replacement,
        } => pp_obs::obs_event!(
            "adversary.shock",
            "retire_colour",
            "colour={} replacement={}",
            colour.index(),
            replacement.index()
        ),
        Shock::RemoveAgents { count } => {
            pp_obs::obs_event!("adversary.shock", "remove_agents", "count={count}")
        }
    }
    pp_obs::obs_count!("adversary.shocks", 1);
    match *shock {
        Shock::AddAgents { count, state } => {
            // One bulk resize, not `count` pushes: push_agent is O(n) on
            // the copy-rebuild tiers (sharded re-partitions per call), and
            // the shock consumes no RNG, so the bulk path is identical.
            let mut states = sim.snapshot();
            states.extend(std::iter::repeat_n(state, count));
            sim.set_states(&states);
        }
        Shock::InjectColour { colour, recruits } => {
            let n = sim.len();
            assert!(
                recruits <= n,
                "cannot recruit {recruits} agents from a population of {n}"
            );
            // Sample distinct agents by partial Fisher–Yates over indices,
            // against a snapshot so the draw stays a uniform distinct-agent
            // sample on every tier (including the dense adapter's
            // canonical ordering).
            let mut states = sim.snapshot();
            let mut indices: Vec<usize> = (0..n).collect();
            for slot in 0..recruits {
                let pick = rng.random_range(slot..n);
                indices.swap(slot, pick);
                states[indices[slot]] = AgentState::dark(colour);
            }
            sim.set_states(&states);
        }
        Shock::RetireColour {
            colour,
            replacement,
        } => {
            assert_ne!(colour, replacement, "retirement must change the colour");
            let mut states = sim.snapshot();
            for s in &mut states {
                if s.colour == colour {
                    *s = AgentState::dark(replacement);
                }
            }
            sim.set_states(&states);
        }
        Shock::RemoveAgents { count } => {
            let n = sim.len();
            assert!(
                n.saturating_sub(count) >= 2,
                "removing {count} of {n} agents would leave fewer than 2"
            );
            for _ in 0..count {
                let len = sim.len();
                let victim = rng.random_range(0..len);
                sim.swap_remove_agent(victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, ConfigStats, Diversification, Weights};
    use pp_engine::{PackedSimulator, Simulator, TurboSimulator};
    use pp_graph::{Complete, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, k: usize) -> Simulator<Diversification, Complete> {
        let weights = Weights::uniform(k);
        let states = init::all_dark_balanced(n, &weights);
        Simulator::new(Diversification::new(weights), Complete::new(n), states, 1)
    }

    #[test]
    fn add_agents_grows_population_and_topology() {
        let mut sim = setup(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        apply(
            &Shock::AddAgents {
                count: 5,
                state: AgentState::dark(Colour::new(1)),
            },
            &mut sim,
            &mut rng,
        );
        assert_eq!(sim.population().len(), 15);
        assert_eq!(sim.topology().len(), 15);
        // Simulation continues without panicking.
        sim.run(100);
    }

    #[test]
    fn inject_colour_converts_exactly_recruits() {
        let mut sim = setup(20, 3);
        let mut rng = StdRng::seed_from_u64(3);
        apply(
            &Shock::InjectColour {
                colour: Colour::new(2),
                recruits: 7,
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 3);
        // Colour 2 had ~7 agents before; injection recolours random agents,
        // so its support is at least 7 and all recruits are dark.
        assert!(stats.colour_count(2) >= 7);
        assert_eq!(stats.population(), 20);
    }

    #[test]
    fn inject_distinct_agents() {
        // Recruiting n agents converts the whole population: distinctness.
        let mut sim = setup(12, 2);
        let mut rng = StdRng::seed_from_u64(4);
        apply(
            &Shock::InjectColour {
                colour: Colour::new(0),
                recruits: 12,
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        assert_eq!(stats.colour_count(0), 12);
        assert_eq!(stats.dark_count(0), 12);
    }

    #[test]
    fn retire_colour_eliminates_it() {
        let mut sim = setup(20, 2);
        let mut rng = StdRng::seed_from_u64(5);
        apply(
            &Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(1),
            },
            &mut sim,
            &mut rng,
        );
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        assert_eq!(stats.colour_count(0), 0);
        assert_eq!(stats.colour_count(1), 20);
    }

    #[test]
    fn remove_agents_shrinks() {
        let mut sim = setup(30, 2);
        let mut rng = StdRng::seed_from_u64(6);
        apply(&Shock::RemoveAgents { count: 10 }, &mut sim, &mut rng);
        assert_eq!(sim.population().len(), 20);
        assert_eq!(sim.topology().len(), 20);
        sim.run(100);
    }

    #[test]
    fn shocks_apply_identically_on_every_fast_tier() {
        // Same shock stream on the generic, packed, and turbo engines ⇒
        // identical post-shock configurations (no simulation steps in
        // between, so this isolates the structural surface itself).
        let weights = Weights::uniform(3);
        let states = init::all_dark_balanced(24, &weights);
        let shocks = [
            Shock::AddAgents {
                count: 6,
                state: AgentState::dark(Colour::new(2)),
            },
            Shock::InjectColour {
                colour: Colour::new(1),
                recruits: 9,
            },
            Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(2),
            },
            Shock::RemoveAgents { count: 8 },
        ];
        let mut generic = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(24),
            states.clone(),
            1,
        );
        let mut packed = PackedSimulator::new(
            Diversification::new(weights.clone()),
            Complete::new(24),
            &states,
            1,
        );
        let mut turbo = TurboSimulator::<_, _, u8>::new(
            Diversification::new(weights.clone()),
            Complete::new(24),
            &states,
            1,
        );
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut rng_c = StdRng::seed_from_u64(9);
        for shock in &shocks {
            apply(shock, &mut generic, &mut rng_a);
            apply(shock, &mut packed, &mut rng_b);
            apply(shock, &mut turbo, &mut rng_c);
            assert_eq!(
                generic.population().states(),
                &packed.states_unpacked()[..],
                "packed diverged after {shock:?}"
            );
            assert_eq!(
                generic.population().states(),
                &turbo.states_unpacked()[..],
                "turbo diverged after {shock:?}"
            );
        }
    }

    #[test]
    #[should_panic(
        expected = "shock `add_agents` resizes the population, but topology family `torus4x5`"
    )]
    fn resizing_shock_on_fixed_family_names_both() {
        use pp_graph::Torus2d;
        let weights = Weights::uniform(2);
        let states = init::all_dark_balanced(20, &weights);
        let mut sim = Simulator::new(Diversification::new(weights), Torus2d::new(4, 5), states, 1);
        let mut rng = StdRng::seed_from_u64(11);
        apply(
            &Shock::AddAgents {
                count: 3,
                state: AgentState::dark(Colour::new(0)),
            },
            &mut sim,
            &mut rng,
        );
    }

    #[test]
    fn non_resizing_shocks_work_on_fixed_families() {
        use pp_graph::Torus2d;
        let weights = Weights::uniform(2);
        let states = init::all_dark_balanced(20, &weights);
        let mut sim = Simulator::new(Diversification::new(weights), Torus2d::new(4, 5), states, 1);
        let mut rng = StdRng::seed_from_u64(12);
        apply(
            &Shock::InjectColour {
                colour: Colour::new(1),
                recruits: 5,
            },
            &mut sim,
            &mut rng,
        );
        apply(
            &Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(1),
            },
            &mut sim,
            &mut rng,
        );
        assert_eq!(sim.population().len(), 20);
    }

    #[test]
    fn enumeration_covers_every_variant() {
        let shocks = Shock::enumerate(24, 3);
        let labels: Vec<_> = shocks.iter().map(Shock::label).collect();
        assert_eq!(
            labels,
            [
                "add_agents",
                "inject_colour",
                "retire_colour",
                "remove_agents"
            ]
        );
        assert!(shocks[0].resizes());
        assert!(!shocks[1].resizes());
        assert!(!shocks[2].resizes());
        assert!(shocks[3].resizes());
    }

    #[test]
    #[should_panic(expected = "fewer than 2")]
    fn remove_cannot_empty_population() {
        let mut sim = setup(5, 2);
        let mut rng = StdRng::seed_from_u64(7);
        apply(&Shock::RemoveAgents { count: 4 }, &mut sim, &mut rng);
    }

    #[test]
    #[should_panic(expected = "must change")]
    fn retire_requires_distinct_replacement() {
        let mut sim = setup(5, 2);
        let mut rng = StdRng::seed_from_u64(8);
        apply(
            &Shock::RetireColour {
                colour: Colour::new(0),
                replacement: Colour::new(0),
            },
            &mut sim,
            &mut rng,
        );
    }
}
