//! Recovery-time measurement: the quantitative robustness claim.

use crate::{apply, Shock};
use pp_core::{packed::config_stats_from_class_counts, region::GoodSet, AgentState};
use pp_engine::Engine;
use rand::Rng;

/// Applies `shock` to a (presumably converged) engine of any tier and
/// returns the number of further time-steps until the configuration
/// re-enters the good set `E(δ)`, checking every `check_every` steps;
/// `None` if it does not recover within `max_steps`.
///
/// The paper's robustness statement — "even when an adversary adds agents
/// and colours, the protocol quickly returns into a state of diversity and
/// fairness" — predicts recovery in `O(w² n log n)` steps; experiments
/// `t6_sustainability` and `t14_adversary` report this measurement across
/// shock types and engine tiers.
///
/// # Examples
///
/// ```
/// use pp_adversary::{recovery_time, Shock};
/// use pp_core::{init, region::GoodSet, Colour, Diversification, Weights};
/// use pp_engine::PackedSimulator;
/// use pp_graph::Complete;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let weights = Weights::uniform(2);
/// let n = 200;
/// let states = init::all_dark_balanced(n, &weights);
/// // Any engine tier works; here the packed fast path.
/// let mut sim = PackedSimulator::new(
///     Diversification::new(weights.clone()),
///     Complete::new(n),
///     &states,
///     5,
/// );
/// sim.run(100_000); // converge first
/// let good = GoodSet::new(weights, 0.25);
/// let mut rng = StdRng::seed_from_u64(6);
/// let t = recovery_time(
///     &mut sim,
///     &Shock::InjectColour { colour: Colour::new(0), recruits: 50 },
///     &good,
///     &mut rng,
///     2_000_000,
///     200,
/// );
/// assert!(t.is_some());
/// ```
///
/// # Panics
///
/// Panics if `check_every == 0`, or if the shock itself panics (resizing
/// shocks on non-resizable topology families, populations shrunk below 2).
pub fn recovery_time<E>(
    sim: &mut E,
    shock: &Shock,
    good: &GoodSet,
    shock_rng: &mut dyn Rng,
    max_steps: u64,
    check_every: u64,
) -> Option<u64>
where
    E: Engine<State = AgentState> + ?Sized,
{
    // Uniform guard at the entry point: the run_until impls differ in
    // where (and whether) they check, so enforce the documented contract
    // here with one message shared by every tier.
    assert!(check_every > 0, "check_every must be positive");
    apply(shock, sim, shock_rng);
    let start = sim.step_count();
    let k = good.weights().len();
    let recovered = sim
        .run_until(max_steps, check_every, &mut |counts, _| {
            good.contains(&config_stats_from_class_counts(counts, k))
        })
        .map(|hit| hit - start);
    match recovered {
        Some(t) => {
            pp_obs::obs_event!("adversary.recovery", "recovered", "steps={t}");
            pp_obs::obs_value!("adversary.recovery_steps", t);
        }
        None => pp_obs::obs_event!(
            "adversary.recovery",
            "timeout",
            "max_steps={max_steps} check_every={check_every}"
        ),
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, Colour, Diversification, Weights};
    use pp_engine::{Simulator, TurboSimulator};
    use pp_graph::Complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged_sim(n: usize) -> (Simulator<Diversification, Complete>, GoodSet) {
        let weights = Weights::uniform(2);
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            21,
        );
        sim.run(60_000);
        (sim, GoodSet::new(weights, 0.3))
    }

    #[test]
    fn recovers_from_injection() {
        let (mut sim, good) = converged_sim(150);
        let mut rng = StdRng::seed_from_u64(22);
        let t = recovery_time(
            &mut sim,
            &Shock::InjectColour {
                colour: Colour::new(0),
                recruits: 60,
            },
            &good,
            &mut rng,
            3_000_000,
            150,
        );
        assert!(t.is_some(), "no recovery from colour injection");
    }

    #[test]
    fn recovers_from_agent_addition() {
        let (mut sim, good) = converged_sim(150);
        let mut rng = StdRng::seed_from_u64(23);
        let t = recovery_time(
            &mut sim,
            &Shock::AddAgents {
                count: 80,
                state: AgentState::dark(Colour::new(1)),
            },
            &good,
            &mut rng,
            3_000_000,
            150,
        );
        assert!(t.is_some(), "no recovery from agent addition");
    }

    #[test]
    fn recovers_on_the_turbo_tier_too() {
        // The same measurement on the counter-based fast engine, including
        // a population-resizing shock (AddAgents → Complete::resized).
        let weights = Weights::uniform(2);
        let n = 150;
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = TurboSimulator::<_, _, u8>::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            &states,
            21,
        );
        sim.run(60_000);
        let good = GoodSet::new(weights, 0.3);
        let mut rng = StdRng::seed_from_u64(25);
        let t = recovery_time(
            &mut sim,
            &Shock::AddAgents {
                count: 80,
                state: AgentState::dark(Colour::new(1)),
            },
            &good,
            &mut rng,
            3_000_000,
            150,
        );
        assert!(t.is_some(), "no turbo recovery from agent addition");
        assert_eq!(pp_engine::Engine::len(&sim), n + 80);
    }

    #[test]
    fn bigger_shock_takes_longer_on_average() {
        // Average over seeds to avoid single-run noise.
        let mut small_total = 0u64;
        let mut large_total = 0u64;
        for seed in 0..5u64 {
            for (recruits, total) in [(15usize, &mut small_total), (70, &mut large_total)] {
                let weights = Weights::uniform(2);
                let n = 150;
                let states = init::all_dark_balanced(n, &weights);
                let mut sim = Simulator::new(
                    Diversification::new(weights.clone()),
                    Complete::new(n),
                    states,
                    100 + seed,
                );
                sim.run(60_000);
                let good = GoodSet::new(weights, 0.3);
                let mut rng = StdRng::seed_from_u64(200 + seed);
                let t = recovery_time(
                    &mut sim,
                    &Shock::InjectColour {
                        colour: Colour::new(0),
                        recruits,
                    },
                    &good,
                    &mut rng,
                    5_000_000,
                    150,
                )
                .expect("recovery");
                *total += t;
            }
        }
        assert!(
            large_total >= small_total,
            "large {large_total} vs small {small_total}"
        );
    }

    #[test]
    fn zero_check_every_panics_uniformly_on_every_tier() {
        use pp_engine::{PackedSimulator, ShardedSimulator, VecSimulator};

        let weights = Weights::uniform(2);
        let n = 20;
        let states = init::all_dark_balanced(n, &weights);
        let proto = || Diversification::new(weights.clone());
        let mut tiers: Vec<(&str, Box<dyn Engine<State = AgentState>>)> = vec![
            (
                "agent",
                Box::new(Simulator::new(proto(), Complete::new(n), states.clone(), 1)),
            ),
            (
                "packed",
                Box::new(PackedSimulator::new(proto(), Complete::new(n), &states, 1)),
            ),
            (
                "turbo",
                Box::new(TurboSimulator::<_, _, u8>::new(
                    proto(),
                    Complete::new(n),
                    &states,
                    1,
                )),
            ),
            (
                "sharded",
                Box::new(ShardedSimulator::<_, _, u8>::new(
                    proto(),
                    Complete::new(n),
                    &states,
                    1,
                )),
            ),
            (
                "vec",
                Box::new(VecSimulator::<_, _, u8, 1>::from_seed(
                    proto(),
                    Complete::new(n),
                    &states,
                    1,
                )),
            ),
        ];
        let good = GoodSet::new(weights.clone(), 0.3);
        let mut messages = Vec::new();
        for (name, sim) in &mut tiers {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = StdRng::seed_from_u64(30);
                recovery_time(
                    sim.as_mut(),
                    &Shock::InjectColour {
                        colour: Colour::new(0),
                        recruits: 2,
                    },
                    &good,
                    &mut rng,
                    100,
                    0,
                );
            }));
            let payload = result.expect_err(&format!("{name} accepted check_every == 0"));
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            messages.push((*name, msg));
        }
        for (name, msg) in &messages {
            assert_eq!(
                msg, "check_every must be positive",
                "tier {name} panicked with a different message"
            );
        }
    }

    #[test]
    fn timeout_returns_none() {
        let (mut sim, good) = converged_sim(150);
        let mut rng = StdRng::seed_from_u64(24);
        // A huge shock with a tiny budget cannot recover.
        let t = recovery_time(
            &mut sim,
            &Shock::InjectColour {
                colour: Colour::new(0),
                recruits: 140,
            },
            &good,
            &mut rng,
            10,
            5,
        );
        assert_eq!(t, None);
    }
}
