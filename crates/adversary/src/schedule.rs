//! Timed sequences of shocks.

use crate::{apply, Shock};
use pp_core::AgentState;
use pp_engine::Engine;
use rand::Rng;

/// A sequence of `(step, shock)` pairs applied to a run in step order.
///
/// # Examples
///
/// ```
/// use pp_adversary::{Schedule, Shock};
/// use pp_core::Colour;
///
/// let schedule = Schedule::new(vec![
///     (1_000, Shock::InjectColour { colour: Colour::new(1), recruits: 5 }),
///     (2_000, Shock::RemoveAgents { count: 3 }),
/// ]);
/// assert_eq!(schedule.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    events: Vec<(u64, Shock)>,
}

impl Schedule {
    /// Creates a schedule; events are sorted by step.
    pub fn new(mut events: Vec<(u64, Shock)>) -> Self {
        events.sort_by_key(|&(step, _)| step);
        Schedule { events }
    }

    /// Number of scheduled shocks.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no shocks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events in step order.
    pub fn events(&self) -> &[(u64, Shock)] {
        &self.events
    }

    /// Runs any engine tier for `total_steps`, applying each shock when the
    /// step counter reaches its scheduled step, and invoking `observer`
    /// after every shock and at the end.
    ///
    /// Shock RNG draws come from a separate stream (`shock_rng`) so the
    /// protocol trajectory and the adversary's choices can be varied
    /// independently across replications.
    ///
    /// # Panics
    ///
    /// Panics if a scheduled step lies before the engine's current step.
    pub fn run<E>(
        &self,
        sim: &mut E,
        total_steps: u64,
        shock_rng: &mut dyn Rng,
        mut observer: impl FnMut(u64, &E),
    ) where
        E: Engine<State = AgentState> + ?Sized,
    {
        let end = sim.step_count() + total_steps;
        for &(step, ref shock) in &self.events {
            assert!(
                step >= sim.step_count(),
                "shock scheduled at step {step}, but the run is already at {}",
                sim.step_count()
            );
            if step > end {
                break;
            }
            sim.run(step - sim.step_count());
            apply(shock, sim, shock_rng);
            observer(sim.step_count(), sim);
        }
        if sim.step_count() < end {
            sim.run(end - sim.step_count());
        }
        observer(sim.step_count(), sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{
        init, packed::config_stats_from_class_counts, Colour, ConfigStats, Diversification, Weights,
    };
    use pp_engine::{PackedSimulator, Simulator};
    use pp_graph::{Complete, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, k: usize) -> Simulator<Diversification, Complete> {
        let weights = Weights::uniform(k);
        let states = init::all_dark_balanced(n, &weights);
        Simulator::new(Diversification::new(weights), Complete::new(n), states, 1)
    }

    #[test]
    fn events_sorted_by_step() {
        let s = Schedule::new(vec![
            (500, Shock::RemoveAgents { count: 1 }),
            (100, Shock::RemoveAgents { count: 2 }),
        ]);
        assert_eq!(s.events()[0].0, 100);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn shocks_fire_at_scheduled_steps() {
        let mut sim = setup(30, 2);
        let schedule = Schedule::new(vec![
            (
                200,
                Shock::AddAgents {
                    count: 10,
                    state: AgentState::dark(Colour::new(0)),
                },
            ),
            (400, Shock::RemoveAgents { count: 5 }),
        ]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sizes = Vec::new();
        schedule.run(&mut sim, 1_000, &mut rng, |step, e| {
            sizes.push((step, e.len()));
        });
        assert_eq!(sizes, vec![(200, 40), (400, 35), (1_000, 35)]);
        assert_eq!(sim.step_count(), 1_000);
    }

    #[test]
    fn schedule_runs_on_the_packed_tier() {
        // The same schedule on the packed engine: sizes track the shocks
        // and the topology follows the population.
        let weights = Weights::uniform(2);
        let states = init::all_dark_balanced(30, &weights);
        let mut sim =
            PackedSimulator::new(Diversification::new(weights), Complete::new(30), &states, 1);
        let schedule = Schedule::new(vec![
            (
                200,
                Shock::AddAgents {
                    count: 10,
                    state: AgentState::dark(Colour::new(0)),
                },
            ),
            (400, Shock::RemoveAgents { count: 5 }),
        ]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut sizes = Vec::new();
        schedule.run(&mut sim, 1_000, &mut rng, |step, e| {
            sizes.push((step, e.len()));
        });
        assert_eq!(sizes, vec![(200, 40), (400, 35), (1_000, 35)]);
        assert_eq!(sim.topology().len(), 35);
        let stats = config_stats_from_class_counts(&pp_engine::Engine::class_counts(&sim), 2);
        assert_eq!(stats.population(), 35);
    }

    #[test]
    fn shocks_beyond_horizon_are_skipped() {
        let mut sim = setup(10, 2);
        let schedule = Schedule::new(vec![(5_000, Shock::RemoveAgents { count: 5 })]);
        let mut rng = StdRng::seed_from_u64(10);
        schedule.run(&mut sim, 100, &mut rng, |_, _| {});
        assert_eq!(sim.population().len(), 10);
        assert_eq!(sim.step_count(), 100);
    }

    #[test]
    fn empty_schedule_is_plain_run() {
        let mut sim = setup(10, 2);
        let schedule = Schedule::new(vec![]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut calls = 0;
        schedule.run(&mut sim, 250, &mut rng, |_, _| calls += 1);
        assert_eq!(sim.step_count(), 250);
        assert_eq!(calls, 1);
    }

    #[test]
    fn injected_colour_survives_thereafter() {
        // Sustainability extends to adversarially added colours: inject
        // colour 2 dark into a 3-colour universe where it was absent.
        let weights = Weights::uniform(3);
        let n = 60;
        // Start with colours 0 and 1 only (colour 2 unsupported).
        let mut counts = [n / 2, n / 2, 0];
        counts[0] += n - counts.iter().sum::<usize>();
        let states: Vec<AgentState> = counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| std::iter::repeat_n(AgentState::dark(Colour::new(i)), c))
            .collect();
        let mut sim = Simulator::new(Diversification::new(weights), Complete::new(n), states, 13);
        let schedule = Schedule::new(vec![(
            500,
            Shock::InjectColour {
                colour: Colour::new(2),
                recruits: 4,
            },
        )]);
        let mut rng = StdRng::seed_from_u64(14);
        schedule.run(&mut sim, 50_000, &mut rng, |_, _| {});
        let stats = ConfigStats::from_states(sim.population().states(), 3);
        assert!(stats.dark_count(2) >= 1, "injected colour died");
    }
}
