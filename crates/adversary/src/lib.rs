//! Adversarial structural changes for the Diversification protocol.
//!
//! The paper claims robustness: diversity, fairness and sustainability
//! continue to hold "when an adversary adds agents or colours", as long as
//! new colours arrive dark and the adversary does not erase the last dark
//! agent of a surviving colour. This crate makes those structural changes
//! executable:
//!
//! * [`Shock`] — a single structural change (add agents, inject a colour,
//!   retire a colour, remove agents);
//! * [`apply`] — applies a shock to a running simulator between time-steps;
//! * [`Schedule`] — a timed sequence of shocks woven into a run;
//! * [`Churn`] — sustained single-agent-reset churn (dynamic equilibrium);
//! * [`recovery_time`] — measures how long the protocol needs to return to
//!   the good set `E(δ)` after a shock, the quantitative form of the
//!   robustness claim.
//!
//! Everything is generic over the
//! [`pp_engine::Engine`] contract, so the same
//! adversarial processes run on the generic reference engine, the packed
//! and turbo fast paths, the sharded multi-core engine, and (for
//! complete-graph workloads) the count-based dense engine — whichever
//! tier is fastest for the topology at hand. Shock and churn RNG streams
//! are consumed identically on every tier, which keeps bit-exact tiers
//! bit-exact under adversarial runs too; see
//! `tests/adversary_equivalence.rs` for the contract tests.
//!
//! # Examples
//!
//! ```
//! use pp_adversary::{apply, Shock};
//! use pp_core::{init, AgentState, Colour, Diversification, Weights};
//! use pp_engine::Simulator;
//! use pp_graph::Complete;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let weights = Weights::uniform(2);
//! let n = 50;
//! let states = init::all_dark_balanced(n, &weights);
//! let mut sim = Simulator::new(
//!     Diversification::new(weights),
//!     Complete::new(n),
//!     states,
//!     3,
//! );
//! sim.run(1_000);
//! let mut rng = StdRng::seed_from_u64(4);
//! apply(
//!     &Shock::AddAgents {
//!         count: 10,
//!         state: AgentState::dark(Colour::new(0)),
//!     },
//!     &mut sim,
//!     &mut rng,
//! );
//! assert_eq!(sim.population().len(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod recovery;
pub mod schedule;
pub mod shock;

pub use churn::{error_under_churn, Churn};
pub use recovery::recovery_time;
pub use schedule::Schedule;
pub use shock::{apply, Shock};
