//! Sustained churn: continuous small perturbations rather than one-off
//! shocks.
//!
//! Real colonies lose and gain workers constantly. `Churn` models this as a
//! Poisson-like stream of single-agent resets: every `interval` time-steps
//! one uniformly random agent is replaced by a fresh **dark** agent of a
//! uniformly random colour. Diversity then holds in a *dynamic* equilibrium
//! whose error grows with the churn rate — measured by
//! [`error_under_churn`].
//!
//! Everything here is generic over the [`Engine`] contract: the same
//! churn process (and the same `churn_rng` stream) drives the generic,
//! packed, turbo, sharded, and dense tiers, so the fastest engine that
//! fits the topology also carries the adversarial workload.

use pp_core::{packed::config_stats_from_class_counts, AgentState, Colour, Weights};
use pp_engine::Engine;
use rand::{Rng, RngExt};

/// A sustained single-agent-reset churn process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Churn {
    interval: u64,
    num_colours: usize,
}

impl Churn {
    /// Creates churn that resets one random agent every `interval` steps to
    /// a random dark colour out of `num_colours`.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `num_colours == 0`.
    pub fn new(interval: u64, num_colours: usize) -> Self {
        assert!(interval > 0, "churn interval must be positive");
        assert!(num_colours > 0, "need at least one colour");
        Churn {
            interval,
            num_colours,
        }
    }

    /// Steps between resets.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The general churn loop, for any engine and any reset law: runs the
    /// engine for `total_steps`, and every [`interval`](Self::interval)
    /// steps resets one uniformly random agent to `reset(churn_rng)`,
    /// calling `observer` after each reset.
    ///
    /// Per event the RNG stream is consumed as `victim` first, then
    /// whatever `reset` draws — fixed so that runs on different engine
    /// tiers sharing a churn seed see identical churn decisions.
    pub fn run_with<E>(
        &self,
        sim: &mut E,
        total_steps: u64,
        churn_rng: &mut dyn Rng,
        mut reset: impl FnMut(&mut dyn Rng) -> E::State,
        mut observer: impl FnMut(u64, &E),
    ) where
        E: Engine + ?Sized,
    {
        pp_obs::obs_event!(
            "adversary.churn",
            "start",
            "interval={} total_steps={total_steps}",
            self.interval
        );
        let end = sim.step_count() + total_steps;
        while sim.step_count() < end {
            let burst = self.interval.min(end - sim.step_count());
            sim.run(burst);
            let n = sim.len();
            let victim = churn_rng.random_range(0..n);
            let state = reset(churn_rng);
            sim.set_state(victim, &state);
            pp_obs::obs_count!("adversary.churn_resets", 1);
            observer(sim.step_count(), sim);
        }
    }

    /// [`run_with`](Self::run_with) specialised to the paper's shaded
    /// states: each reset installs a **dark** agent of a uniformly random
    /// colour out of `num_colours`.
    pub fn run<E>(
        &self,
        sim: &mut E,
        total_steps: u64,
        churn_rng: &mut dyn Rng,
        observer: impl FnMut(u64, &E),
    ) where
        E: Engine<State = AgentState> + ?Sized,
    {
        let k = self.num_colours;
        self.run_with(
            sim,
            total_steps,
            churn_rng,
            |rng| AgentState::dark(Colour::new(rng.random_range(0..k))),
            observer,
        );
    }
}

/// Mean diversity error of a converged Diversification system subjected to
/// churn of the given `interval` for `horizon` steps, on any engine tier.
///
/// Faster churn (smaller interval) yields larger dynamic-equilibrium error;
/// `interval → ∞` recovers the churn-free Eq. (1) error.
pub fn error_under_churn<E>(
    sim: &mut E,
    weights: &Weights,
    interval: u64,
    horizon: u64,
    churn_rng: &mut dyn Rng,
) -> f64
where
    E: Engine<State = AgentState> + ?Sized,
{
    let churn = Churn::new(interval, weights.len());
    let k = weights.len();
    let mut total = 0.0;
    let mut samples = 0u64;
    churn.run(sim, horizon, churn_rng, |_, e| {
        let stats = config_stats_from_class_counts(&e.class_counts(), k);
        total += stats.max_diversity_error(weights);
        samples += 1;
    });
    if samples == 0 {
        0.0
    } else {
        total / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, ConfigStats, Diversification};
    use pp_engine::{PackedSimulator, Simulator, TurboSimulator};
    use pp_graph::{Complete, Torus2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged(n: usize, weights: &Weights, seed: u64) -> Simulator<Diversification, Complete> {
        let states = init::all_dark_balanced(n, weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            seed,
        );
        sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));
        sim
    }

    #[test]
    fn churn_preserves_population_size() {
        let weights = Weights::uniform(3);
        let mut sim = converged(120, &weights, 1);
        let churn = Churn::new(50, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut events = 0;
        churn.run(&mut sim, 5_000, &mut rng, |_, e| {
            assert_eq!(e.len(), 120);
            events += 1;
        });
        assert_eq!(events, 100);
    }

    #[test]
    fn faster_churn_hurts_more() {
        let weights = Weights::new(vec![1.0, 3.0]).unwrap();
        let n = 300;
        let horizon = 300_000;
        let mut slow_sim = converged(n, &weights, 3);
        let mut fast_sim = converged(n, &weights, 3);
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let slow = error_under_churn(&mut slow_sim, &weights, 5_000, horizon, &mut rng_a);
        let fast = error_under_churn(&mut fast_sim, &weights, 20, horizon, &mut rng_b);
        assert!(
            fast > slow,
            "fast churn error {fast} should exceed slow churn error {slow}"
        );
    }

    #[test]
    fn diversity_survives_moderate_churn() {
        let weights = Weights::uniform(4);
        let n = 400;
        let mut sim = converged(n, &weights, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let err = error_under_churn(&mut sim, &weights, 2_000, 400_000, &mut rng);
        assert!(err < 0.15, "diversity lost under moderate churn: {err}");
        // Sustainability also survives: churn only ever ADDS dark agents.
        let stats = ConfigStats::from_states(sim.population().states(), 4);
        assert!(stats.all_colours_alive());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn rejects_zero_interval() {
        Churn::new(0, 2);
    }

    #[test]
    fn packed_churn_matches_generic_trajectory() {
        // Same engine seed + same churn seed ⇒ identical states after every
        // reset, on the complete graph where both engines apply — now
        // through the one generic churn loop.
        let weights = Weights::new(vec![1.0, 2.0, 4.0]).unwrap();
        let n = 96;
        let states = init::all_dark_balanced(n, &weights);
        let mut generic = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states.clone(),
            17,
        );
        let mut fast = PackedSimulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            &states,
            17,
        );
        let churn = Churn::new(40, weights.len());
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut generic_snaps = Vec::new();
        churn.run(&mut generic, 4_000, &mut rng_a, |t, e| {
            generic_snaps.push((t, e.snapshot()));
        });
        let mut i = 0;
        churn.run(&mut fast, 4_000, &mut rng_b, |t, e| {
            let (gt, gstates) = &generic_snaps[i];
            assert_eq!(t, *gt);
            assert_eq!(&e.snapshot(), gstates, "diverged at step {t}");
            i += 1;
        });
        assert_eq!(i, generic_snaps.len());
    }

    #[test]
    fn turbo_churn_error_stays_diverse_on_a_graph() {
        // The adversary-on-the-fast-path combination the refactor exists
        // for: churn on the turbo engine over a non-complete topology.
        let weights = Weights::uniform(3);
        let n = 256;
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = TurboSimulator::<_, _, u8>::new(
            Diversification::new(weights.clone()),
            Torus2d::new(16, 16),
            &states,
            9,
        );
        sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));
        let mut rng = StdRng::seed_from_u64(10);
        let err = error_under_churn(&mut sim, &weights, 1_000, 200_000, &mut rng);
        assert!(err < 0.3, "turbo churn error {err}");
        let stats =
            config_stats_from_class_counts(&pp_engine::Engine::class_counts(&sim), weights.len());
        assert!(stats.all_colours_alive());
    }
}
