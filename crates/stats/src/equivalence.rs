//! The statistical-equivalence harness.
//!
//! The workspace runs the same population process on engines with two
//! different correctness contracts. The **bit-exact tier**
//! (`Simulator` ↔ `PackedSimulator`) is tested by trajectory equality
//! under a shared seed. The **statistical tier** (`DenseSimulator`, the
//! turbo engine) promises only that the *process distribution* is
//! unchanged — so its contract test is a hypothesis-testing problem: run
//! both engines over an ensemble of independent seeds, reduce each run to
//! per-seed observables, and test that the two ensembles are samples from
//! one distribution.
//!
//! This module is that test, shared by every statistical-tier comparison
//! (dense-vs-agent and turbo-vs-packed) so the methodology is written down
//! once:
//!
//! * [`chi_square_two_sample`] — categorical observables (terminal-state
//!   histograms across a seed ensemble);
//! * [`ks_two_sample`] — continuous observables (convergence-time
//!   distributions);
//! * [`mean_z_test`] / [`variance_z_test`] — moment checks (diversity-error
//!   trajectories at checkpoints);
//! * [`EquivalenceSuite`] — collects many labelled tests over a
//!   protocol × topology grid and applies a Bonferroni-corrected
//!   family-wise threshold, so growing the grid never quietly inflates the
//!   false-alarm rate.
//!
//! All tests are two-sided at the suite's `alpha`; with the fixed seeds the
//! test-suites use, outcomes are deterministic.
//!
//! # Examples
//!
//! ```
//! use pp_stats::equivalence::EquivalenceSuite;
//!
//! let a = [5.0, 6.0, 5.5, 6.1, 5.2, 5.9, 6.3, 5.4];
//! let b = [5.8, 5.1, 6.2, 5.6, 5.3, 6.0, 5.7, 5.95];
//! let mut suite = EquivalenceSuite::new("demo", 1e-3);
//! suite.check_distribution("toy observable", &a, &b);
//! suite.check_moments("toy observable", &a, &b);
//! assert!(suite.passed());
//! suite.assert_pass();
//! ```

use crate::gof::{chi2_sf, ks_sf, normal_sf};

/// One hypothesis test's outcome: the statistic and its p-value under the
/// null "both ensembles are drawn from the same distribution".
#[derive(Debug, Clone)]
pub struct TestResult {
    /// The test statistic (chi-square, KS `D`, or `|z|`).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Human-readable context for failure messages (df, sample sizes,
    /// observed means, …).
    pub detail: String,
}

/// Two-sample chi-square test on category counts.
///
/// `a` and `b` are counts over the same categories (e.g. how many seeds
/// ended in each terminal state class). Uses the unequal-total two-sample
/// statistic `Σ (√(N_b/N_a)·a_i − √(N_a/N_b)·b_i)² / (a_i + b_i)` with
/// `df = (#non-empty categories) − 1` (one df is absorbed because the
/// statistic conditions on the totals).
///
/// Categories where both samples are empty are skipped. For validity the
/// expected count per tested category should not be tiny; use
/// [`pool_sparse_categories`] first when in doubt.
///
/// If at most one non-empty category remains, both ensembles sit entirely
/// in the same cell: the observable is constant and carries no
/// distributional signal, so the test degenerates to a pass (`p = 1`).
///
/// # Panics
///
/// Panics if the slices' lengths differ or either sample is empty.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> TestResult {
    assert_eq!(a.len(), b.len(), "category count mismatch");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "chi-square needs non-empty samples");
    let ka = (nb as f64 / na as f64).sqrt();
    let kb = (na as f64 / nb as f64).sqrt();
    let mut stat = 0.0;
    let mut used = 0usize;
    for (&ai, &bi) in a.iter().zip(b) {
        let total = ai + bi;
        if total == 0 {
            continue;
        }
        used += 1;
        let diff = ka * ai as f64 - kb * bi as f64;
        stat += diff * diff / total as f64;
    }
    if used < 2 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
            detail: format!("degenerate: one shared category, N = ({na}, {nb})"),
        };
    }
    let df = (used - 1) as f64;
    TestResult {
        statistic: stat,
        p_value: chi2_sf(stat, df),
        detail: format!("chi2 = {stat:.3}, df = {df}, N = ({na}, {nb})"),
    }
}

/// Pools trailing sparse categories so every tested cell has a combined
/// count of at least `min_total`.
///
/// Categories are merged greedily from the highest index downward into
/// their predecessor — appropriate for ordered histograms whose tails are
/// thin. Returns the pooled pair of count vectors (always at least two
/// categories if the inputs had two non-empty ones).
pub fn pool_sparse_categories(a: &[u64], b: &[u64], min_total: u64) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "category count mismatch");
    let mut pa = a.to_vec();
    let mut pb = b.to_vec();
    let mut i = pa.len();
    while i > 1 {
        i -= 1;
        if pa[i] + pb[i] < min_total {
            pa[i - 1] += pa[i];
            pb[i - 1] += pb[i];
            pa.remove(i);
            pb.remove(i);
        }
    }
    (pa, pb)
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Compares the empirical CDFs of two continuous ensembles (convergence
/// times, terminal errors); p-value from the asymptotic Kolmogorov
/// distribution with the Stephens small-sample correction
/// `λ = (√Nₑ + 0.12 + 0.11/√Nₑ)·D`, `Nₑ = n_a·n_b/(n_a + n_b)`.
///
/// Ties are handled correctly (the CDF gap is evaluated only between
/// distinct values).
///
/// # Panics
///
/// Panics if either sample is empty or any value is NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    assert!(
        sa.iter().chain(sb.iter()).all(|x| !x.is_nan()),
        "KS sample contains NaN"
    );
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    TestResult {
        statistic: d,
        p_value: ks_sf(lambda),
        detail: format!("D = {d:.4}, n = ({}, {})", sa.len(), sb.len()),
    }
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Welch two-sample z-test on means.
///
/// `z = (x̄_a − x̄_b) / √(s²_a/n_a + s²_b/n_b)`, two-sided normal p-value —
/// appropriate for the seed-ensemble sizes the harness runs (≥ ~20). If
/// both ensembles are exactly constant and equal the test passes with
/// `p = 1`.
///
/// # Panics
///
/// Panics if either sample has fewer than two values.
pub fn mean_z_test(a: &[f64], b: &[f64]) -> TestResult {
    assert!(a.len() >= 2 && b.len() >= 2, "mean test needs n >= 2");
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    let z = if se > 0.0 {
        (ma - mb).abs() / se
    } else if ma == mb {
        0.0
    } else {
        f64::INFINITY
    };
    TestResult {
        statistic: z,
        p_value: 2.0 * normal_sf(z),
        detail: format!("mean {ma:.4} vs {mb:.4}, |z| = {z:.3}"),
    }
}

/// Two-sample z-test on variances, using the empirical fourth moment for
/// the standard error (`Var(s²) ≈ (m₄ − s⁴)/n`), which stays calibrated
/// for the non-normal, often skewed observables simulations produce —
/// **provided the ensembles are not tiny**: below ~20 samples the
/// empirical `m₄` badly underestimates the spread of `s²` and the test
/// false-rejects; prefer
/// [`EquivalenceSuite::check_moments`], which applies that floor.
///
/// If both ensembles are exactly constant the test passes with `p = 1`.
///
/// # Panics
///
/// Panics if either sample has fewer than four values (the fourth moment
/// is meaningless below that).
pub fn variance_z_test(a: &[f64], b: &[f64]) -> TestResult {
    assert!(a.len() >= 4 && b.len() >= 4, "variance test needs n >= 4");
    let se2 = |xs: &[f64]| -> (f64, f64) {
        let (mean, var) = mean_var(xs);
        let n = xs.len() as f64;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        ((m4 - var * var).max(0.0) / n, var)
    };
    let (sa, va) = se2(a);
    let (sb, vb) = se2(b);
    let se = (sa + sb).sqrt();
    let z = if se > 0.0 {
        (va - vb).abs() / se
    } else if va == vb {
        0.0
    } else {
        f64::INFINITY
    };
    TestResult {
        statistic: z,
        p_value: 2.0 * normal_sf(z),
        detail: format!("var {va:.4} vs {vb:.4}, |z| = {z:.3}"),
    }
}

/// A battery of labelled equivalence tests with one family-wise error
/// budget.
///
/// Tests are recorded with [`record`](Self::record) (or the typed
/// `check_*` helpers) and judged together: the suite fails iff any test's
/// p-value falls below the **Bonferroni-corrected** threshold
/// `alpha / #tests`. That keeps the family-wise false-alarm probability at
/// `alpha` no matter how many protocol × topology cells a comparison
/// sweeps, so adding coverage never makes the suite flakier.
#[derive(Debug)]
pub struct EquivalenceSuite {
    name: String,
    alpha: f64,
    results: Vec<(String, TestResult)>,
}

impl EquivalenceSuite {
    /// Smallest ensemble [`check_moments`](Self::check_moments) runs the
    /// variance test at. Empirically, the normal approximation with an
    /// empirical fourth-moment standard error is calibrated from ~20
    /// samples up; at 8 seeds it rejects identical engines at
    /// `p < 10⁻⁸`.
    pub const VARIANCE_TEST_MIN_N: usize = 20;

    /// Creates an empty suite with family-wise error budget `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(name: impl Into<String>, alpha: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha) && alpha > 0.0,
            "bad alpha {alpha}"
        );
        EquivalenceSuite {
            name: name.into(),
            alpha,
            results: Vec::new(),
        }
    }

    /// Records one test outcome under `label`.
    pub fn record(&mut self, label: impl Into<String>, result: TestResult) {
        self.results.push((label.into(), result));
    }

    /// Chi-square check on categorical counts (sparse cells pooled to a
    /// combined count of ≥ 8 first).
    pub fn check_counts(&mut self, label: impl Into<String>, a: &[u64], b: &[u64]) {
        let (pa, pb) = pool_sparse_categories(a, b, 8);
        self.record(label, chi_square_two_sample(&pa, &pb));
    }

    /// KS check on continuous per-seed observables.
    pub fn check_distribution(&mut self, label: impl Into<String>, a: &[f64], b: &[f64]) {
        self.record(label, ks_two_sample(a, b));
    }

    /// Moment checks on per-seed observables: always the mean test, plus
    /// the variance test when both ensembles have at least
    /// [`VARIANCE_TEST_MIN_N`](Self::VARIANCE_TEST_MIN_N) samples — below
    /// that the fourth-moment standard error is uncalibrated and
    /// [`variance_z_test`] false-rejects identical distributions.
    pub fn check_moments(&mut self, label: impl Into<String>, a: &[f64], b: &[f64]) {
        let label = label.into();
        self.record(format!("{label} [mean]"), mean_z_test(a, b));
        if a.len() >= Self::VARIANCE_TEST_MIN_N && b.len() >= Self::VARIANCE_TEST_MIN_N {
            self.record(format!("{label} [variance]"), variance_z_test(a, b));
        }
    }

    /// Number of recorded tests.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether no tests have been recorded.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The per-test threshold: `alpha / #tests`.
    pub fn threshold(&self) -> f64 {
        self.alpha / self.results.len().max(1) as f64
    }

    /// The recorded tests whose p-value falls below the corrected
    /// threshold.
    pub fn failures(&self) -> Vec<&(String, TestResult)> {
        let thr = self.threshold();
        self.results
            .iter()
            .filter(|(_, r)| r.p_value < thr)
            .collect()
    }

    /// `true` iff at least one test was recorded and none failed.
    pub fn passed(&self) -> bool {
        !self.results.is_empty() && self.failures().is_empty()
    }

    /// Renders every recorded test as one line: pass/fail marker, label,
    /// statistic, p-value.
    pub fn render(&self) -> String {
        let thr = self.threshold();
        let mut out = format!(
            "equivalence suite `{}`: {} tests, alpha = {} (per-test threshold {thr:.2e})\n",
            self.name,
            self.results.len(),
            self.alpha
        );
        for (label, r) in &self.results {
            let mark = if r.p_value < thr { "FAIL" } else { "  ok" };
            out.push_str(&format!(
                "{mark}  p = {:<10.3e} {label}  ({})\n",
                r.p_value, r.detail
            ));
        }
        out
    }

    /// Panics with the rendered table unless [`passed`](Self::passed).
    ///
    /// # Panics
    ///
    /// Panics if the suite is empty (a vacuous pass would hide a harness
    /// wiring bug) or any test fails the corrected threshold.
    pub fn assert_pass(&self) {
        assert!(
            !self.results.is_empty(),
            "equivalence suite `{}` recorded no tests",
            self.name
        );
        assert!(
            self.failures().is_empty(),
            "statistical equivalence rejected:\n{}",
            self.render()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn normalish(seed: u64, n: usize, shift: f64) -> Vec<f64> {
        // Sum of 8 uniforms: symmetric, light-tailed, fast.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..8).map(|_| rng.random_unit()).sum::<f64>() + shift)
            .collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let a = normalish(1, 200, 0.0);
        let b = normalish(2, 200, 0.0);
        let mut suite = EquivalenceSuite::new("same", 1e-3);
        suite.check_distribution("ks", &a, &b);
        suite.check_moments("moments", &a, &b);
        suite.check_counts("cats", &[50, 60, 45, 45], &[55, 52, 48, 45]);
        suite.assert_pass();
        assert!(suite.passed());
        assert_eq!(suite.len(), 4);
    }

    #[test]
    fn shifted_mean_is_caught() {
        let a = normalish(3, 200, 0.0);
        let b = normalish(4, 200, 0.8); // ~1.0 sd shift of the sum-of-8
        let mut suite = EquivalenceSuite::new("shift", 1e-3);
        suite.check_distribution("ks", &a, &b);
        suite.check_moments("moments", &a, &b);
        assert!(!suite.passed());
        let failures = suite.failures();
        assert!(
            failures.iter().any(|(l, _)| l.contains("mean")),
            "mean test should flag the shift:\n{}",
            suite.render()
        );
        assert!(
            failures.iter().any(|(l, _)| l.contains("ks")),
            "KS should flag the shift:\n{}",
            suite.render()
        );
    }

    #[test]
    fn inflated_variance_is_caught() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = normalish(5, 300, 0.0);
        let b: Vec<f64> = normalish(6, 300, 0.0)
            .into_iter()
            .map(|x| 4.0 + (x - 4.0) * 2.0 + 0.0 * rng.random_unit())
            .collect();
        let mut suite = EquivalenceSuite::new("var", 1e-3);
        suite.check_moments("moments", &a, &b);
        assert!(!suite.passed());
        assert!(
            suite.failures().iter().any(|(l, _)| l.contains("variance")),
            "variance test should flag the scaling:\n{}",
            suite.render()
        );
    }

    #[test]
    fn biased_categories_are_caught() {
        let a = [100u64, 100, 100, 100];
        let b = [160u64, 80, 80, 80];
        let mut suite = EquivalenceSuite::new("cat", 1e-3);
        suite.check_counts("histogram", &a, &b);
        assert!(!suite.passed(), "{}", suite.render());
    }

    #[test]
    fn sparse_pooling_merges_thin_tails() {
        // The thin tail cells (2+1, 1+2, 0+1 — and the merged 3+4 still
        // below 8) collapse into the second cell.
        let (pa, pb) = pool_sparse_categories(&[40, 30, 2, 1, 0], &[38, 33, 1, 2, 1], 8);
        assert_eq!(pa, vec![40, 33]);
        assert_eq!(pb, vec![38, 37]);
        assert_eq!(pa.iter().sum::<u64>(), 73);
        assert_eq!(pb.iter().sum::<u64>(), 75);
        // Everything merged when all cells are thin.
        let (pa, pb) = pool_sparse_categories(&[1, 1, 1], &[1, 1, 1], 100);
        assert_eq!(pa.len(), 1);
        assert_eq!(pb.len(), 1);
    }

    #[test]
    fn ks_handles_ties_and_constant_samples() {
        let a = [1.0, 1.0, 1.0, 2.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 0.2).abs() < 1e-12, "D = {}", r.statistic);
        // Identical constants: D = 0, p = 1.
        let r = ks_two_sample(&[3.0; 10], &[3.0; 10]);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_equal_moments_pass() {
        let r = mean_z_test(&[2.0; 8], &[2.0; 8]);
        assert_eq!(r.statistic, 0.0);
        let r = variance_z_test(&[2.0; 8], &[2.0; 8]);
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn bonferroni_threshold_scales_with_suite_size() {
        let mut suite = EquivalenceSuite::new("thr", 0.01);
        let a = normalish(7, 50, 0.0);
        let b = normalish(8, 50, 0.0);
        for i in 0..10 {
            suite.check_distribution(format!("t{i}"), &a, &b);
        }
        assert!((suite.threshold() - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "recorded no tests")]
    fn empty_suite_cannot_pass_vacuously() {
        EquivalenceSuite::new("empty", 0.001).assert_pass();
    }

    #[test]
    #[should_panic(expected = "statistical equivalence rejected")]
    fn assert_pass_panics_with_report() {
        let mut suite = EquivalenceSuite::new("bad", 1e-3);
        suite.check_counts("histogram", &[400, 100], &[100, 400]);
        suite.assert_pass();
    }
}
