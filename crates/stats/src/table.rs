//! Plain-text aligned tables for experiment output.

/// A column-aligned plain-text table.
///
/// Every experiment binary prints its results through `Table`, giving the
/// bench/experiment logs a uniform, diffable format (the "rows the paper
/// reports"). Cells are strings; numeric formatting is the caller's choice.
///
/// # Examples
///
/// ```
/// use pp_stats::Table;
///
/// let mut t = Table::new(["n", "error"]);
/// t.row(["1024", "0.031"]);
/// t.row(["4096", "0.016"]);
/// let text = t.render();
/// assert!(text.contains("n"));
/// assert!(text.contains("4096"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.header.len()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            joined.join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as comma-separated values (header first).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float compactly for table cells (4 significant decimals, or
/// scientific notation for very small/large magnitudes).
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-4 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        let csv = t.render_csv();
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn counts() {
        let mut t = Table::new(["a"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 1);
    }

    #[test]
    fn fmt_f64_modes() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5000");
        assert!(fmt_f64(1e-7).contains('e'));
        assert!(fmt_f64(3.2e9).contains('e'));
    }
}
