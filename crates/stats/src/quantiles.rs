//! Exact order statistics on in-memory samples.

/// Returns the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of `xs` using linear
/// interpolation between order statistics (type-7, the R/NumPy default).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use pp_stats::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// ```
///
/// # Panics
///
/// Panics if any sample is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!(xs.iter().all(|x| !x.is_nan()), "quantile: NaN sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    Some(quantile_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `xs` is already sorted ascending, avoiding
/// the copy and sort. Behaviour is unspecified for unsorted input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of `xs` (the `0.5`-quantile); `None` when empty.
///
/// # Examples
///
/// ```
/// use pp_stats::median;
///
/// assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(median(&[]), None);
/// ```
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Interquartile range (`q75 − q25`); `None` when empty.
pub fn iqr(xs: &[f64]) -> Option<f64> {
    Some(quantile(xs, 0.75)? - quantile(xs, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(iqr(&[]), None);
    }

    #[test]
    fn iqr_of_uniform() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert!((iqr(&xs).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_q_clamped() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -3.0), Some(1.0));
        assert_eq!(quantile(&xs, 9.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        quantile(&[1.0, f64::NAN], 0.5);
    }
}
