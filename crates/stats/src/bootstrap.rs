//! Bootstrap confidence intervals for seed-level aggregates.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Percentile-bootstrap confidence interval for the mean of `xs`.
///
/// Resamples `xs` with replacement `resamples` times and returns the
/// `(lo, hi)` percentile bounds at confidence `level` (e.g. `0.95`).
/// The resampling RNG is seeded with `seed` so the interval is reproducible.
///
/// Returns `None` for an empty sample.
///
/// # Examples
///
/// ```
/// use pp_stats::bootstrap_mean_ci;
///
/// let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
/// let (lo, hi) = bootstrap_mean_ci(&xs, 200, 0.95, 1).unwrap();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(lo <= mean && mean <= hi);
/// ```
///
/// # Panics
///
/// Panics if `level` is not strictly inside `(0, 1)` or `resamples == 0`.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<(f64, f64)> {
    assert!(resamples > 0, "bootstrap requires at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1), got {level}"
    );
    if xs.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += xs[rng.random_range(0..n)];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantiles::quantile_sorted(&means, alpha);
    let hi = crate::quantiles::quantile_sorted(&means, 1.0 - alpha);
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_sample_mean() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&xs, 500, 0.95, 42).unwrap();
        assert!(lo <= mean && mean <= hi, "{lo} {mean} {hi}");
        assert!(lo < hi);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let a = bootstrap_mean_ci(&xs, 100, 0.9, 7);
        let b = bootstrap_mean_ci(&xs, 100, 0.9, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_sample_collapses() {
        let xs = [4.0; 20];
        let (lo, hi) = bootstrap_mean_ci(&xs, 100, 0.95, 3).unwrap();
        assert_eq!(lo, 4.0);
        assert_eq!(hi, 4.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(bootstrap_mean_ci(&[], 10, 0.9, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn rejects_bad_level() {
        bootstrap_mean_ci(&[1.0], 10, 1.0, 0);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs: Vec<f64> = (0..60).map(|i| (i as f64).sin() * 5.0).collect();
        let (lo90, hi90) = bootstrap_mean_ci(&xs, 400, 0.90, 11).unwrap();
        let (lo99, hi99) = bootstrap_mean_ci(&xs, 400, 0.99, 11).unwrap();
        assert!(hi99 - lo99 >= hi90 - lo90);
    }
}
