//! Least-squares fits, used to estimate scaling exponents.
//!
//! The reproduction checks *shapes*, not constants: e.g. Theorem 1.3 predicts
//! convergence time `Θ(w² n log n)`, so the harness fits
//! `log T = a + b · log(n log n)` and checks `b ≈ 1`; Eq. (1) predicts a
//! diversity error `Õ(1/√n)`, so the harness checks a log–log slope `≈ −1/2`.

/// Result of a simple linear regression `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

impl Fit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

impl std::fmt::Display for Fit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.4} + {:.4}·x (R² = {:.4})",
            self.intercept, self.slope, self.r_squared
        )
    }
}

/// Ordinary least-squares fit of `y ≈ a + b·x`.
///
/// Returns `None` if fewer than two points are supplied or all `x` are equal
/// (the slope would be undefined).
///
/// # Examples
///
/// ```
/// use pp_stats::linear_fit;
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let fit = linear_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `xs.len() != ys.len()` or any value is non-finite.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    assert_eq!(xs.len(), ys.len(), "linear_fit: mismatched lengths");
    assert!(
        xs.iter().chain(ys.iter()).all(|v| v.is_finite()),
        "linear_fit: non-finite input"
    );
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Fit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y ≈ C · x^b` by regressing `ln y` on `ln x`; the returned
/// [`Fit::slope`] is the scaling exponent `b`.
///
/// Returns `None` if fewer than two valid points remain, all `x` coincide, or
/// any input is non-positive (logarithm undefined).
///
/// # Examples
///
/// ```
/// use pp_stats::loglog_fit;
///
/// // y = 3·x²
/// let xs = [1.0, 2.0, 4.0, 8.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
/// let fit = loglog_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// ```
pub fn loglog_fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    assert_eq!(xs.len(), ys.len(), "loglog_fit: mismatched lengths");
    if xs
        .iter()
        .chain(ys.iter())
        .any(|&v| v <= 0.0 || !v.is_finite())
    {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 4.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope + 0.5).abs() < 1e-12);
        assert!((f.intercept - 4.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.1, 0.9, 2.2, 2.8, 4.1];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!(f.r_squared < 1.0);
        assert!(f.r_squared > 0.98);
        assert!((f.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_x_is_none() {
        assert!(linear_fit(&[1.0, 1.0], &[0.0, 5.0]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn loglog_recovers_exponent() {
        let xs: [f64; 3] = [10.0, 100.0, 1000.0];
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.powf(0.5)).collect();
        let f = loglog_fit(&xs, &ys).unwrap();
        assert!((f.slope - 0.5).abs() < 1e-9);
        assert!((f.intercept.exp() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn loglog_rejects_nonpositive() {
        assert!(loglog_fit(&[1.0, 2.0], &[0.0, 1.0]).is_none());
        assert!(loglog_fit(&[-1.0, 2.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn predict_is_affine() {
        let f = Fit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 1.0,
        };
        assert_eq!(f.predict(3.0), 7.0);
    }

    #[test]
    fn display_contains_parts() {
        let f = Fit {
            slope: 2.0,
            intercept: 1.0,
            r_squared: 0.99,
        };
        let s = format!("{f}");
        assert!(s.contains("2.0000"));
        assert!(s.contains("R²"));
    }

    #[test]
    fn constant_y_has_r2_one() {
        let f = linear_fit(&[0.0, 1.0, 2.0], &[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }
}
