//! The Chung–Lu-type concentration inequality of the paper's Lemma 2.11.
//!
//! The lemma (which the authors flag as of independent interest) bounds the
//! upper tail of any non-negative adapted process `M(t)` satisfying three
//! drift conditions:
//!
//! 1. contraction: `E[M(t) | F_{t−1}] ≤ (1 − α)·M(t−1) + β`, `0 < α < 1`;
//! 2. bounded jumps: `|E[M(t) | F_{t−1}] − M(t)| ≤ γ`;
//! 3. bounded variance: `Var[M(t) | F_{t−1}] ≤ δ²`.
//!
//! Then for all `λ > 0`
//!
//! ```text
//! P(M(t) ≥ E[M(t)] + λ) ≤ exp( −λ²/2 / (δ²/(2α − α²) + λγ/3) ).
//! ```
//!
//! The Phase-2 analysis applies it to the potentials `φ` and `ψ` with
//! `α = Θ(1/(n·w))`; the experiment suite validates it synthetically and
//! the tests here check its qualitative behaviour.

/// The drift parameters `(α, β, γ, δ²)` of a process satisfying the
/// hypotheses of Lemma 2.11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftParams {
    /// Per-step contraction rate `α ∈ (0, 1)`.
    pub alpha: f64,
    /// Additive drift bound `β > 0`.
    pub beta: f64,
    /// Worst-case deviation from the conditional mean, `γ`.
    pub gamma: f64,
    /// Conditional variance bound `δ²`.
    pub delta_sq: f64,
}

impl DriftParams {
    /// Validates and wraps the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `α ∉ (0, 1)`, or `β`, `γ`, `δ²` are negative/non-finite.
    pub fn new(alpha: f64, beta: f64, gamma: f64, delta_sq: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "contraction rate must be in (0, 1), got {alpha}"
        );
        for (name, v) in [("beta", beta), ("gamma", gamma), ("delta_sq", delta_sq)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be non-negative, got {v}"
            );
        }
        DriftParams {
            alpha,
            beta,
            gamma,
            delta_sq,
        }
    }

    /// The equilibrium mean bound implied by condition 1:
    /// `lim sup E[M(t)] ≤ β/α`.
    pub fn equilibrium_mean(&self) -> f64 {
        self.beta / self.alpha
    }

    /// The Lemma 2.11 tail bound `P(M(t) ≥ E[M(t)] + λ)`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn tail_bound(&self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "deviation must be positive, got {lambda}");
        let denom = self.delta_sq / (2.0 * self.alpha - self.alpha * self.alpha)
            + lambda * self.gamma / 3.0;
        (-(lambda * lambda / 2.0) / denom).exp()
    }

    /// The deviation `λ` at which the tail bound equals `p_fail`, i.e. the
    /// high-probability envelope `E[M(t)] + λ` (solves the quadratic in
    /// `λ`).
    ///
    /// # Panics
    ///
    /// Panics if `p_fail ∉ (0, 1)`.
    pub fn deviation_for(&self, p_fail: f64) -> f64 {
        assert!(
            p_fail > 0.0 && p_fail < 1.0,
            "failure probability must be in (0, 1), got {p_fail}"
        );
        // λ²/2 = L·(δ²/(2α−α²) + λγ/3) with L = ln(1/p_fail):
        // λ² − (2Lγ/3)·λ − 2L·δ²/(2α−α²) = 0.
        let l = (1.0 / p_fail).ln();
        let b = 2.0 * l * self.gamma / 3.0;
        let c = 2.0 * l * self.delta_sq / (2.0 * self.alpha - self.alpha * self.alpha);
        (b + (b * b + 4.0 * c).sqrt()) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn params() -> DriftParams {
        DriftParams::new(0.1, 1.0, 2.0, 4.0)
    }

    #[test]
    fn tail_bound_decreases_in_lambda() {
        let p = params();
        assert!(p.tail_bound(10.0) < p.tail_bound(1.0));
        assert!(p.tail_bound(1.0) < 1.0);
    }

    #[test]
    fn stronger_contraction_tightens_bound() {
        let loose = DriftParams::new(0.01, 1.0, 2.0, 4.0);
        let tight = DriftParams::new(0.5, 1.0, 2.0, 4.0);
        assert!(tight.tail_bound(5.0) < loose.tail_bound(5.0));
    }

    #[test]
    fn deviation_inverts_tail() {
        let p = params();
        for fail in [0.1, 0.01, 1e-6] {
            let lambda = p.deviation_for(fail);
            let bound = p.tail_bound(lambda);
            assert!((bound / fail - 1.0).abs() < 1e-9, "{bound} vs {fail}");
        }
    }

    #[test]
    fn equilibrium_mean_is_beta_over_alpha() {
        assert_eq!(params().equilibrium_mean(), 10.0);
    }

    #[test]
    fn synthetic_contracting_process_respects_bound() {
        // M(t+1) = (1−α)·M(t) + U, U uniform on [0, 2β]: satisfies the
        // hypotheses with γ = β, δ² = β²/3. The empirical tail at the
        // 1e-3 envelope must be ≤ 1e-3 up to sampling noise.
        let alpha = 0.2;
        let beta = 1.0;
        let p = DriftParams::new(alpha, beta, beta, beta * beta / 3.0);
        let mut rng = StdRng::seed_from_u64(42);
        let steps = 2_000usize;
        let trials = 2_000usize;
        let envelope = p.equilibrium_mean() + p.deviation_for(1e-3);
        let mut exceed = 0usize;
        for _ in 0..trials {
            let mut m = 0.0f64;
            for _ in 0..steps {
                m = (1.0 - alpha) * m + rng.random_range(0.0..2.0 * beta);
            }
            if m >= envelope {
                exceed += 1;
            }
        }
        let rate = exceed as f64 / trials as f64;
        assert!(rate <= 5e-3, "tail rate {rate} above the 1e-3 envelope");
    }

    #[test]
    #[should_panic(expected = "contraction rate")]
    fn rejects_bad_alpha() {
        DriftParams::new(1.0, 1.0, 1.0, 1.0);
    }
}
