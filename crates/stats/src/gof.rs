//! Goodness-of-fit numerics: the special functions behind the
//! [`equivalence`](crate::equivalence) harness's p-values.
//!
//! Everything here is classical numerical analysis (Lanczos log-gamma,
//! regularized incomplete gamma by series/continued fraction, a rational
//! `erfc`, the Kolmogorov tail series), implemented to the accuracy the
//! harness needs: p-values compared against thresholds around `10⁻³`, so
//! ~7 significant digits is ample headroom.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients); relative error below
/// `10⁻¹³` over the domain the harness uses.
///
/// # Examples
///
/// ```
/// use pp_stats::gof::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12); // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 4!
/// ```
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma needs x > 0, got {x}");
    const G: f64 = 7.0;
    // The canonical published Lanczos(g = 7) coefficients, kept verbatim
    // even where the last digits round away in f64.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized upper incomplete gamma function `Q(a, x) = Γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, modified Lentz continued fraction
/// otherwise (Numerical Recipes `gammq`). `Q(a, 0) = 1`,
/// `Q(a, ∞) = 0`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q needs a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q needs x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    const ITMAX: usize = 500;
    if x < a + 1.0 {
        // Series for P(a, x); Q = 1 − P.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..ITMAX {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * EPS {
                break;
            }
        }
        let p = sum * (-x + a * x.ln() - ln_gamma(a)).exp();
        (1.0 - p).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x), modified Lentz.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..=ITMAX {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < EPS {
                break;
            }
        }
        ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
    }
}

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: `P(X² ≥ x)`.
///
/// # Examples
///
/// ```
/// use pp_stats::gof::chi2_sf;
///
/// // The classic 5% critical value at one degree of freedom.
/// assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    gamma_q(df / 2.0, x / 2.0)
}

/// Complementary error function, `erfc(x)`, by the Numerical Recipes
/// rational Chebyshev fit; absolute error below `1.2 × 10⁻⁷` everywhere.
pub fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let ans = t
        * (-x * x - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Survival function of the standard normal: `P(Z ≥ z)`.
///
/// # Examples
///
/// ```
/// use pp_stats::gof::normal_sf;
///
/// assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
/// assert!((normal_sf(1.959964) - 0.025).abs() < 1e-4);
/// ```
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// The Kolmogorov–Smirnov tail function
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`, the asymptotic p-value
/// of a KS statistic scaled to `λ`.
///
/// Monotone from `Q_KS(0) = 1` to `Q_KS(∞) = 0`; the alternating series
/// converges in a handful of terms for any λ of statistical interest.
pub fn ks_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            // Γ(n) = (n−1)!
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "ln_gamma({n})"
            );
            fact *= n as f64;
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_matches_critical_value_tables() {
        // (x, df, p) rows from standard chi-square tables.
        let table = [
            (3.841, 1.0, 0.05),
            (6.635, 1.0, 0.01),
            (5.991, 2.0, 0.05),
            (18.307, 10.0, 0.05),
            (23.209, 10.0, 0.01),
            (124.342, 100.0, 0.05),
        ];
        for (x, df, p) in table {
            let got = chi2_sf(x, df);
            assert!(
                (got - p).abs() < 2e-4,
                "chi2_sf({x}, {df}) = {got}, want {p}"
            );
        }
        assert_eq!(chi2_sf(0.0, 5.0), 1.0);
        assert!(chi2_sf(1e4, 5.0) < 1e-12);
    }

    #[test]
    fn gamma_q_is_monotone_in_x() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            let mut prev = 1.0;
            for i in 1..60 {
                let x = i as f64 * a / 10.0;
                let q = gamma_q(a, x);
                assert!(q <= prev + 1e-12, "gamma_q({a}, {x}) not monotone");
                assert!((0.0..=1.0).contains(&q));
                prev = q;
            }
        }
    }

    #[test]
    fn normal_sf_matches_z_tables() {
        let table = [
            (0.0, 0.5),
            (1.0, 0.158_655),
            (1.644_854, 0.05),
            (1.959_964, 0.025),
            (2.575_829, 0.005),
            (3.090_232, 0.001),
        ];
        for (z, p) in table {
            let got = normal_sf(z);
            assert!((got - p).abs() < 2e-5, "normal_sf({z}) = {got}, want {p}");
            // Symmetry.
            assert!((normal_sf(-z) - (1.0 - p)).abs() < 2e-5);
        }
    }

    #[test]
    fn ks_sf_matches_known_quantiles() {
        // Q_KS(1.358) ≈ 0.05 and Q_KS(1.628) ≈ 0.01 (Smirnov's table).
        assert!((ks_sf(1.358) - 0.05).abs() < 2e-3);
        assert!((ks_sf(1.628) - 0.01).abs() < 1e-3);
        assert_eq!(ks_sf(0.0), 1.0);
        assert!(ks_sf(4.0) < 1e-6);
        // Monotone decreasing.
        let mut prev = 1.0;
        for i in 1..40 {
            let q = ks_sf(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn erfc_endpoints() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-15);
        assert!((erfc(-6.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn gamma_q_rejects_bad_a() {
        gamma_q(0.0, 1.0);
    }
}
