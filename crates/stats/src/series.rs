//! Strided time-series recording with window reductions.

/// A recorded trace of `(time_step, value)` pairs.
///
/// Simulations run for millions of steps; recording every step would be
/// wasteful, so a `TimeSeries` records only every `stride`-th offered sample.
/// Window reductions (`max`, `mean over [a, b]`, …) operate on the recorded
/// points, which is what the paper's "holds for all `t` in the window"
/// statements are checked against.
///
/// # Examples
///
/// ```
/// use pp_stats::TimeSeries;
///
/// let mut ts = TimeSeries::with_stride(2);
/// for t in 0..10u64 {
///     ts.offer(t, t as f64);
/// }
/// assert_eq!(ts.len(), 5); // t = 0, 2, 4, 6, 8
/// assert_eq!(ts.max_in(0, 10), Some(8.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    stride: u64,
    times: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series that records every offered sample.
    pub fn new() -> Self {
        Self::with_stride(1)
    }

    /// Creates a series that records samples whose time is a multiple of
    /// `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(stride: u64) -> Self {
        assert!(stride > 0, "TimeSeries stride must be positive");
        TimeSeries {
            stride,
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Offers a sample; it is recorded iff `t % stride == 0`.
    ///
    /// Returns `true` when the sample was recorded.
    pub fn offer(&mut self, t: u64, value: f64) -> bool {
        if t.is_multiple_of(self.stride) {
            self.push(t, value);
            true
        } else {
            false
        }
    }

    /// Records a sample unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or `t` is not strictly after the last
    /// recorded time (times must be strictly increasing).
    pub fn push(&mut self, t: u64, value: f64) {
        assert!(!value.is_nan(), "TimeSeries::push: NaN value");
        if let Some(&last) = self.times.last() {
            assert!(
                t > last,
                "TimeSeries times must increase (last {last}, got {t})"
            );
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Recorded times, ascending.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Recorded values, aligned with [`times`](Self::times).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Indices of recorded points with `from ≤ t < to`.
    fn window_range(&self, from: u64, to: u64) -> std::ops::Range<usize> {
        let lo = self.times.partition_point(|&t| t < from);
        let hi = self.times.partition_point(|&t| t < to);
        lo..hi
    }

    /// Maximum recorded value in the half-open time window `[from, to)`.
    pub fn max_in(&self, from: u64, to: u64) -> Option<f64> {
        self.values[self.window_range(from, to)]
            .iter()
            .copied()
            .reduce(f64::max)
    }

    /// Minimum recorded value in `[from, to)`.
    pub fn min_in(&self, from: u64, to: u64) -> Option<f64> {
        self.values[self.window_range(from, to)]
            .iter()
            .copied()
            .reduce(f64::min)
    }

    /// Mean of recorded values in `[from, to)`.
    pub fn mean_in(&self, from: u64, to: u64) -> Option<f64> {
        let r = self.window_range(from, to);
        if r.is_empty() {
            return None;
        }
        let vals = &self.values[r];
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// First recorded time at which the value is `≤ threshold`, or `None`.
    ///
    /// This is the hitting-time primitive used for τ₁/τ₂/τ₃ measurements:
    /// e.g. "the first step at which potential φ drops below `C·w·n·log n`".
    pub fn first_time_leq(&self, threshold: f64) -> Option<u64> {
        self.iter().find(|&(_, v)| v <= threshold).map(|(t, _)| t)
    }

    /// First recorded time at which the value is `≥ threshold`, or `None`.
    pub fn first_time_geq(&self, threshold: f64) -> Option<u64> {
        self.iter().find(|&(_, v)| v >= threshold).map(|(t, _)| t)
    }

    /// The **settling time**: the first recorded time `t` such that the
    /// value is `≤ threshold` at `t` and at every later recorded time, or
    /// `None` if the series ends above the threshold.
    ///
    /// This is the statistic the paper's phase milestones need: a process
    /// may start below a bound trivially (e.g. `ψ(0) = 0` for an all-dark
    /// start), rise, and only later *stabilise* below it; "stabilises and
    /// stays" is what Theorem 2.8's "for all `t` in the interval" asserts.
    pub fn settling_time_leq(&self, threshold: f64) -> Option<u64> {
        let last_above = self.values.iter().rposition(|&v| v > threshold);
        match last_above {
            None => self.times.first().copied(),
            Some(idx) if idx + 1 < self.times.len() => Some(self.times[idx + 1]),
            Some(_) => None,
        }
    }

    /// Last recorded `(t, value)` pair.
    pub fn last(&self) -> Option<(u64, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for t in 0..10u64 {
            ts.push(t, 10.0 - t as f64);
        }
        ts
    }

    #[test]
    fn stride_filters() {
        let mut ts = TimeSeries::with_stride(3);
        for t in 0..10u64 {
            ts.offer(t, t as f64);
        }
        assert_eq!(ts.times(), &[0, 3, 6, 9]);
    }

    #[test]
    fn window_reductions() {
        let ts = ramp();
        assert_eq!(ts.max_in(2, 5), Some(8.0));
        assert_eq!(ts.min_in(2, 5), Some(6.0));
        assert_eq!(ts.mean_in(2, 5), Some(7.0));
        assert_eq!(ts.max_in(100, 200), None);
    }

    #[test]
    fn hitting_times() {
        let ts = ramp();
        // values: 10, 9, 8, ..., 1 at t = 0..9
        assert_eq!(ts.first_time_leq(7.5), Some(3));
        assert_eq!(ts.first_time_leq(0.5), None);
        assert_eq!(ts.first_time_geq(10.0), Some(0));
    }

    #[test]
    fn settling_time_skips_trivial_start() {
        // Starts below, rises above, settles below: settling time is after
        // the last excursion, not the trivial start.
        let mut ts = TimeSeries::new();
        for (t, v) in [(0, 0.0), (1, 5.0), (2, 3.0), (3, 1.0), (4, 0.5)] {
            ts.push(t, v);
        }
        assert_eq!(ts.first_time_leq(2.0), Some(0));
        assert_eq!(ts.settling_time_leq(2.0), Some(3));
        // Never settles if it ends above.
        assert_eq!(ts.settling_time_leq(0.4), None);
        // Settles immediately if never above.
        assert_eq!(ts.settling_time_leq(10.0), Some(0));
    }

    #[test]
    fn window_is_half_open() {
        let ts = ramp();
        assert_eq!(ts.max_in(0, 1), Some(10.0));
        assert_eq!(ts.max_in(1, 1), None);
    }

    #[test]
    fn last_and_len() {
        let ts = ramp();
        assert_eq!(ts.last(), Some((9, 1.0)));
        assert_eq!(ts.len(), 10);
        assert!(!ts.is_empty());
        assert!(TimeSeries::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn rejects_time_going_backwards() {
        let mut ts = TimeSeries::new();
        ts.push(5, 1.0);
        ts.push(5, 2.0);
    }
}
