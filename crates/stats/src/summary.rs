//! One-shot descriptive summaries of finite samples.

use crate::quantiles::quantile;

/// Descriptive statistics of a finite sample, computed once from a slice.
///
/// Used by the experiment harness to summarise per-seed measurements
/// (hitting times, error widths) into the rows printed by each experiment.
///
/// # Examples
///
/// ```
/// use pp_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(s.n, 5);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.max, 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25 % quantile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75 % quantile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; `None` for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_slice(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: quantile(xs, 0.0)?,
            q25: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q75: quantile(xs, 0.75)?,
            max: quantile(xs, 1.0)?,
        })
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = Summary::from_slice(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn display_mentions_fields() {
        let s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let txt = format!("{s}");
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean="));
    }
}
