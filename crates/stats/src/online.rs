//! Streaming moment accumulation (Welford's algorithm).

/// Streaming mean, variance and extrema over a sequence of `f64` samples.
///
/// Uses Welford's numerically stable online algorithm, so it can absorb
/// millions of simulation samples in `O(1)` memory. Two accumulators can be
/// [merged](OnlineStats::merge) (Chan's parallel variant), which the
/// experiment harness uses to combine per-seed statistics.
///
/// # Examples
///
/// ```
/// use pp_stats::OnlineStats;
///
/// let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorbs one sample.
    ///
    /// Non-finite samples are counted in [`len`](Self::len) but would poison
    /// the moments, so they are rejected with a panic.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "OnlineStats::push: non-finite sample {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples absorbed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (denominator `n`); `0.0` for fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (denominator `n - 1`); `0.0` for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (`std_dev / sqrt(n)`); `0.0` when empty.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all samples into a single accumulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_stats::OnlineStats;
    ///
    /// let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
    /// let b: OnlineStats = [3.0, 4.0].iter().copied().collect();
    /// a.merge(&b);
    /// assert_eq!(a.mean(), 2.5);
    /// assert_eq!(a.len(), 4);
    /// ```
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn extend_works() {
        let mut s = OnlineStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
