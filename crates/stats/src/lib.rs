//! Numerical substrate for the population-protocol experiment harness.
//!
//! This crate is deliberately dependency-light: it provides exactly the
//! statistics the reproduction of *Diversity, Fairness, and Sustainability
//! in Population Protocols* (PODC 2021) needs to turn raw simulation traces
//! into the quantities the paper's theorems talk about:
//!
//! * [`OnlineStats`] — streaming mean/variance/extrema (Welford), used for
//!   per-seed aggregation without storing traces;
//! * [`Histogram`] — fixed-width binning for distributional summaries;
//! * [`quantiles`] — exact order statistics on small samples;
//! * [`regression`] — least-squares and log–log fits, used to estimate the
//!   scaling exponents the theorems predict (e.g. the `1/√n` diversity error
//!   of Eq. (1) or the `n log n` convergence time of Theorem 1.3);
//! * [`TimeSeries`] — strided trace recording with window reductions;
//! * [`bootstrap`] — seed-level confidence intervals;
//! * [`table`] — plain-text aligned tables for experiment output;
//! * [`gof`] + [`equivalence`] — the statistical-equivalence harness:
//!   chi-square / KS / moment two-sample tests with Bonferroni-corrected
//!   suites ([`EquivalenceSuite`]), the contract test for every engine
//!   that promises distributional (rather than bit-exact) equivalence.
//!
//! # Examples
//!
//! ```
//! use pp_stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod concentration;
pub mod equivalence;
pub mod gof;
pub mod histogram;
pub mod online;
pub mod quantiles;
pub mod regression;
pub mod series;
pub mod summary;
pub mod table;

pub use bootstrap::bootstrap_mean_ci;
pub use concentration::DriftParams;
pub use equivalence::{
    chi_square_two_sample, ks_two_sample, mean_z_test, variance_z_test, EquivalenceSuite,
    TestResult,
};
pub use gof::{chi2_sf, ks_sf, normal_sf};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use quantiles::{median, quantile};
pub use regression::{linear_fit, loglog_fit, Fit};
pub use series::TimeSeries;
pub use summary::Summary;
pub use table::Table;
