//! Fixed-width histograms.

/// A histogram with uniform bins over a closed range `[lo, hi]`.
///
/// Samples outside the range are clamped into the first/last bin and counted
/// separately as underflow/overflow, so no data is silently dropped.
///
/// # Examples
///
/// ```
/// use pp_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.5, 2.5, 2.6, 9.9] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(1), 2); // 2.5 and 2.6 fall in [2, 4)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, either bound is non-finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        assert!(lo < hi, "histogram requires lo < hi (got {lo} >= {hi})");
        assert!(bins > 0, "histogram requires at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "Histogram::record: NaN sample");
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            self.bins[0] += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            let last = self.bins.len() - 1;
            self.bins[last] += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Total number of recorded samples (including clamped ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples that fell below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of samples that fell above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_bins()`.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// Lower edge of bin `idx`.
    pub fn bin_lo(&self, idx: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + idx as f64 * width
    }

    /// Iterator over `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bins[i]))
    }

    /// Approximate quantile from binned data (`q` in `[0, 1]`).
    ///
    /// Returns the lower edge of the bin in which the `q`-quantile falls, or
    /// `None` for an empty histogram.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bin_lo(i));
            }
        }
        Some(self.bin_lo(self.bins.len() - 1))
    }

    /// Renders the histogram as rows of `lower_edge count bar` text, the bar
    /// scaled to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (edge, c) in self.iter() {
            let bar = "#".repeat((c as usize * width).div_euclid(max as usize));
            out.push_str(&format!("{edge:>12.4} {c:>8} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.record(i as f64 / 10.0 + 0.05);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn upper_bound_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_clamped_and_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(7.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn approx_quantile_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q10 = h.approx_quantile(0.1).unwrap();
        let q50 = h.approx_quantile(0.5).unwrap();
        let q90 = h.approx_quantile(0.9).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!((q50 - 49.0).abs() <= 2.0);
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    fn render_is_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.1);
        let s = h.render(10);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_bad_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
