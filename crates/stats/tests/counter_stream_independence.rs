//! Cross-correlation independence of `CounterRng::for_shard` lane
//! streams — the statistical contract the lane-parallel vec engine
//! leans on.
//!
//! The vec engine gives every lane its own counter stream, keyed like
//! `for_shard(seed, lane, block)`; lanes are only as independent as
//! those streams are. This test runs a chi-square contingency check on
//! paired draws from adjacent lanes (and adjacent blocks): bucket each
//! `u64` pair `(x, y)` into a `B × B` table by their top bits and test
//! the table against the independence null with `(B−1)²` degrees of
//! freedom. A positive control — a stream paired with itself — must
//! fail the same test, so a vacuously-passing statistic cannot go
//! unnoticed.
//!
//! The `advance_by` / stream-layout pins live in the rand shim's own
//! unit tests; this file owns the distributional claim (it needs
//! `pp_stats::chi2_sf`, which the shim cannot depend on).

use pp_stats::chi2_sf;
use rand::rngs::CounterRng;
use rand::Rng;

/// Buckets per axis: 16×16 cells over 131072 draws = 512 expected per
/// cell — far above the ≥ 5 rule of thumb for the chi-square
/// approximation, and enough sample that a genuine stream correlation
/// (which grows the statistic linearly in the draw count) cannot hide
/// behind small-sample noise.
const B: usize = 16;
const DRAWS: usize = 131_072;

/// Chi-square statistic of the `B × B` contingency table of paired
/// draws, bucketed by each value's top `log2(B)` bits.
fn contingency_chi2(mut a: CounterRng, mut b: CounterRng) -> (f64, f64) {
    let mut table = [[0u64; B]; B];
    for _ in 0..DRAWS {
        let x = (a.next_u64() >> 60) as usize;
        let y = (b.next_u64() >> 60) as usize;
        table[x][y] += 1;
    }
    let expected = DRAWS as f64 / (B * B) as f64;
    let mut chi2 = 0.0;
    for row in &table {
        for &cell in row {
            let d = cell as f64 - expected;
            chi2 += d * d / expected;
        }
    }
    let df = ((B - 1) * (B - 1)) as f64;
    (chi2, chi2_sf(chi2, df))
}

/// Adjacent lanes of one `(seed, block)` must be uncorrelated: the
/// contingency test has no evidence against independence at α = 1e-4
/// for any adjacent pair, across several seeds and a block boundary.
#[test]
fn adjacent_lane_streams_pass_contingency_independence() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        for lane in 0..4u64 {
            let (chi2, p) = contingency_chi2(
                CounterRng::for_shard(seed, lane, 0),
                CounterRng::for_shard(seed, lane + 1, 0),
            );
            assert!(
                p > 1e-4,
                "lanes {lane}/{} of seed {seed} look correlated: chi2 {chi2:.1}, p {p:.2e}",
                lane + 1
            );
        }
    }
}

/// Adjacent blocks of one `(seed, lane)` — the other axis the vec
/// engine advances — must be uncorrelated too.
#[test]
fn adjacent_block_streams_pass_contingency_independence() {
    for seed in [7u64, 1600] {
        for lane in 0..2u64 {
            for block in 0..2u64 {
                let (chi2, p) = contingency_chi2(
                    CounterRng::for_shard(seed, lane, block),
                    CounterRng::for_shard(seed, lane, block + 1),
                );
                assert!(
                    p > 1e-4,
                    "blocks {block}/{} of (seed {seed}, lane {lane}) look correlated: \
                     chi2 {chi2:.1}, p {p:.2e}",
                    block + 1
                );
            }
        }
    }
}

/// Each lane stream must also be marginally uniform — the contingency
/// test alone cannot tell uniform-independent from uniformly-broken
/// marginals, so pin the one-dimensional histogram as well.
#[test]
fn lane_streams_are_marginally_uniform() {
    for (seed, lane) in [(0u64, 0u64), (42, 3), (0xDEAD_BEEF, 7)] {
        let mut rng = CounterRng::for_shard(seed, lane, 0);
        let mut counts = [0u64; B];
        for _ in 0..DRAWS {
            counts[(rng.next_u64() >> 60) as usize] += 1;
        }
        let expected = DRAWS as f64 / B as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        let p = chi2_sf(chi2, (B - 1) as f64);
        assert!(
            p > 1e-4,
            "(seed {seed}, lane {lane}) marginal not uniform: chi2 {chi2:.1}, p {p:.2e}"
        );
    }
}

/// Positive control: a stream paired with itself concentrates on the
/// diagonal and must *fail* the independence test decisively — proof
/// the statistic has power at this sample size.
#[test]
fn identical_streams_fail_the_independence_test() {
    let (chi2, p) = contingency_chi2(
        CounterRng::for_shard(3, 0, 0),
        CounterRng::for_shard(3, 0, 0),
    );
    assert!(
        p < 1e-12,
        "self-paired stream passed the independence test: chi2 {chi2:.1}, p {p:.2e}"
    );
}
