//! Property-based tests for the statistics substrate.

use pp_stats::{linear_fit, loglog_fit, median, quantile, Histogram, OnlineStats, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 1..200)
}

proptest! {
    #[test]
    fn online_mean_matches_naive(xs in finite_samples()) {
        let s: OnlineStats = xs.iter().copied().collect();
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
    }

    #[test]
    fn online_extrema_are_tight(xs in finite_samples()) {
        let s: OnlineStats = xs.iter().copied().collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    #[test]
    fn merge_is_order_independent(xs in finite_samples(), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut a: OnlineStats = xs[..split].iter().copied().collect();
        let b: OnlineStats = xs[split..].iter().copied().collect();
        a.merge(&b);
        let whole: OnlineStats = xs.iter().copied().collect();
        prop_assert_eq!(a.len(), whole.len());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
    }

    #[test]
    fn variance_is_nonnegative(xs in finite_samples()) {
        let s: OnlineStats = xs.iter().copied().collect();
        prop_assert!(s.sample_variance() >= -1e-9);
        prop_assert!(s.population_variance() >= -1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in finite_samples(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn quantile_within_range(xs in finite_samples(), q in 0.0f64..1.0) {
        let v = quantile(&xs, q).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
    }

    #[test]
    fn median_between_extremes(xs in finite_samples()) {
        let m = median(&xs).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min && m <= max);
    }

    #[test]
    fn histogram_conserves_count(xs in finite_samples()) {
        let mut h = Histogram::new(-1e6, 1e6, 32);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count() as usize, xs.len());
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned as usize, xs.len());
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn loglog_fit_recovers_powers(exp in -2.0f64..2.0, scale in 0.1f64..100.0) {
        let xs: Vec<f64> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0].to_vec();
        let ys: Vec<f64> = xs.iter().map(|x| scale * x.powf(exp)).collect();
        let f = loglog_fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - exp).abs() < 1e-6);
    }

    #[test]
    fn summary_orders_quantiles(xs in finite_samples()) {
        let s = Summary::from_slice(&xs).unwrap();
        prop_assert!(s.min <= s.q25);
        prop_assert!(s.q25 <= s.median);
        prop_assert!(s.median <= s.q75);
        prop_assert!(s.q75 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }
}
