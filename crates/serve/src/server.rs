//! The `pp serve` event loop: control plane, slice execution, snapshots.
//!
//! One control thread owns every engine and runs [`run`] — a loop
//! alternating between two planes (slice execution fans out to pool
//! workers, but all state transitions are decided and observed on the
//! control thread):
//!
//! * **Control plane.** A reader thread forwards request lines over a
//!   channel; the loop drains it between slices (and blocks on it when no
//!   job is backlogged), so submissions land promptly without interrupting
//!   a running slice. Input EOF with no work left is a clean shutdown.
//! * **Data plane.** Each iteration asks the [deficit-round-robin
//!   scheduler](crate::sched) for one **round** of grants — one
//!   `(tenant, budget)` slice per distinct backlogged tenant, the DRR
//!   rotation's natural unit — and runs each granted tenant's oldest job
//!   for up to its budget through the uniform `Box<dyn Engine>` dispatch,
//!   so a slice costs one virtual call and the per-interaction loops stay
//!   monomorphized inside whichever tier the job chose. The round's
//!   slices target pairwise-distinct engines, so they execute in
//!   parallel on workers leased from the shared
//!   [`pool`] (inline when the pool is exhausted);
//!   every observable effect — charges, shock firings, progress events —
//!   is applied after the round completes, strictly in grant order, so
//!   the event stream is a function of the request stream alone, never
//!   of the worker count.
//!
//! Slices are clamped at a scheduled shock's `at` clock so the shock fires
//! at exactly the requested step; pending snapshot requests are serviced
//! once their clock threshold is reached **and** any scheduled shock has
//! fired (saving earlier would let the sharded tier's boundary drain step
//! over the shock). Every fail-closed rejection — malformed request,
//! unknown job, corrupt snapshot file — emits an `error` event and exits
//! with [`EXIT_SCHEMA_ERROR`]; nothing is skipped-and-continued, matching
//! the result-JSON envelope convention.

use crate::sched::Drr;
use crate::snapshot::SnapshotFile;
use crate::wire::{Event, JobSpec, Request, ShockSpec, TopologySpec};
use pp_adversary::Shock;
use pp_bench::experiments::Report;
use pp_bench::output::{self, EXIT_OK, EXIT_SCHEMA_ERROR};
use pp_bench::{build_engine, build_graph_engine, DivEngine};
use pp_core::{init, Weights};
use pp_engine::pool;
use pp_graph::{Cycle, Torus2d};
use pp_stats::Table;
use rand::{rngs::StdRng, SeedableRng};
use std::io::{BufRead, Write};
use std::sync::mpsc::{self, TryRecvError};
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Steps granted per tenant per scheduler round (see [`Drr`]).
    /// Smaller quanta interleave tenants more finely at the cost of
    /// more virtual-dispatch boundaries.
    pub quantum: u64,
}

/// Default slice quantum: fine enough that two tenants visibly interleave
/// within one `observe_every` window, coarse enough that dispatch overhead
/// stays invisible next to the engines' step costs.
pub const DEFAULT_QUANTUM: u64 = 2048;

impl Default for Config {
    fn default() -> Config {
        Config {
            quantum: DEFAULT_QUANTUM,
        }
    }
}

impl Config {
    /// Reads the configuration from the environment: `PP_SERVE_QUANTUM`
    /// overrides the slice quantum.
    ///
    /// # Panics
    ///
    /// Panics on a non-integer or zero value, matching the fail-fast
    /// convention of `PP_ENGINE`/`PP_PRESET`/`PP_OBS`.
    pub fn from_env() -> Config {
        let quantum = match std::env::var("PP_SERVE_QUANTUM") {
            Err(_) => DEFAULT_QUANTUM,
            Ok(v) => match v.parse::<u64>() {
                Ok(q) if q >= 1 => q,
                _ => panic!("PP_SERVE_QUANTUM must be a positive integer, got `{v}`"),
            },
        };
        Config { quantum }
    }
}

struct Job {
    tenant: String,
    name: String,
    spec: JobSpec,
    engine: DivEngine,
    shock_applied: bool,
    next_observe: u64,
    start_clock: u64,
    started: Instant,
}

struct SnapReq {
    tenant: String,
    job: String,
    path: String,
    at: u64,
    stop: bool,
}

enum Flow {
    Continue,
    Shutdown,
}

fn emit(out: &mut impl Write, event: &Event) {
    // A consumer that closed the pipe cannot receive a report about the
    // closed pipe; warn once per process and keep completing the work.
    if writeln!(out, "{}", event.render())
        .and_then(|_| out.flush())
        .is_err()
    {
        static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
        WARNED.get_or_init(|| eprintln!("warning: event stream closed; continuing unobserved"));
    }
}

fn fail(out: &mut impl Write, message: String) -> i32 {
    emit(out, &Event::Error { message });
    EXIT_SCHEMA_ERROR
}

/// Builds the engine a spec describes, over a population of `n` agents
/// (`n` differs from `spec.n` only when resuming a job whose resizing
/// shock already fired). The initial states are the spec's init layout;
/// a resume overwrites them via `restore_snapshot` immediately after.
fn build_job_engine(spec: &JobSpec, n: usize) -> DivEngine {
    let weights = Weights::new(spec.weights.clone()).expect("weights validated at parse");
    let states = match spec.init {
        crate::wire::InitKind::Balanced => init::all_dark_balanced(n, &weights),
        crate::wire::InitKind::SingleMinority => init::all_dark_single_minority(n, &weights),
    };
    match spec.topology {
        TopologySpec::Complete => build_engine(spec.engine, &weights, states, spec.seed),
        TopologySpec::Cycle => {
            build_graph_engine(spec.engine, &weights, Cycle::new(n), states, spec.seed)
        }
        TopologySpec::Torus { rows, cols } => build_graph_engine(
            spec.engine,
            &weights,
            Torus2d::new(rows, cols),
            states,
            spec.seed,
        ),
    }
}

/// Applies the job's scheduled shock. Deterministic by construction: the
/// representative [`Shock::enumerate`] instance is picked by label from
/// the population size at the firing clock, and the shock RNG is keyed by
/// `(spec.seed, shock.at)` — a resumed run that re-fires nothing and an
/// uninterrupted run that fires here see the same mutation.
fn apply_shock(job: &mut Job, shock: &ShockSpec) {
    let k = job.spec.weights.len();
    let inst = Shock::enumerate(job.engine.len(), k)
        .into_iter()
        .find(|s| s.label() == shock.kind)
        .expect("shock kind validated at parse");
    let mut rng = StdRng::seed_from_u64(
        job.spec
            .seed
            .wrapping_add(shock.at.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    pp_adversary::apply(&inst, &mut *job.engine, &mut rng);
}

fn tenant_steps_counter(tenant: &str) -> String {
    format!("serve.steps.{tenant}")
}

fn serve_counters() -> Vec<(String, u64)> {
    pp_obs::dump()
        .counters
        .into_iter()
        .filter(|(name, _)| name.starts_with("serve."))
        .collect()
}

/// Runs the service over any line-based transport: requests from `input`,
/// events to `out`. Returns the process exit code — [`EXIT_OK`] after a
/// clean shutdown (explicit op, or EOF with all work finished),
/// [`EXIT_SCHEMA_ERROR`] after any fail-closed rejection.
///
/// # Examples
///
/// ```
/// use std::io::Cursor;
///
/// let requests = concat!(
///     "{\"schema_version\":1,\"op\":\"submit\",\"tenant\":\"demo\",\"job\":\"j\",",
///     "\"spec\":{\"protocol\":\"diversification\",\"weights\":[1.0,1.0],",
///     "\"topology\":\"complete\",\"n\":16,\"engine\":\"agent\",\"seed\":1,",
///     "\"steps\":500,\"observe_every\":250,\"init\":\"balanced\",\"shock\":null}}\n",
/// );
/// let mut events = Vec::new();
/// let code = pp_serve::server::run(Cursor::new(requests), &mut events, Default::default());
/// assert_eq!(code, 0);
/// let text = String::from_utf8(events).unwrap();
/// assert!(text.contains("\"event\":\"done\""));
/// ```
pub fn run<R, W>(input: R, out: &mut W, cfg: Config) -> i32
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let (tx, rx) = mpsc::channel::<String>();
    // The reader thread is detached on purpose: it may sit blocked on a
    // live pipe when the loop decides to exit (explicit shutdown), and the
    // process exit reaps it. With finite inputs (tests) it ends at EOF.
    std::thread::spawn(move || {
        for line in input.lines() {
            match line {
                Ok(l) if l.trim().is_empty() => continue,
                Ok(l) => {
                    if tx.send(l).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });

    let mut jobs: Vec<Job> = Vec::new();
    let mut pending: Vec<SnapReq> = Vec::new();
    let mut drr = Drr::new(cfg.quantum);
    let mut completed: u64 = 0;
    let mut eof = false;

    loop {
        // Control plane: drain everything that arrived since last slice.
        // A shutdown op stops the intake but drains queued work first —
        // the same graceful semantics as input EOF.
        while !eof {
            match rx.try_recv() {
                Ok(line) => match handle_line(&line, &mut jobs, &mut pending, &mut drr, out) {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Shutdown) => eof = true,
                    Err(code) => return code,
                },
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => eof = true,
            }
        }
        // Requests that were ready on arrival (resume past a snapshot
        // threshold, zero-work jobs) are serviced before any slice runs.
        if let Err(code) = service_snapshots(&mut jobs, &mut pending, &mut drr, out) {
            return code;
        }
        if let Err(code) = finish_ready_jobs(&mut jobs, &mut pending, &mut drr, &mut completed, out)
        {
            return code;
        }

        if jobs.is_empty() {
            if eof {
                if !pending.is_empty() {
                    return fail(
                        out,
                        "input ended with snapshot requests that can never trigger".into(),
                    );
                }
                emit(out, &Event::Shutdown { completed });
                return EXIT_OK;
            }
            // Idle: block until the next request (or EOF).
            match rx.recv() {
                Ok(line) => match handle_line(&line, &mut jobs, &mut pending, &mut drr, out) {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Shutdown) => eof = true,
                    Err(code) => return code,
                },
                Err(_) => eof = true,
            }
            continue;
        }

        // Data plane: one deficit-round-robin round. The rotation visits
        // each backlogged tenant exactly once per round, so collecting
        // that many grants yields slices over pairwise-distinct tenants —
        // and each tenant's oldest job is a distinct engine, so the
        // slices are free of aliasing and run concurrently. Burst clamps
        // (job target, un-fired shock) are computed up front from the
        // pre-round clocks; bookkeeping and events happen after the
        // barrier, in grant order.
        let backlogged = jobs
            .iter()
            .map(|j| j.tenant.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let mut slices: Vec<(String, usize, u64)> = Vec::with_capacity(backlogged);
        for _ in 0..backlogged {
            let (tenant, budget) = drr.grant().expect("jobs imply backlog");
            let idx = jobs
                .iter()
                .position(|j| j.tenant == tenant)
                .expect("scheduler backlog tracks the job list");
            let job = &jobs[idx];
            let clock = job.engine.step_count();
            let mut burst = budget.min(job.spec.steps.saturating_sub(clock));
            if let Some(shock) = &job.spec.shock {
                if !job.shock_applied && clock < shock.at {
                    burst = burst.min(shock.at - clock);
                }
            }
            slices.push((tenant, idx, burst));
        }
        run_round(&mut jobs, &slices);

        for (tenant, idx, burst) in &slices {
            let job = &mut jobs[*idx];
            drr.charge(tenant, *burst);
            pp_obs::counter_add_dyn(&tenant_steps_counter(tenant), *burst);
            pp_obs::counter_add_dyn("serve.slices", 1);
            let clock = job.engine.step_count();

            if let Some(shock) = job.spec.shock.clone() {
                if !job.shock_applied && clock >= shock.at {
                    apply_shock(job, &shock);
                    job.shock_applied = true;
                    pp_obs::counter_add_dyn("serve.shocks", 1);
                    let n_after = job.engine.len();
                    let (tenant, name) = (job.tenant.clone(), job.name.clone());
                    emit(
                        out,
                        &Event::Shock {
                            tenant,
                            job: name,
                            kind: shock.kind.clone(),
                            at: shock.at,
                            n_after,
                        },
                    );
                }
            }

            let job = &mut jobs[*idx];
            if clock >= job.next_observe && clock < job.spec.steps {
                job.next_observe = (clock / job.spec.observe_every + 1) * job.spec.observe_every;
                let ev = Event::Progress {
                    tenant: job.tenant.clone(),
                    job: job.name.clone(),
                    clock,
                    target: job.spec.steps,
                    class_counts: job.engine.class_counts(),
                    tenant_steps: drr.executed(tenant),
                    total_steps: drr.total_executed(),
                    counters: serve_counters(),
                };
                emit(out, &ev);
            }
        }

        if let Err(code) = service_snapshots(&mut jobs, &mut pending, &mut drr, out) {
            return code;
        }
        if let Err(code) = finish_ready_jobs(&mut jobs, &mut pending, &mut drr, &mut completed, out)
        {
            return code;
        }
    }
}

/// Executes one round's slices — `(tenant, job index, burst)` triples
/// over pairwise-distinct jobs — on workers leased from the shared
/// engine pool, falling back to the caller's thread when the pool is
/// exhausted (or the round has a single slice). Each job runs exactly
/// its precomputed burst, so the post-round state is identical whichever
/// path executes it; worker panics propagate through the scope join.
fn run_round(jobs: &mut [Job], slices: &[(String, usize, u64)]) {
    let burst_of: std::collections::BTreeMap<usize, u64> = slices
        .iter()
        .filter(|(_, _, burst)| *burst > 0)
        .map(|(_, idx, burst)| (*idx, *burst))
        .collect();
    let mut work: Vec<(&mut Job, u64)> = jobs
        .iter_mut()
        .enumerate()
        .filter_map(|(i, job)| burst_of.get(&i).map(|&b| (job, b)))
        .collect();
    let lease = pool::lease(work.len().saturating_sub(1));
    if lease.workers() == 0 {
        for (job, burst) in work {
            job.engine.run(burst);
        }
        return;
    }
    pp_obs::counter_add_dyn("serve.parallel_rounds", 1);
    let threads = lease.workers() + 1;
    std::thread::scope(|scope| {
        let mut chunks: Vec<Vec<(&mut Job, u64)>> = Vec::new();
        chunks.resize_with(threads, Vec::new);
        for (i, item) in work.drain(..).enumerate() {
            chunks[i % threads].push(item);
        }
        let mut chunks = chunks.into_iter();
        let own = chunks.next().expect("threads >= 1");
        for chunk in chunks {
            scope.spawn(move || {
                for (job, burst) in chunk {
                    job.engine.run(burst);
                }
            });
        }
        for (job, burst) in own {
            job.engine.run(burst);
        }
    });
}

fn handle_line(
    line: &str,
    jobs: &mut Vec<Job>,
    pending: &mut Vec<SnapReq>,
    drr: &mut Drr,
    out: &mut impl Write,
) -> Result<Flow, i32> {
    let req = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => return Err(fail(out, format!("invalid request: {e}"))),
    };
    match req {
        Request::Submit { tenant, job, spec } => {
            if jobs.iter().any(|j| j.tenant == tenant && j.name == job) {
                return Err(fail(out, format!("job {tenant}/{job} already queued")));
            }
            let engine = build_job_engine(&spec, spec.n);
            emit(
                out,
                &Event::Accepted {
                    tenant: tenant.clone(),
                    job: job.clone(),
                    engine: spec.engine.name(),
                    n: spec.n,
                    steps: spec.steps,
                },
            );
            drr.enqueue(&tenant);
            jobs.push(Job {
                tenant,
                name: job,
                next_observe: spec.observe_every,
                start_clock: 0,
                started: Instant::now(),
                shock_applied: false,
                spec,
                engine,
            });
            Ok(Flow::Continue)
        }
        Request::Snapshot {
            tenant,
            job,
            path,
            at,
            stop,
        } => {
            let Some(target) = jobs.iter().find(|j| j.tenant == tenant && j.name == job) else {
                return Err(fail(out, format!("snapshot of unknown job {tenant}/{job}")));
            };
            if at > target.spec.steps {
                return Err(fail(
                    out,
                    format!(
                        "snapshot at clock {at} can never trigger: job {tenant}/{job} \
                         finishes at {}",
                        target.spec.steps
                    ),
                ));
            }
            pending.push(SnapReq {
                tenant,
                job,
                path,
                at,
                stop,
            });
            Ok(Flow::Continue)
        }
        Request::Resume { path } => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => return Err(fail(out, format!("cannot read snapshot `{path}`: {e}"))),
            };
            let file = match SnapshotFile::parse(&text) {
                Ok(f) => f,
                Err(e) => return Err(fail(out, format!("snapshot `{path}` rejected: {e}"))),
            };
            if jobs
                .iter()
                .any(|j| j.tenant == file.tenant && j.name == file.job)
            {
                return Err(fail(
                    out,
                    format!("job {}/{} already queued", file.tenant, file.job),
                ));
            }
            let mut engine = build_job_engine(&file.spec, file.engine.n as usize);
            if let Err(e) = engine.restore_snapshot(&file.engine) {
                return Err(fail(out, format!("snapshot `{path}` rejected: {e}")));
            }
            let clock = engine.step_count();
            emit(
                out,
                &Event::Resumed {
                    tenant: file.tenant.clone(),
                    job: file.job.clone(),
                    clock,
                    target: file.spec.steps,
                },
            );
            drr.enqueue(&file.tenant);
            let next_observe = (clock / file.spec.observe_every + 1) * file.spec.observe_every;
            jobs.push(Job {
                tenant: file.tenant,
                name: file.job,
                next_observe,
                start_clock: clock,
                started: Instant::now(),
                shock_applied: file.shock_applied,
                spec: file.spec,
                engine,
            });
            Ok(Flow::Continue)
        }
        Request::Shutdown => Ok(Flow::Shutdown),
    }
}

/// Services every pending snapshot whose job has reached its clock
/// threshold with its shock (if any) resolved. `stop` requests remove the
/// job after the capture — the "kill, resume elsewhere" half of the cycle.
fn service_snapshots(
    jobs: &mut Vec<Job>,
    pending: &mut Vec<SnapReq>,
    drr: &mut Drr,
    out: &mut impl Write,
) -> Result<(), i32> {
    let mut i = 0;
    while i < pending.len() {
        let req = &pending[i];
        let Some(idx) = jobs
            .iter()
            .position(|j| j.tenant == req.tenant && j.name == req.job)
        else {
            // finish_ready_jobs flushes matching requests before removing
            // a job, so a vanished target is loop-state corruption.
            return Err(fail(
                out,
                format!("snapshot target {}/{} vanished", req.tenant, req.job),
            ));
        };
        let job = &jobs[idx];
        let shock_resolved = job.spec.shock.is_none() || job.shock_applied;
        if job.engine.step_count() >= req.at && shock_resolved {
            let req = pending.remove(i);
            take_snapshot(jobs, idx, &req, drr, out)?;
        } else {
            i += 1;
        }
    }
    Ok(())
}

fn take_snapshot(
    jobs: &mut Vec<Job>,
    idx: usize,
    req: &SnapReq,
    drr: &mut Drr,
    out: &mut impl Write,
) -> Result<(), i32> {
    let job = &mut jobs[idx];
    let before = job.engine.step_count();
    let snap = job.engine.save_snapshot();
    // The sharded tier drains to its block boundary inside save_snapshot;
    // those steps ran for this tenant and count toward its share.
    let drained = snap.clock - before;
    if drained > 0 {
        drr.charge(&job.tenant, drained);
        pp_obs::counter_add_dyn(&tenant_steps_counter(&job.tenant), drained);
    }
    pp_obs::counter_add_dyn("serve.snapshots", 1);
    let clock = snap.clock;
    let file = SnapshotFile {
        tenant: job.tenant.clone(),
        job: job.name.clone(),
        spec: job.spec.clone(),
        shock_applied: job.shock_applied,
        engine: snap,
    };
    if let Err(e) = std::fs::write(&req.path, file.render()) {
        return Err(fail(
            out,
            format!("cannot write snapshot `{}`: {e}", req.path),
        ));
    }
    emit(
        out,
        &Event::Snapshot {
            tenant: job.tenant.clone(),
            job: job.name.clone(),
            path: req.path.clone(),
            clock,
            stopped: req.stop,
        },
    );
    if req.stop {
        let job = jobs.remove(idx);
        drr.dequeue(&job.tenant);
    }
    Ok(())
}

/// Finishes every job whose clock reached its target: flushes any pending
/// snapshot requests for it (all necessarily ready), writes the
/// result-JSON v1 envelope, emits `done`, and removes the job.
fn finish_ready_jobs(
    jobs: &mut Vec<Job>,
    pending: &mut Vec<SnapReq>,
    drr: &mut Drr,
    completed: &mut u64,
    out: &mut impl Write,
) -> Result<(), i32> {
    loop {
        let Some(idx) = jobs
            .iter()
            .position(|j| j.engine.step_count() >= j.spec.steps)
        else {
            return Ok(());
        };
        // Snapshot requests for a finishing job trigger at done at the
        // latest (their `at` is bounded by the target). A `stop` request
        // here removes the job without an envelope — resuming the
        // snapshot finishes it.
        service_snapshots(jobs, pending, drr, out)?;
        let Some(idx) = jobs
            .get(idx)
            .filter(|j| j.engine.step_count() >= j.spec.steps)
            .map(|_| idx)
            .or_else(|| {
                jobs.iter()
                    .position(|j| j.engine.step_count() >= j.spec.steps)
            })
        else {
            continue;
        };
        let job = jobs.remove(idx);
        let clock = job.engine.step_count();
        let counts = job.engine.class_counts();
        let elapsed = job.started.elapsed().as_secs_f64();
        let wall_ms = elapsed * 1e3;
        let executed = clock - job.start_clock;
        drr.dequeue(&job.tenant);
        pp_obs::counter_add_dyn("serve.jobs_done", 1);

        let mut table = Table::new(["class", "count"]);
        for (word, count) in counts.iter().enumerate() {
            table.row([word.to_string(), count.to_string()]);
        }
        let mut report = Report::new(
            format!("pp serve {}/{}: final class counts", job.tenant, job.name),
            table,
        );
        report.set_engine(job.spec.engine.name());
        report.param("tenant", &job.tenant);
        report.param("job", &job.name);
        report.param("topology", job.spec.topology.kind());
        report.param("n", job.spec.n);
        report.param("seed", job.spec.seed);
        report.param("steps", clock);
        report.param("init", job.spec.init.name());
        if let Some(shock) = &job.spec.shock {
            report.note(format!(
                "shock `{}` fired at clock {}",
                shock.kind, shock.at
            ));
        }
        if job.start_clock > 0 {
            report.note(format!(
                "resumed from a snapshot at clock {}",
                job.start_clock
            ));
        }
        if elapsed > 0.0 {
            report.set_steps_per_sec(executed as f64 / elapsed);
        }
        let name = format!("serve_{}_{}", job.tenant, job.name);
        let json = output::result_json_v1(&name, &report, "serve", wall_ms, None);
        if let Err(e) = output::validate_json(&json) {
            return Err(fail(
                out,
                format!("refusing to write invalid envelope for `{name}`: {e}"),
            ));
        }
        let bench = match output::write_json(&name, &json) {
            Ok(path) => Some(path.display().to_string()),
            Err(e) => {
                eprintln!("warning: could not write BENCH_{name}.json: {e}");
                None
            }
        };
        emit(
            out,
            &Event::Done {
                tenant: job.tenant.clone(),
                job: job.name.clone(),
                clock,
                class_counts: counts,
                tenant_steps: drr.executed(&job.tenant),
                total_steps: drr.total_executed(),
                bench,
            },
        );
        *completed += 1;
    }
}
