//! Deficit-round-robin slice scheduling across tenants.
//!
//! The server runs every tenant's jobs as bounded **step-slices** on one
//! thread (the engines themselves use the shared worker pool internally),
//! so inter-tenant fairness is purely a question of how slices are
//! granted. The scheduler is classic deficit round robin adapted to a
//! divisible resource: each round it visits the backlogged tenants in a
//! fixed rotation, tops the visited tenant's deficit up by one `quantum`,
//! and grants the whole deficit as that slice's step budget. A job that
//! finishes (or is clamped at a shock/snapshot boundary) mid-slice
//! charges only what it used; the leftover deficit carries into the
//! tenant's next visit, so short charges are never lost.
//!
//! Two classic DRR details matter for the guarantees:
//!
//! * **No idle credit.** A tenant whose backlog empties has its deficit
//!   reset — fairness is measured over the contended interval, not
//!   banked while idle ([`Drr::dequeue`]).
//! * **Bounded deficit.** The carried deficit is capped at
//!   [`DEFICIT_CAP_QUANTA`]` × quantum`, so pathological short-charge
//!   patterns cannot accumulate an unbounded burst.
//!
//! **Starvation-freedom** (tested below, asserted end-to-end by the CI
//! `serve-smoke` fairness gate): while `T` tenants stay backlogged and
//! charge what they are granted, each receives a `quantum` per round and
//! therefore at least `1/T − ε` of the granted steps over any window —
//! with two tenants, comfortably above the 40% floor the service
//! contract promises the slower tenant.

use std::collections::BTreeMap;

/// Cap on the carried deficit, in quanta.
pub const DEFICIT_CAP_QUANTA: u64 = 4;

#[derive(Debug, Default)]
struct Tenant {
    deficit: u64,
    backlog: usize,
    executed: u64,
}

/// The deficit-round-robin scheduler. Tracks, per tenant: queued job
/// count, carried deficit, and cumulative granted steps (the fairness
/// bookkeeping surfaced in progress/done events).
#[derive(Debug)]
pub struct Drr {
    quantum: u64,
    /// Rotation order: tenants in first-seen order.
    order: Vec<String>,
    cursor: usize,
    tenants: BTreeMap<String, Tenant>,
}

impl Drr {
    /// Creates a scheduler granting `quantum` steps per tenant per round.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: u64) -> Drr {
        assert!(quantum >= 1, "a zero quantum grants nothing forever");
        Drr {
            quantum,
            order: Vec::new(),
            cursor: 0,
            tenants: BTreeMap::new(),
        }
    }

    /// The per-round grant size.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Registers one more queued job for `tenant` (first call also adds
    /// the tenant to the rotation).
    pub fn enqueue(&mut self, tenant: &str) {
        if !self.tenants.contains_key(tenant) {
            self.order.push(tenant.to_string());
            self.tenants.insert(tenant.to_string(), Tenant::default());
        }
        self.tenants.get_mut(tenant).unwrap().backlog += 1;
    }

    /// Removes one queued job for `tenant` (done, stopped, or abandoned).
    /// When the tenant's backlog reaches zero its deficit is reset: an
    /// idle tenant accrues no credit.
    ///
    /// # Panics
    ///
    /// Panics if the tenant has no queued jobs — that is scheduler-state
    /// corruption, not an input error.
    pub fn dequeue(&mut self, tenant: &str) {
        let t = self
            .tenants
            .get_mut(tenant)
            .expect("dequeue of unknown tenant");
        assert!(t.backlog > 0, "dequeue of idle tenant `{tenant}`");
        t.backlog -= 1;
        if t.backlog == 0 {
            t.deficit = 0;
        }
    }

    /// Total queued jobs across all tenants.
    pub fn backlog(&self) -> usize {
        self.tenants.values().map(|t| t.backlog).sum()
    }

    /// Grants the next slice: picks the next backlogged tenant in
    /// rotation, tops its deficit up by one quantum (capped), and returns
    /// `(tenant, budget)` where `budget` is the full deficit. The caller
    /// runs up to `budget` steps and must report the amount actually used
    /// via [`Drr::charge`]. Returns `None` when nothing is backlogged.
    pub fn grant(&mut self) -> Option<(String, u64)> {
        if self.order.is_empty() {
            return None;
        }
        for _ in 0..self.order.len() {
            let name = self.order[self.cursor % self.order.len()].clone();
            self.cursor = (self.cursor + 1) % self.order.len();
            let t = self.tenants.get_mut(&name).unwrap();
            if t.backlog == 0 {
                continue;
            }
            t.deficit = (t.deficit + self.quantum).min(DEFICIT_CAP_QUANTA * self.quantum);
            return Some((name, t.deficit));
        }
        None
    }

    /// Records that `tenant` actually consumed `used` steps of its last
    /// grant; the unused remainder stays as carried deficit.
    pub fn charge(&mut self, tenant: &str, used: u64) {
        let t = self
            .tenants
            .get_mut(tenant)
            .expect("charge of unknown tenant");
        t.deficit = t.deficit.saturating_sub(used);
        t.executed += used;
    }

    /// Cumulative steps granted to (and used by) `tenant`.
    pub fn executed(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.executed)
    }

    /// Cumulative steps used across all tenants.
    pub fn total_executed(&self) -> u64 {
        self.tenants.values().map(|t| t.executed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_backlogged_tenants_split_the_machine_evenly() {
        let mut drr = Drr::new(1000);
        drr.enqueue("a");
        drr.enqueue("b");
        for _ in 0..10_000 {
            let (who, budget) = drr.grant().unwrap();
            drr.charge(&who, budget); // full-quantum charges
        }
        let (a, b) = (drr.executed("a"), drr.executed("b"));
        assert_eq!(a, b, "equal quanta, equal rotation, equal shares");
        assert_eq!(a + b, drr.total_executed());
    }

    #[test]
    fn starvation_freedom_under_partial_charges() {
        // Tenant `b` repeatedly uses only a sliver of each grant (jobs
        // that finish early, shock-clamped slices). The carried deficit
        // must keep its *entitlement* intact without ever letting `a`
        // starve: over any long window both stay within the DRR bound.
        let mut drr = Drr::new(1000);
        drr.enqueue("a");
        drr.enqueue("b");
        for round in 0..10_000 {
            let (who, budget) = drr.grant().unwrap();
            let used = if who == "b" && round % 3 != 0 {
                budget / 10
            } else {
                budget
            };
            drr.charge(&who, used);
        }
        let total = drr.total_executed();
        let slower = drr.executed("a").min(drr.executed("b"));
        // `b` throttles itself, so it gets less — but `a` must hold at
        // least its 1/2 share and `b`'s carried deficit must stay within
        // the cap (entitlement bounded, not unbounded).
        assert!(
            drr.executed("a") * 2 >= total,
            "full-charging tenant fell below its share"
        );
        assert!(slower > 0, "no tenant may starve");
    }

    #[test]
    fn deficit_is_capped_and_reset_when_idle() {
        let mut drr = Drr::new(100);
        drr.enqueue("a");
        drr.enqueue("b");
        // `a` charges nothing for many rounds: the budget it is offered
        // must plateau at the cap instead of growing without bound.
        let mut last_budget = 0;
        for _ in 0..50 {
            let (who, budget) = drr.grant().unwrap();
            if who == "a" {
                last_budget = budget;
                drr.charge("a", 0);
            } else {
                drr.charge("b", budget);
            }
        }
        assert_eq!(last_budget, DEFICIT_CAP_QUANTA * 100);
        // Once `a` goes idle and comes back, the hoard is gone.
        drr.dequeue("a");
        drr.enqueue("a");
        let budget = loop {
            let (who, budget) = drr.grant().unwrap();
            drr.charge(&who, budget);
            if who == "a" {
                break budget;
            }
        };
        assert_eq!(budget, 100, "idle reset must clear carried deficit");
    }

    #[test]
    fn single_tenant_gets_every_grant_and_empty_gets_none() {
        let mut drr = Drr::new(7);
        assert!(drr.grant().is_none());
        drr.enqueue("solo");
        for _ in 0..5 {
            let (who, budget) = drr.grant().unwrap();
            assert_eq!(who, "solo");
            drr.charge(&who, budget);
        }
        drr.dequeue("solo");
        assert!(drr.grant().is_none(), "no backlog, no grants");
        assert_eq!(drr.backlog(), 0);
    }
}
