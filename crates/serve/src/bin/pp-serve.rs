//! `pp-serve`: the multi-tenant simulation service over stdin/stdout.
//!
//! Requests are line-delimited `pp-serve-request-v1` JSON documents on
//! stdin; events stream out as `pp-serve-event-v1` lines on stdout. See
//! `ARCHITECTURE.md` for the wire formats and `EXPERIMENTS.md` for shell
//! recipes. Exit codes follow the workspace convention: 0 on clean
//! shutdown, 2 on any fail-closed schema/validation rejection.

use pp_serve::server::{run, Config};

fn main() {
    pp_obs::init_from_env();
    let code = run(
        std::io::BufReader::new(std::io::stdin()),
        &mut std::io::stdout().lock(),
        Config::from_env(),
    );
    pp_obs::flush_to_stderr();
    std::process::exit(code);
}
