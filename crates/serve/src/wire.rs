//! The `pp serve` wire format: request and event documents.
//!
//! Both directions are **line-delimited JSON** — one complete document per
//! line, no framing beyond the newline — parsed and validated with the same
//! hand-rolled `pp_bench::schema` machinery as the result-JSON v1 envelopes
//! (the workspace has no serde). Validation is fail-closed in the envelope
//! tradition: every field is type- and range-checked, and **unknown fields
//! are rejected** at every nesting level, so a typo'd option surfaces as an
//! error event instead of silently running a different experiment.
//!
//! ## Requests (client → server), `pp-serve-request-v1`
//!
//! Every request is an object with `"schema_version": 1` and an `"op"`:
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `submit` | `tenant`, `job`, `spec` | enqueue a job under a tenant |
//! | `snapshot` | `tenant`, `job`, `path`, `at`, `stop`? | write a `pp-snapshot-v1` file once the job's clock reaches `at` |
//! | `resume` | `path` | re-enqueue a job from a snapshot file |
//! | `shutdown` | — | stop the intake, finish queued jobs, then exit |
//!
//! The job `spec` (see [`JobSpec`]) names the protocol, weights, topology,
//! engine tier, seed, step target, observation cadence, initial condition,
//! and an optional mid-run adversarial [shock](pp_adversary::Shock).
//!
//! ## Events (server → client), `pp-serve-event-v1`
//!
//! One JSON object per line on stdout, each with `"schema_version": 1` and
//! an `"event"` discriminator: `accepted`, `progress`, `shock`, `snapshot`,
//! `resumed`, `done`, `error`, `shutdown`. Progress and done events carry
//! the live class counts plus the deficit-round-robin bookkeeping
//! (`tenant_steps`, `total_steps`) that makes fairness externally
//! checkable, and the `serve.*` slice counters from the `pp-obs` recorder.
//! See ARCHITECTURE.md ("pp serve wire format") for one worked example of
//! every document kind.

use pp_bench::schema::{parse, Value};
use pp_bench::EngineKind;
use pp_obs::json::quote;
use std::collections::BTreeMap;

/// Shock labels accepted in a job spec — exactly the
/// [`Shock::label`](pp_adversary::Shock::label) vocabulary.
pub const SHOCK_KINDS: [&str; 4] = [
    "add_agents",
    "inject_colour",
    "retire_colour",
    "remove_agents",
];

/// Upper bound on `n` in a submitted spec: large enough for every tier's
/// real workloads, small enough that a corrupt size field cannot OOM the
/// server before validation finishes.
pub const MAX_POPULATION: u64 = 100_000_000;

/// Largest integer a result-JSON number can carry exactly (f64 mantissa);
/// integer fields beyond this are rejected rather than silently rounded.
pub const MAX_EXACT_INT: u64 = 1 << 53;

fn as_obj<'a>(v: &'a Value, what: &str) -> Result<&'a BTreeMap<String, Value>, String> {
    match v {
        Value::Obj(m) => Ok(m),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn no_unknown_fields(
    m: &BTreeMap<String, Value>,
    known: &[&str],
    what: &str,
) -> Result<(), String> {
    for key in m.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in {what}"));
        }
    }
    Ok(())
}

fn field<'a>(m: &'a BTreeMap<String, Value>, key: &str, what: &str) -> Result<&'a Value, String> {
    m.get(key)
        .ok_or_else(|| format!("missing field `{key}` in {what}"))
}

fn str_field(m: &BTreeMap<String, Value>, key: &str, what: &str) -> Result<String, String> {
    match field(m, key, what)? {
        Value::Str(s) if !s.is_empty() => Ok(s.clone()),
        _ => Err(format!(
            "field `{key}` in {what} must be a non-empty string"
        )),
    }
}

fn u64_field(m: &BTreeMap<String, Value>, key: &str, what: &str) -> Result<u64, String> {
    match field(m, key, what)? {
        Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= MAX_EXACT_INT as f64 => {
            Ok(*x as u64)
        }
        _ => Err(format!(
            "field `{key}` in {what} must be a non-negative integer below 2^53"
        )),
    }
}

fn bool_field_or(
    m: &BTreeMap<String, Value>,
    key: &str,
    what: &str,
    default: bool,
) -> Result<bool, String> {
    match m.get(key) {
        None => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field `{key}` in {what} must be a boolean")),
    }
}

/// A tenant or job identifier: non-empty, at most 64 bytes, drawn from
/// `[a-z0-9_-]` so identifiers can ride in file names (`BENCH_serve_<tenant>_
/// <job>.json`) and counter names without escaping.
pub fn check_ident(s: &str, what: &str) -> Result<(), String> {
    if s.is_empty() || s.len() > 64 {
        return Err(format!("{what} must be 1..=64 bytes, got {}", s.len()));
    }
    if !s
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
    {
        return Err(format!(
            "{what} `{s}` must match [a-z0-9_-]+ (it becomes part of file and counter names)"
        ));
    }
    Ok(())
}

/// Parses an engine tier name (the [`EngineKind::name`] vocabulary).
pub fn engine_from_name(s: &str) -> Result<EngineKind, String> {
    Ok(match s {
        "agent" => EngineKind::Agent,
        "dense" => EngineKind::Dense,
        "packed" => EngineKind::Packed,
        "turbo" => EngineKind::Turbo,
        "sharded" => EngineKind::Sharded,
        "vec" => EngineKind::Vec,
        other => {
            return Err(format!(
                "engine must be one of agent, dense, packed, turbo, sharded, vec; got `{other}`"
            ))
        }
    })
}

/// The interaction graph a job runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// All-pairs interactions (`pp_graph::Complete`) — the paper's model,
    /// and the only topology the dense tier accepts.
    Complete,
    /// The `n`-cycle (`pp_graph::Cycle`).
    Cycle,
    /// A `rows × cols` 2-D torus (`pp_graph::Torus2d`); `rows * cols`
    /// must equal `n`.
    Torus {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

impl TopologySpec {
    /// The wire spelling (`complete`, `cycle`, `torus`).
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Complete => "complete",
            TopologySpec::Cycle => "cycle",
            TopologySpec::Torus { .. } => "torus",
        }
    }

    /// Whether the family has a canonical resize (resizing shocks are
    /// only accepted on families that do; see
    /// [`Topology::resized`](pp_graph::Topology::resized)).
    pub fn supports_resize(&self) -> bool {
        !matches!(self, TopologySpec::Torus { .. })
    }
}

/// How the initial population is laid out (the `pp_core::init`
/// constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitKind {
    /// `init::all_dark_balanced`: colours as even as the weights allow.
    Balanced,
    /// `init::all_dark_single_minority`: one agent of the last colour,
    /// the rest on colour 0 — the worst-case survival start.
    SingleMinority,
}

impl InitKind {
    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            InitKind::Balanced => "balanced",
            InitKind::SingleMinority => "single_minority",
        }
    }
}

/// An optional mid-run adversarial shock: the representative
/// [`Shock::enumerate`](pp_adversary::Shock::enumerate) instance with the
/// given label, applied exactly when the job's clock reaches `at` (slices
/// are clamped so the clock lands on `at` precisely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShockSpec {
    /// One of [`SHOCK_KINDS`].
    pub kind: String,
    /// Clock at which the shock fires; must be below the job's `steps`.
    pub at: u64,
}

/// A validated job specification — everything needed to (re)build the
/// engine deterministically, which is what makes snapshot files
/// self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Colour weights (`w_i > 0`, at least two colours); their count is
    /// the protocol's `k`.
    pub weights: Vec<f64>,
    /// Interaction graph.
    pub topology: TopologySpec,
    /// Population size.
    pub n: usize,
    /// Engine tier to run on.
    pub engine: EngineKind,
    /// RNG seed (also keys the shock RNG).
    pub seed: u64,
    /// Target clock; the job is done once `step_count() >= steps`.
    pub steps: u64,
    /// Progress-event cadence in steps.
    pub observe_every: u64,
    /// Initial population layout.
    pub init: InitKind,
    /// Optional mid-run shock.
    pub shock: Option<ShockSpec>,
}

impl JobSpec {
    /// Validates a parsed `spec` object. Fail-closed: unknown fields and
    /// out-of-range values are errors, including cross-field rules (the
    /// dense tier demands the complete graph; resizing shocks demand a
    /// resizable topology; `shock.at` must precede `steps`).
    pub fn from_doc(doc: &Value) -> Result<JobSpec, String> {
        let m = as_obj(doc, "spec")?;
        no_unknown_fields(
            m,
            &[
                "protocol",
                "weights",
                "topology",
                "rows",
                "cols",
                "n",
                "engine",
                "seed",
                "steps",
                "observe_every",
                "init",
                "shock",
            ],
            "spec",
        )?;
        let protocol = str_field(m, "protocol", "spec")?;
        if protocol != "diversification" {
            return Err(format!(
                "spec.protocol must be `diversification` (the only protocol served), got `{protocol}`"
            ));
        }
        let weights = match field(m, "weights", "spec")? {
            Value::Arr(items) if items.len() >= 2 => {
                let mut w = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_f64() {
                        Some(x) if x.is_finite() && x > 0.0 => w.push(x),
                        _ => {
                            return Err(format!(
                                "spec.weights[{i}] must be a finite positive number"
                            ))
                        }
                    }
                }
                w
            }
            _ => return Err("spec.weights must be an array of at least 2 numbers".into()),
        };
        let n = u64_field(m, "n", "spec")?;
        if n < 2 * weights.len() as u64 || n > MAX_POPULATION {
            return Err(format!(
                "spec.n must be in [2k, {MAX_POPULATION}] (k = {} colours), got {n}",
                weights.len()
            ));
        }
        let n = n as usize;
        let topology = match str_field(m, "topology", "spec")?.as_str() {
            "complete" => TopologySpec::Complete,
            "cycle" => TopologySpec::Cycle,
            "torus" => {
                let rows = u64_field(m, "rows", "spec")? as usize;
                let cols = u64_field(m, "cols", "spec")? as usize;
                if rows < 2 || cols < 2 || rows.checked_mul(cols) != Some(n) {
                    return Err(format!(
                        "spec torus needs rows >= 2, cols >= 2, rows*cols == n; \
                         got {rows}x{cols} with n = {n}"
                    ));
                }
                TopologySpec::Torus { rows, cols }
            }
            other => {
                return Err(format!(
                    "spec.topology must be complete, cycle, or torus; got `{other}`"
                ))
            }
        };
        if !matches!(topology, TopologySpec::Torus { .. })
            && (m.contains_key("rows") || m.contains_key("cols"))
        {
            return Err("spec.rows/cols are only meaningful for the torus topology".into());
        }
        let engine = engine_from_name(&str_field(m, "engine", "spec")?)?;
        if engine == EngineKind::Dense && topology != TopologySpec::Complete {
            return Err("the dense tier is count-based and runs only on the complete graph".into());
        }
        let seed = u64_field(m, "seed", "spec")?;
        let steps = u64_field(m, "steps", "spec")?;
        if steps == 0 {
            return Err("spec.steps must be at least 1".into());
        }
        let observe_every = u64_field(m, "observe_every", "spec")?;
        if observe_every == 0 {
            return Err("spec.observe_every must be at least 1".into());
        }
        let init = match str_field(m, "init", "spec")?.as_str() {
            "balanced" => InitKind::Balanced,
            "single_minority" => InitKind::SingleMinority,
            other => {
                return Err(format!(
                    "spec.init must be balanced or single_minority; got `{other}`"
                ))
            }
        };
        let shock = match m.get("shock") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let sm = as_obj(v, "spec.shock")?;
                no_unknown_fields(sm, &["kind", "at"], "spec.shock")?;
                let kind = str_field(sm, "kind", "spec.shock")?;
                if !SHOCK_KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "spec.shock.kind must be one of {SHOCK_KINDS:?}, got `{kind}`"
                    ));
                }
                let at = u64_field(sm, "at", "spec.shock")?;
                if at == 0 || at >= steps {
                    return Err(format!(
                        "spec.shock.at must be in [1, steps); got {at} with steps = {steps}"
                    ));
                }
                let resizes = kind == "add_agents" || kind == "remove_agents";
                if resizes && !topology.supports_resize() {
                    return Err(format!(
                        "shock `{kind}` resizes the population, but topology `{}` has no \
                         canonical resize",
                        topology.kind()
                    ));
                }
                Some(ShockSpec { kind, at })
            }
        };
        Ok(JobSpec {
            weights,
            topology,
            n,
            engine,
            seed,
            steps,
            observe_every,
            init,
            shock,
        })
    }

    /// Renders the spec back to its wire form (the exact object
    /// [`JobSpec::from_doc`] accepts — round-trips bit-exactly, which is
    /// how snapshot files stay self-contained).
    pub fn to_json(&self) -> String {
        let weights: Vec<String> = self.weights.iter().map(|w| fmt_f64(*w)).collect();
        let mut s = format!(
            "{{\"protocol\":\"diversification\",\"weights\":[{}],\"topology\":{}",
            weights.join(","),
            quote(self.topology.kind()),
        );
        if let TopologySpec::Torus { rows, cols } = self.topology {
            s.push_str(&format!(",\"rows\":{rows},\"cols\":{cols}"));
        }
        s.push_str(&format!(
            ",\"n\":{},\"engine\":{},\"seed\":{},\"steps\":{},\"observe_every\":{},\"init\":{}",
            self.n,
            quote(self.engine.name()),
            self.seed,
            self.steps,
            self.observe_every,
            quote(self.init.name()),
        ));
        match &self.shock {
            None => s.push_str(",\"shock\":null}"),
            Some(sh) => s.push_str(&format!(
                ",\"shock\":{{\"kind\":{},\"at\":{}}}}}",
                quote(&sh.kind),
                sh.at
            )),
        }
        s
    }
}

fn fmt_f64(x: f64) -> String {
    // Rust's shortest round-trip Display; keep a `.0` so the value stays
    // visibly a float in the document.
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

/// A validated client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job under a tenant.
    Submit {
        /// Tenant identifier ([`check_ident`] rules).
        tenant: String,
        /// Job identifier, unique within the tenant.
        job: String,
        /// What to run.
        spec: JobSpec,
    },
    /// Write a `pp-snapshot-v1` file for a running job once its clock
    /// reaches `at` (and any pending shock has fired).
    Snapshot {
        /// Owning tenant.
        tenant: String,
        /// Job to snapshot.
        job: String,
        /// Destination file path.
        path: String,
        /// Clock threshold: the snapshot is taken at the first slice
        /// boundary at or after this clock.
        at: u64,
        /// When true the job is removed after the snapshot — the
        /// "kill for later resume" half of the snapshot/resume cycle.
        stop: bool,
    },
    /// Re-enqueue a job from a snapshot file written by `snapshot`.
    Resume {
        /// Path of the `pp-snapshot-v1` file.
        path: String,
    },
    /// Stop the intake, finish queued jobs, then exit — the same
    /// graceful drain as input EOF.
    Shutdown,
}

impl Request {
    /// Validates a parsed request document.
    pub fn from_doc(doc: &Value) -> Result<Request, String> {
        let m = as_obj(doc, "request")?;
        match doc.get("schema_version").and_then(Value::as_f64) {
            Some(1.0) => {}
            _ => return Err("request must carry `\"schema_version\": 1`".into()),
        }
        let op = str_field(m, "op", "request")?;
        match op.as_str() {
            "submit" => {
                no_unknown_fields(
                    m,
                    &["schema_version", "op", "tenant", "job", "spec"],
                    "submit request",
                )?;
                let tenant = str_field(m, "tenant", "submit request")?;
                check_ident(&tenant, "tenant")?;
                let job = str_field(m, "job", "submit request")?;
                check_ident(&job, "job")?;
                let spec = JobSpec::from_doc(field(m, "spec", "submit request")?)?;
                Ok(Request::Submit { tenant, job, spec })
            }
            "snapshot" => {
                no_unknown_fields(
                    m,
                    &[
                        "schema_version",
                        "op",
                        "tenant",
                        "job",
                        "path",
                        "at",
                        "stop",
                    ],
                    "snapshot request",
                )?;
                let tenant = str_field(m, "tenant", "snapshot request")?;
                check_ident(&tenant, "tenant")?;
                let job = str_field(m, "job", "snapshot request")?;
                check_ident(&job, "job")?;
                Ok(Request::Snapshot {
                    tenant,
                    job,
                    path: str_field(m, "path", "snapshot request")?,
                    at: u64_field(m, "at", "snapshot request")?,
                    stop: bool_field_or(m, "stop", "snapshot request", false)?,
                })
            }
            "resume" => {
                no_unknown_fields(m, &["schema_version", "op", "path"], "resume request")?;
                Ok(Request::Resume {
                    path: str_field(m, "path", "resume request")?,
                })
            }
            "shutdown" => {
                no_unknown_fields(m, &["schema_version", "op"], "shutdown request")?;
                Ok(Request::Shutdown)
            }
            other => Err(format!(
                "op must be submit, snapshot, resume, or shutdown; got `{other}`"
            )),
        }
    }

    /// Parses and validates one request line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = parse(line).map_err(|e| e.to_string())?;
        Request::from_doc(&doc)
    }
}

/// A server event, rendered as exactly one stdout line. Field order is
/// stable (`schema_version`, `event`, then the event's fields in the order
/// documented in ARCHITECTURE.md) so shell harnesses can grep lines
/// without a JSON parser; proper consumers parse with `pp_bench::schema`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A submit was validated and enqueued.
    Accepted {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// Engine tier the job will run on.
        engine: &'static str,
        /// Population size.
        n: usize,
        /// Target clock.
        steps: u64,
    },
    /// Periodic observation, emitted whenever a slice crosses an
    /// `observe_every` boundary.
    Progress {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// Engine clock after the slice.
        clock: u64,
        /// The job's target clock.
        target: u64,
        /// Live class counts (population tallied by packed word).
        class_counts: Vec<u64>,
        /// Cumulative steps the scheduler has granted this tenant.
        tenant_steps: u64,
        /// Cumulative steps granted across all tenants.
        total_steps: u64,
        /// Current `serve.*` counters from the `pp-obs` recorder.
        counters: Vec<(String, u64)>,
    },
    /// A scheduled shock fired.
    Shock {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// Shock label.
        kind: String,
        /// Clock at which it fired.
        at: u64,
        /// Population size after the shock (resizing shocks change it).
        n_after: usize,
    },
    /// A snapshot file was written.
    Snapshot {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// File written.
        path: String,
        /// Clock captured in the file.
        clock: u64,
        /// Whether the job was stopped (removed) after the capture.
        stopped: bool,
    },
    /// A job was re-enqueued from a snapshot file.
    Resumed {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// Clock the job resumes from.
        clock: u64,
        /// The job's target clock.
        target: u64,
    },
    /// A job reached its target clock; its result-JSON v1 envelope was
    /// written (unless the bench directory was unwritable, in which case
    /// `bench` is null and a warning went to stderr).
    Done {
        /// Owning tenant.
        tenant: String,
        /// Job name.
        job: String,
        /// Final clock (>= target; the sharded tier can overshoot to a
        /// block boundary after a snapshot drain).
        clock: u64,
        /// Final class counts.
        class_counts: Vec<u64>,
        /// Cumulative steps granted to this tenant.
        tenant_steps: u64,
        /// Cumulative steps granted across all tenants.
        total_steps: u64,
        /// Path of the `BENCH_serve_<tenant>_<job>.json` envelope.
        bench: Option<String>,
    },
    /// Fail-closed rejection; the server exits 2 right after emitting it.
    Error {
        /// What was rejected and why.
        message: String,
    },
    /// Clean shutdown (explicit op, or input EOF with no work left).
    Shutdown {
        /// Jobs that ran to completion during this server's lifetime.
        completed: u64,
    },
}

fn counts_json(counts: &[u64]) -> String {
    let items: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!("[{}]", items.join(","))
}

impl Event {
    /// Renders the event as its single JSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Event::Accepted {
                tenant,
                job,
                engine,
                n,
                steps,
            } => format!(
                "{{\"schema_version\":1,\"event\":\"accepted\",\"tenant\":{},\"job\":{},\
                 \"engine\":{},\"n\":{n},\"steps\":{steps}}}",
                quote(tenant),
                quote(job),
                quote(engine),
            ),
            Event::Progress {
                tenant,
                job,
                clock,
                target,
                class_counts,
                tenant_steps,
                total_steps,
                counters,
            } => {
                let counters: Vec<String> = counters
                    .iter()
                    .map(|(k, v)| format!("{}:{v}", quote(k)))
                    .collect();
                format!(
                    "{{\"schema_version\":1,\"event\":\"progress\",\"tenant\":{},\"job\":{},\
                     \"clock\":{clock},\"target\":{target},\"class_counts\":{},\
                     \"tenant_steps\":{tenant_steps},\"total_steps\":{total_steps},\
                     \"counters\":{{{}}}}}",
                    quote(tenant),
                    quote(job),
                    counts_json(class_counts),
                    counters.join(","),
                )
            }
            Event::Shock {
                tenant,
                job,
                kind,
                at,
                n_after,
            } => format!(
                "{{\"schema_version\":1,\"event\":\"shock\",\"tenant\":{},\"job\":{},\
                 \"kind\":{},\"at\":{at},\"n_after\":{n_after}}}",
                quote(tenant),
                quote(job),
                quote(kind),
            ),
            Event::Snapshot {
                tenant,
                job,
                path,
                clock,
                stopped,
            } => format!(
                "{{\"schema_version\":1,\"event\":\"snapshot\",\"tenant\":{},\"job\":{},\
                 \"path\":{},\"clock\":{clock},\"stopped\":{stopped}}}",
                quote(tenant),
                quote(job),
                quote(path),
            ),
            Event::Resumed {
                tenant,
                job,
                clock,
                target,
            } => format!(
                "{{\"schema_version\":1,\"event\":\"resumed\",\"tenant\":{},\"job\":{},\
                 \"clock\":{clock},\"target\":{target}}}",
                quote(tenant),
                quote(job),
            ),
            Event::Done {
                tenant,
                job,
                clock,
                class_counts,
                tenant_steps,
                total_steps,
                bench,
            } => format!(
                "{{\"schema_version\":1,\"event\":\"done\",\"tenant\":{},\"job\":{},\
                 \"clock\":{clock},\"class_counts\":{},\
                 \"tenant_steps\":{tenant_steps},\"total_steps\":{total_steps},\"bench\":{}}}",
                quote(tenant),
                quote(job),
                counts_json(class_counts),
                match bench {
                    Some(p) => quote(p),
                    None => "null".to_string(),
                },
            ),
            Event::Error { message } => format!(
                "{{\"schema_version\":1,\"event\":\"error\",\"message\":{}}}",
                quote(message),
            ),
            Event::Shutdown { completed } => {
                format!("{{\"schema_version\":1,\"event\":\"shutdown\",\"completed\":{completed}}}")
            }
        }
    }
}

/// Validates a parsed event document against the `pp-serve-event-v1`
/// shape — the consumer-side mirror of [`Event::render`], used by the
/// wire tests and the ARCHITECTURE.md worked-example gate.
pub fn validate_event(doc: &Value) -> Result<(), String> {
    let m = as_obj(doc, "event")?;
    match doc.get("schema_version").and_then(Value::as_f64) {
        Some(1.0) => {}
        _ => return Err("event must carry `\"schema_version\": 1`".into()),
    }
    let kind = str_field(m, "event", "event")?;
    let base = ["schema_version", "event"];
    let ident_pair = |m: &BTreeMap<String, Value>| -> Result<(), String> {
        check_ident(&str_field(m, "tenant", "event")?, "tenant")?;
        check_ident(&str_field(m, "job", "event")?, "job")
    };
    let counts_ok = |m: &BTreeMap<String, Value>| -> Result<(), String> {
        match m.get("class_counts") {
            Some(Value::Arr(items)) if !items.is_empty() => {
                for (i, c) in items.iter().enumerate() {
                    match c.as_f64() {
                        Some(x) if x >= 0.0 && x.fract() == 0.0 => {}
                        _ => return Err(format!("class_counts[{i}] must be a whole number")),
                    }
                }
                Ok(())
            }
            _ => Err("event field `class_counts` must be a non-empty array".into()),
        }
    };
    match kind.as_str() {
        "accepted" => {
            let known: Vec<&str> = base
                .iter()
                .chain(["tenant", "job", "engine", "n", "steps"].iter())
                .copied()
                .collect();
            no_unknown_fields(m, &known, "accepted event")?;
            ident_pair(m)?;
            engine_from_name(&str_field(m, "engine", "event")?)?;
            u64_field(m, "n", "event")?;
            u64_field(m, "steps", "event")?;
        }
        "progress" => {
            let known: Vec<&str> = base
                .iter()
                .chain(
                    [
                        "tenant",
                        "job",
                        "clock",
                        "target",
                        "class_counts",
                        "tenant_steps",
                        "total_steps",
                        "counters",
                    ]
                    .iter(),
                )
                .copied()
                .collect();
            no_unknown_fields(m, &known, "progress event")?;
            ident_pair(m)?;
            counts_ok(m)?;
            for f in ["clock", "target", "tenant_steps", "total_steps"] {
                u64_field(m, f, "progress event")?;
            }
            match field(m, "counters", "progress event")? {
                Value::Obj(c) => {
                    for (k, v) in c {
                        if v.as_f64().is_none() {
                            return Err(format!("counters entry `{k}` must be a number"));
                        }
                    }
                }
                _ => return Err("progress event field `counters` must be an object".into()),
            }
        }
        "shock" => {
            let known: Vec<&str> = base
                .iter()
                .chain(["tenant", "job", "kind", "at", "n_after"].iter())
                .copied()
                .collect();
            no_unknown_fields(m, &known, "shock event")?;
            ident_pair(m)?;
            let sk = str_field(m, "kind", "event")?;
            if !SHOCK_KINDS.contains(&sk.as_str()) {
                return Err(format!("shock event kind `{sk}` is not a shock label"));
            }
            u64_field(m, "at", "event")?;
            u64_field(m, "n_after", "event")?;
        }
        "snapshot" => {
            let known: Vec<&str> = base
                .iter()
                .chain(["tenant", "job", "path", "clock", "stopped"].iter())
                .copied()
                .collect();
            no_unknown_fields(m, &known, "snapshot event")?;
            ident_pair(m)?;
            str_field(m, "path", "event")?;
            u64_field(m, "clock", "event")?;
            bool_field_or(m, "stopped", "snapshot event", false)?;
        }
        "resumed" => {
            let known: Vec<&str> = base
                .iter()
                .chain(["tenant", "job", "clock", "target"].iter())
                .copied()
                .collect();
            no_unknown_fields(m, &known, "resumed event")?;
            ident_pair(m)?;
            u64_field(m, "clock", "event")?;
            u64_field(m, "target", "event")?;
        }
        "done" => {
            let known: Vec<&str> = base
                .iter()
                .chain(
                    [
                        "tenant",
                        "job",
                        "clock",
                        "class_counts",
                        "tenant_steps",
                        "total_steps",
                        "bench",
                    ]
                    .iter(),
                )
                .copied()
                .collect();
            no_unknown_fields(m, &known, "done event")?;
            ident_pair(m)?;
            counts_ok(m)?;
            for f in ["clock", "tenant_steps", "total_steps"] {
                u64_field(m, f, "done event")?;
            }
            match field(m, "bench", "done event")? {
                Value::Str(_) | Value::Null => {}
                _ => return Err("done event field `bench` must be a string or null".into()),
            }
        }
        "error" => {
            let known: Vec<&str> = base.iter().chain(["message"].iter()).copied().collect();
            no_unknown_fields(m, &known, "error event")?;
            str_field(m, "message", "event")?;
        }
        "shutdown" => {
            let known: Vec<&str> = base.iter().chain(["completed"].iter()).copied().collect();
            no_unknown_fields(m, &known, "shutdown event")?;
            u64_field(m, "completed", "event")?;
        }
        other => return Err(format!("unknown event kind `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec_json() -> String {
        concat!(
            "{\"protocol\":\"diversification\",\"weights\":[1.0,1.0,2.0],",
            "\"topology\":\"torus\",\"rows\":8,\"cols\":8,\"n\":64,\"engine\":\"turbo\",",
            "\"seed\":42,\"steps\":10000,\"observe_every\":1000,\"init\":\"balanced\",",
            "\"shock\":{\"kind\":\"inject_colour\",\"at\":5000}}"
        )
        .to_string()
    }

    #[test]
    fn spec_round_trips_through_its_own_writer() {
        let doc = parse(&sample_spec_json()).unwrap();
        let spec = JobSpec::from_doc(&doc).unwrap();
        assert_eq!(spec.topology, TopologySpec::Torus { rows: 8, cols: 8 });
        assert_eq!(spec.engine, EngineKind::Turbo);
        let re = JobSpec::from_doc(&parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(spec, re);
    }

    #[test]
    fn spec_rejections_are_fail_closed() {
        let ok = sample_spec_json();
        let cases = [
            // (mutation, why)
            (
                ok.replace("\"seed\":42", "\"seed\":42,\"sed\":1"),
                "unknown field",
            ),
            (ok.replace("diversification", "voter"), "foreign protocol"),
            (ok.replace("[1.0,1.0,2.0]", "[1.0]"), "single colour"),
            (ok.replace("[1.0,1.0,2.0]", "[1.0,-1.0]"), "negative weight"),
            (ok.replace("\"n\":64", "\"n\":3"), "n below 2k"),
            (ok.replace("\"rows\":8", "\"rows\":9"), "rows*cols != n"),
            (ok.replace("\"turbo\"", "\"warp\""), "unknown engine"),
            (ok.replace("\"steps\":10000", "\"steps\":0"), "zero steps"),
            (
                ok.replace("\"observe_every\":1000", "\"observe_every\":0"),
                "zero cadence",
            ),
            (
                ok.replace("\"at\":5000", "\"at\":10000"),
                "shock at >= steps",
            ),
            (
                ok.replace("inject_colour", "add_agents"),
                "resizing shock on torus",
            ),
            (
                ok.replace("\"turbo\"", "\"dense\""),
                "dense off the complete graph",
            ),
            (
                ok.replace("\"seed\":42", "\"seed\":1e300"),
                "seed beyond 2^53",
            ),
        ];
        for (bad, why) in cases {
            let doc = parse(&bad).unwrap();
            assert!(JobSpec::from_doc(&doc).is_err(), "accepted {why}: {bad}");
        }
    }

    #[test]
    fn requests_parse_and_reject() {
        let submit = format!(
            "{{\"schema_version\":1,\"op\":\"submit\",\"tenant\":\"alice\",\"job\":\"j1\",\"spec\":{}}}",
            sample_spec_json()
        );
        assert!(matches!(
            Request::parse_line(&submit).unwrap(),
            Request::Submit { .. }
        ));
        let snap = "{\"schema_version\":1,\"op\":\"snapshot\",\"tenant\":\"alice\",\
                    \"job\":\"j1\",\"path\":\"/tmp/s.json\",\"at\":100,\"stop\":true}";
        assert_eq!(
            Request::parse_line(snap).unwrap(),
            Request::Snapshot {
                tenant: "alice".into(),
                job: "j1".into(),
                path: "/tmp/s.json".into(),
                at: 100,
                stop: true,
            }
        );
        assert!(matches!(
            Request::parse_line("{\"schema_version\":1,\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        ));
        for bad in [
            "not json",
            "{\"op\":\"submit\"}",                      // no version
            "{\"schema_version\":1,\"op\":\"reboot\"}", // unknown op
            "{\"schema_version\":1,\"op\":\"shutdown\",\"now\":1}", // unknown field
            "{\"schema_version\":2,\"op\":\"shutdown\"}", // wrong version
            "{\"schema_version\":1,\"op\":\"resume\"}", // missing path
        ] {
            assert!(Request::parse_line(bad).is_err(), "accepted {bad}");
        }
        let bad_tenant = submit.replace("\"alice\"", "\"Alice In Chains\"");
        assert!(
            Request::parse_line(&bad_tenant).is_err(),
            "idents are [a-z0-9_-]"
        );
    }

    #[test]
    fn every_event_kind_validates_against_its_own_renderer() {
        let events = [
            Event::Accepted {
                tenant: "alice".into(),
                job: "j1".into(),
                engine: "turbo",
                n: 64,
                steps: 10_000,
            },
            Event::Progress {
                tenant: "alice".into(),
                job: "j1".into(),
                clock: 2048,
                target: 10_000,
                class_counts: vec![30, 4, 30],
                tenant_steps: 2048,
                total_steps: 4096,
                counters: vec![("serve.steps.alice".into(), 2048)],
            },
            Event::Shock {
                tenant: "alice".into(),
                job: "j1".into(),
                kind: "inject_colour".into(),
                at: 5_000,
                n_after: 64,
            },
            Event::Snapshot {
                tenant: "alice".into(),
                job: "j1".into(),
                path: "/tmp/s.json".into(),
                clock: 6_144,
                stopped: true,
            },
            Event::Resumed {
                tenant: "alice".into(),
                job: "j1".into(),
                clock: 6_144,
                target: 10_000,
            },
            Event::Done {
                tenant: "alice".into(),
                job: "j1".into(),
                clock: 10_240,
                class_counts: vec![30, 4, 30],
                tenant_steps: 10_240,
                total_steps: 20_480,
                bench: Some("out/BENCH_serve_alice_j1.json".into()),
            },
            Event::Error {
                message: "bad request".into(),
            },
            Event::Shutdown { completed: 2 },
        ];
        for e in events {
            let line = e.render();
            let doc = parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            validate_event(&doc).unwrap_or_else(|err| panic!("{line}: {err}"));
        }
        // And the validator is not a rubber stamp.
        let doc = parse("{\"schema_version\":1,\"event\":\"done\",\"tenant\":\"a\"}").unwrap();
        assert!(validate_event(&doc).is_err());
        let doc =
            parse("{\"schema_version\":1,\"event\":\"shutdown\",\"completed\":1,\"x\":2}").unwrap();
        assert!(
            validate_event(&doc).is_err(),
            "unknown event field accepted"
        );
    }
}
