//! `pp serve`: a multi-tenant simulation service with snapshot/resume.
//!
//! The rest of the workspace runs one experiment per process: a bin parses
//! its environment, builds an engine, runs it to completion, and writes a
//! result-JSON v1 envelope. This crate turns that batch model into a
//! **service**: a long-running process that accepts protocol/topology/
//! adversary job specs as line-delimited JSON requests on stdin, runs each
//! tenant's jobs as bounded step-slices on any engine tier through the
//! uniform `Box<dyn Engine>` dispatch, and streams live class-count
//! observations as JSON events on stdout. Everything is hand-rolled on
//! the same `pp_bench::schema` parser the envelopes use — no new
//! dependencies, no async runtime, one OS thread per concern.
//!
//! The crate splits into four small modules:
//!
//! * [`wire`] — the request/event formats (`pp-serve-request-v1`,
//!   `pp-serve-event-v1`): fail-closed parsing with unknown fields
//!   rejected, plus exact-round-trip rendering.
//! * [`snapshot`] — the `pp-snapshot-v1` file format wrapping
//!   [`EngineSnapshot`](pp_engine::EngineSnapshot): self-validating
//!   (schema-checked, checksummed), with `u64` values carried as hex
//!   strings so nothing is squeezed through an `f64`.
//! * [`sched`] — deficit-round-robin slice scheduling across tenants,
//!   with tested starvation-freedom and bounded carried deficit.
//! * [`server`] — the event loop tying them together.
//!
//! See `ARCHITECTURE.md` at the repository root for the complete wire
//! format reference with worked examples (each example is compiled
//! against these parsers by `tests/architecture_examples.rs`), and the
//! "Service" section of `EXPERIMENTS.md` for shell-level usage.
//!
//! # Determinism contract
//!
//! A job is fully determined by `(spec, seed)`; a snapshot captures the
//! engine's exact `(states, rng clocks, aux)` mid-run. Resuming on the
//! agent, packed, turbo, sharded, and vec tiers is **bit-exact**: the
//! resumed trajectory equals the uninterrupted one state-for-state (these
//! tiers are slicing-invariant — `run(a); run(b)` ≡ `run(a+b)`). The
//! dense tier's τ-leaping sizes batches from each `run` call's budget, so
//! a dense resume is exact in distribution but not bit-exact against a
//! differently-sliced run; `tests/engine_snapshot.rs` at the workspace
//! root pins both halves of this contract.
//!
//! # Example
//!
//! Drive a tiny single-tenant session entirely in memory:
//!
//! ```
//! use std::io::Cursor;
//!
//! let requests = concat!(
//!     "{\"schema_version\":1,\"op\":\"submit\",\"tenant\":\"t\",\"job\":\"demo\",",
//!     "\"spec\":{\"protocol\":\"diversification\",\"weights\":[1.0,1.0,2.0],",
//!     "\"topology\":\"cycle\",\"n\":24,\"engine\":\"packed\",\"seed\":7,",
//!     "\"steps\":1000,\"observe_every\":400,\"init\":\"balanced\",\"shock\":null}}\n",
//!     "{\"schema_version\":1,\"op\":\"shutdown\"}\n",
//! );
//! let mut events = Vec::new();
//! let code = pp_serve::server::run(
//!     Cursor::new(requests),
//!     &mut events,
//!     pp_serve::server::Config::default(),
//! );
//! assert_eq!(code, 0);
//! let text = String::from_utf8(events).unwrap();
//! assert!(text.contains("\"event\":\"accepted\""));
//! assert!(text.contains("\"event\":\"done\""));
//! for line in text.lines() {
//!     let doc = pp_bench::schema::parse(line).unwrap();
//!     pp_serve::wire::validate_event(&doc).unwrap();
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod sched;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use sched::Drr;
pub use server::{run, Config};
pub use snapshot::SnapshotFile;
pub use wire::{Event, JobSpec, Request};
