//! The `pp-snapshot-v1` file format: a self-contained, self-validating
//! serialization of one job's complete simulation state.
//!
//! A snapshot file carries everything a **fresh server process** needs to
//! continue the job: the original [`JobSpec`] (to rebuild the engine), the
//! tenant/job identity, whether the job's scheduled shock has already
//! fired, and the tier's [`EngineSnapshot`] (packed population, clock,
//! seed, and the tier-private resume words). Restoring it replays the
//! trajectory bit-exactly from `(seed, clock)` — the engine-level contract
//! gated by `tests/engine_snapshot.rs`.
//!
//! ## Precision: why `u64` fields are hex strings
//!
//! The result-JSON toolchain parses every number as `f64`, which is exact
//! only up to `2^53`. Seeds, clocks, and the aux words are full-range
//! `u64` (xoshiro state words in particular are uniform over `u64`), so
//! they are serialized as `"0x%016x"` strings and parsed back without a
//! float round-trip. Packed states are `u32` and ride as plain numbers.
//!
//! ## Fail-closed validation
//!
//! [`SnapshotFile::parse`] rejects, in order: malformed JSON, a wrong
//! `format`/`schema_version`, **unknown fields at any level** (same rule
//! as result-JSON v1), field-level type/range violations, a spec that
//! fails [`JobSpec::from_doc`], and finally a [`checksum`] mismatch over
//! the whole payload. A truncated, bit-flipped, or hand-edited file is
//! therefore an error *before* any engine is built — the server's exit-2
//! path — never a silently diverging resume. What the checksum cannot see
//! (a stale-but-internally-consistent file) the engine's own
//! `restore_snapshot` identity checks still reject.

use crate::wire::{check_ident, JobSpec, MAX_EXACT_INT};
use pp_bench::schema::{parse, Value};
use pp_engine::EngineSnapshot;
use pp_obs::json::quote;

/// The format tag every snapshot file carries.
pub const FORMAT: &str = "pp-snapshot-v1";

/// One job's complete serialized state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFile {
    /// Owning tenant.
    pub tenant: String,
    /// Job name within the tenant.
    pub job: String,
    /// The job's original spec — the engine is rebuilt from this.
    pub spec: JobSpec,
    /// Whether the spec's scheduled shock already fired before the
    /// capture (a resumed job must not re-arm a fired shock).
    pub shock_applied: bool,
    /// The engine tier's versioned state capture.
    pub engine: EngineSnapshot,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix(h: u64, word: u64) -> u64 {
    splitmix64(h ^ word)
}

fn mix_str(mut h: u64, s: &str) -> u64 {
    h = mix(h, s.len() as u64);
    for b in s.as_bytes() {
        h = mix(h, *b as u64);
    }
    h
}

/// The integrity checksum over a snapshot's full payload: a SplitMix64
/// chain absorbing the identity strings, the shock flag, and every header
/// and payload word. Not cryptographic — it catches truncation, bit
/// flips, and hand edits, which is the corruption class the exit-2 gate
/// is for.
pub fn checksum(tenant: &str, job: &str, shock_applied: bool, snap: &EngineSnapshot) -> u64 {
    let mut h = 0x5EED_0F00D;
    h = mix_str(h, tenant);
    h = mix_str(h, job);
    h = mix(h, shock_applied as u64);
    h = mix_str(h, &snap.engine);
    h = mix_str(h, &snap.protocol);
    h = mix_str(h, &snap.topology);
    h = mix(h, snap.n);
    h = mix(h, snap.clock);
    h = mix(h, snap.seed);
    h = mix(h, snap.states.len() as u64);
    for &s in &snap.states {
        h = mix(h, s as u64);
    }
    h = mix(h, snap.aux.len() as u64);
    for &a in &snap.aux {
        h = mix(h, a);
    }
    h
}

fn hex(v: u64) -> String {
    format!("0x{v:016x}")
}

fn parse_hex(s: &str, what: &str) -> Result<u64, String> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what} must be a 0x-prefixed hex string, got `{s}`"))?;
    if digits.len() != 16 {
        return Err(format!("{what} must have exactly 16 hex digits, got `{s}`"));
    }
    u64::from_str_radix(digits, 16).map_err(|e| format!("{what}: bad hex `{s}`: {e}"))
}

impl SnapshotFile {
    /// Renders the snapshot as its `pp-snapshot-v1` JSON document
    /// (newline-terminated; parse/render round-trips bit-exactly).
    pub fn render(&self) -> String {
        let states: Vec<String> = self.engine.states.iter().map(|s| s.to_string()).collect();
        let aux: Vec<String> = self.engine.aux.iter().map(|a| quote(&hex(*a))).collect();
        format!(
            "{{\n  \"schema_version\": 1,\n  \"format\": {format},\n  \"tenant\": {tenant},\n  \
             \"job\": {job},\n  \"shock_applied\": {shock},\n  \"spec\": {spec},\n  \
             \"engine\": {{\"tier\": {tier}, \"protocol\": {protocol}, \"topology\": {topology}, \
             \"n\": {n}, \"clock\": {clock}, \"seed\": {seed},\n    \"states\": [{states}],\n    \
             \"aux\": [{aux}]}},\n  \"checksum\": {checksum}\n}}\n",
            format = quote(FORMAT),
            tenant = quote(&self.tenant),
            job = quote(&self.job),
            shock = self.shock_applied,
            spec = self.spec.to_json(),
            tier = quote(&self.engine.engine),
            protocol = quote(&self.engine.protocol),
            topology = quote(&self.engine.topology),
            n = self.engine.n,
            clock = quote(&hex(self.engine.clock)),
            seed = quote(&hex(self.engine.seed)),
            states = states.join(","),
            aux = aux.join(","),
            checksum = quote(&hex(checksum(
                &self.tenant,
                &self.job,
                self.shock_applied,
                &self.engine
            ))),
        )
    }

    /// Parses and fully validates a `pp-snapshot-v1` document (see the
    /// module docs for the rejection order). On success the returned
    /// snapshot is exactly what [`SnapshotFile::render`] wrote.
    pub fn parse(text: &str) -> Result<SnapshotFile, String> {
        let doc = parse(text).map_err(|e| format!("snapshot file: {e}"))?;
        let m = match &doc {
            Value::Obj(m) => m,
            _ => return Err("snapshot file must be a JSON object".into()),
        };
        let known = [
            "schema_version",
            "format",
            "tenant",
            "job",
            "shock_applied",
            "spec",
            "engine",
            "checksum",
        ];
        for key in m.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` in snapshot file"));
            }
        }
        match doc.get("schema_version").and_then(Value::as_f64) {
            Some(1.0) => {}
            _ => return Err("snapshot file must carry `\"schema_version\": 1`".into()),
        }
        match doc.get("format").and_then(Value::as_str) {
            Some(f) if f == FORMAT => {}
            Some(f) => return Err(format!("snapshot format must be `{FORMAT}`, got `{f}`")),
            None => return Err("snapshot file missing string field `format`".into()),
        }
        let get_str = |key: &str| -> Result<String, String> {
            match doc.get(key).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => Ok(s.to_string()),
                _ => Err(format!(
                    "snapshot file field `{key}` must be a non-empty string"
                )),
            }
        };
        let tenant = get_str("tenant")?;
        check_ident(&tenant, "snapshot tenant")?;
        let job = get_str("job")?;
        check_ident(&job, "snapshot job")?;
        let shock_applied = match doc.get("shock_applied") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("snapshot file field `shock_applied` must be a boolean".into()),
        };
        let spec = JobSpec::from_doc(
            doc.get("spec")
                .ok_or_else(|| "snapshot file missing field `spec`".to_string())?,
        )
        .map_err(|e| format!("snapshot spec: {e}"))?;

        let eng = doc
            .get("engine")
            .ok_or_else(|| "snapshot file missing field `engine`".to_string())?;
        let em = match eng {
            Value::Obj(em) => em,
            _ => return Err("snapshot file field `engine` must be an object".into()),
        };
        let eng_known = [
            "tier", "protocol", "topology", "n", "clock", "seed", "states", "aux",
        ];
        for key in em.keys() {
            if !eng_known.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}` in snapshot engine object"));
            }
        }
        let eng_str = |key: &str| -> Result<String, String> {
            match eng.get(key).and_then(Value::as_str) {
                Some(s) if !s.is_empty() => Ok(s.to_string()),
                _ => Err(format!(
                    "snapshot engine field `{key}` must be a non-empty string"
                )),
            }
        };
        let n = match eng.get("n").and_then(Value::as_f64) {
            Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= MAX_EXACT_INT as f64 => x as u64,
            _ => return Err("snapshot engine field `n` must be a whole number below 2^53".into()),
        };
        let clock = parse_hex(&eng_str("clock")?, "snapshot engine field `clock`")?;
        let seed = parse_hex(&eng_str("seed")?, "snapshot engine field `seed`")?;
        let states = match eng.get("states") {
            Some(Value::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_f64() {
                        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u32::MAX as f64 => {
                            out.push(x as u32)
                        }
                        _ => {
                            return Err(format!("snapshot engine states[{i}] must be a u32 number"))
                        }
                    }
                }
                out
            }
            _ => return Err("snapshot engine field `states` must be an array".into()),
        };
        let aux = match eng.get("aux") {
            Some(Value::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_str() {
                        Some(s) => out.push(parse_hex(s, &format!("snapshot engine aux[{i}]"))?),
                        None => {
                            return Err(format!("snapshot engine aux[{i}] must be a hex string"))
                        }
                    }
                }
                out
            }
            _ => return Err("snapshot engine field `aux` must be an array".into()),
        };
        let engine = EngineSnapshot {
            engine: eng_str("tier")?,
            protocol: eng_str("protocol")?,
            topology: eng_str("topology")?,
            n,
            clock,
            seed,
            states,
            aux,
        };

        let declared = parse_hex(&get_str("checksum")?, "snapshot file field `checksum`")?;
        let actual = checksum(&tenant, &job, shock_applied, &engine);
        if declared != actual {
            return Err(format!(
                "snapshot checksum mismatch: file declares {}, payload hashes to {} \
                 (the file is corrupt or was edited)",
                hex(declared),
                hex(actual)
            ));
        }
        Ok(SnapshotFile {
            tenant,
            job,
            spec,
            shock_applied,
            engine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{InitKind, TopologySpec};
    use pp_bench::EngineKind;

    fn sample() -> SnapshotFile {
        SnapshotFile {
            tenant: "alice".into(),
            job: "j1".into(),
            spec: JobSpec {
                weights: vec![1.0, 2.0],
                topology: TopologySpec::Cycle,
                n: 8,
                engine: EngineKind::Packed,
                seed: 42,
                steps: 1000,
                observe_every: 100,
                init: InitKind::Balanced,
                shock: None,
            },
            shock_applied: false,
            engine: EngineSnapshot {
                engine: "packed".into(),
                protocol: "diversification".into(),
                topology: "cycle".into(),
                n: 8,
                clock: 512,
                seed: 42,
                states: vec![0, 1, 2, 3, 0, 1, 2, 3],
                // Full-range u64s: the hex-string path must not lose bits.
                aux: vec![u64::MAX, 1, 0x8000_0000_0000_0001, 42],
            },
        }
    }

    #[test]
    fn render_parse_round_trips_bit_exactly() {
        let s = sample();
        let text = s.render();
        let back = SnapshotFile::parse(&text).unwrap();
        assert_eq!(s, back);
        assert!(text.contains("0xffffffffffffffff"), "aux rides as hex");
    }

    #[test]
    fn tampering_is_always_detected() {
        let text = sample().render();
        // Payload bit flip (a state value).
        let bad = text.replace("\"states\": [0,1,2", "\"states\": [0,1,3");
        assert!(SnapshotFile::parse(&bad).unwrap_err().contains("checksum"));
        // Identity edit.
        let bad = text.replace("\"tenant\": \"alice\"", "\"tenant\": \"mallory\"");
        assert!(SnapshotFile::parse(&bad).unwrap_err().contains("checksum"));
        // Shock-flag edit (would re-arm or skip a shock on resume).
        let bad = text.replace("\"shock_applied\": false", "\"shock_applied\": true");
        assert!(SnapshotFile::parse(&bad).unwrap_err().contains("checksum"));
        // Truncation at every suffix length must never parse successfully.
        // (Losing only the trailing newline leaves the document complete,
        // so truncate from the trimmed body.)
        let body = text.trim_end();
        for cut in 1..body.len().min(200) {
            let truncated = &body[..body.len() - cut];
            assert!(
                SnapshotFile::parse(truncated).is_err(),
                "accepted a file truncated by {cut} bytes"
            );
        }
        // Unknown fields are schema drift even with a plausible checksum.
        let bad = text.replace("\"schema_version\": 1,", "\"schema_version\": 1, \"v\": 2,");
        assert!(SnapshotFile::parse(&bad)
            .unwrap_err()
            .contains("unknown field"));
    }

    #[test]
    fn seed_above_2_53_survives_the_hex_path() {
        let mut s = sample();
        s.engine.seed = (1 << 53) + 1; // would round to 2^53 as an f64
        s.spec.seed = 7;
        let back = SnapshotFile::parse(&s.render()).unwrap();
        assert_eq!(back.engine.seed, (1 << 53) + 1);
        assert_eq!(back.engine.aux, s.engine.aux);
    }
}
