//! End-to-end tests for the serve loop: two-tenant fairness and
//! interleaving, the snapshot/stop/resume cycle (bit-exact on a
//! slicing-invariant tier), and every fail-closed exit-2 path.

use pp_bench::schema::{parse, Value};
use pp_serve::server::{run, Config};
use pp_serve::wire::validate_event;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Routes every envelope the tests produce into one scratch directory
/// (process-wide: `PP_BENCH_DIR` is read by `write_json` at done-time),
/// and pins a 4-thread pool so multi-tenant rounds really fan out to
/// workers even on a single-core runner. Every test calls this (via
/// `drive`) before the server touches the pool, so the `OnceLock`-backed
/// `pool::parallelism()` always observes the override.
fn bench_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pp_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("PP_BENCH_DIR", &dir);
        std::env::set_var("PP_POOL_THREADS", "4");
        dir
    })
}

fn scratch_file(name: &str) -> PathBuf {
    bench_dir().join(name)
}

/// Runs the server over the given request lines and returns
/// `(exit_code, validated_event_docs)`.
fn drive(requests: &str, quantum: u64) -> (i32, Vec<Value>) {
    bench_dir();
    let mut out = Vec::new();
    let code = run(
        Cursor::new(requests.to_string()),
        &mut out,
        Config { quantum },
    );
    let text = String::from_utf8(out).unwrap();
    let mut events = Vec::new();
    for line in text.lines() {
        let doc = parse(line).unwrap_or_else(|e| panic!("unparseable event `{line}`: {e}"));
        validate_event(&doc).unwrap_or_else(|e| panic!("invalid event `{line}`: {e}"));
        events.push(doc);
    }
    (code, events)
}

fn kind(ev: &Value) -> &str {
    ev.get("event").and_then(Value::as_str).unwrap()
}

fn str_of<'a>(ev: &'a Value, key: &str) -> &'a str {
    ev.get(key).and_then(Value::as_str).unwrap()
}

fn u64_of(ev: &Value, key: &str) -> u64 {
    ev.get(key).and_then(Value::as_f64).unwrap() as u64
}

fn counts_of(ev: &Value) -> Vec<u64> {
    ev.get("class_counts")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|c| c.as_f64().unwrap() as u64)
        .collect()
}

fn submit(tenant: &str, job: &str, spec: &str) -> String {
    format!(
        "{{\"schema_version\":1,\"op\":\"submit\",\"tenant\":\"{tenant}\",\
         \"job\":\"{job}\",\"spec\":{spec}}}\n"
    )
}

fn torus_spec(engine: &str, steps: u64, observe: u64, shock: &str) -> String {
    format!(
        "{{\"protocol\":\"diversification\",\"weights\":[1.0,1.0,2.0],\
         \"topology\":\"torus\",\"rows\":8,\"cols\":8,\"n\":64,\
         \"engine\":\"{engine}\",\"seed\":11,\"steps\":{steps},\
         \"observe_every\":{observe},\"init\":\"balanced\",\"shock\":{shock}}}"
    )
}

fn complete_spec(engine: &str, n: usize, steps: u64, observe: u64) -> String {
    format!(
        "{{\"protocol\":\"diversification\",\"weights\":[1.0,2.0],\
         \"topology\":\"complete\",\"n\":{n},\"engine\":\"{engine}\",\"seed\":22,\
         \"steps\":{steps},\"observe_every\":{observe},\"init\":\"single_minority\",\
         \"shock\":null}}"
    )
}

#[test]
fn two_tenants_interleave_and_the_slower_gets_at_least_40_percent() {
    // Steps are large enough that neither job can finish inside the
    // reader thread's submission-delivery latency (see the parallel
    // rounds test below for the same caveat).
    let requests = format!(
        "{}{}",
        submit(
            "alpha",
            "grid",
            &torus_spec("turbo", 2_000_000, 32_768, "null")
        ),
        submit(
            "beta",
            "dense-run",
            &complete_spec("dense", 200, 2_000_000, 32_768)
        ),
    );
    let (code, events) = drive(&requests, 1024);
    assert_eq!(code, 0, "clean EOF drain");

    // Both tenants must show progress before either finishes.
    let first_done = events.iter().position(|e| kind(e) == "done").unwrap();
    let progressed: Vec<&str> = events[..first_done]
        .iter()
        .filter(|e| kind(e) == "progress")
        .map(|e| str_of(e, "tenant"))
        .collect();
    assert!(
        progressed.contains(&"alpha") && progressed.contains(&"beta"),
        "expected interleaved progress from both tenants, saw {progressed:?}"
    );

    // Fairness gate at the moment of first completion: the slower tenant
    // holds at least 40% of all granted steps.
    let done = &events[first_done];
    let (mine, total) = (u64_of(done, "tenant_steps"), u64_of(done, "total_steps"));
    let slower = mine.min(total - mine);
    assert!(
        slower * 100 >= total * 40,
        "slower tenant got {slower}/{total} steps (< 40%)"
    );

    // Population conservation in every observation (no shocks here).
    for ev in &events {
        match kind(ev) {
            "progress" | "done" => {
                let n = if str_of(ev, "tenant") == "alpha" {
                    64
                } else {
                    200
                };
                assert_eq!(counts_of(ev).iter().sum::<u64>(), n);
            }
            _ => {}
        }
    }

    // Both jobs finish and write validating envelopes.
    let dones: Vec<&Value> = events.iter().filter(|e| kind(e) == "done").collect();
    assert_eq!(dones.len(), 2);
    for done in dones {
        let bench = str_of(done, "bench");
        let json = std::fs::read_to_string(bench).unwrap();
        pp_bench::output::validate_json(&json).unwrap();
    }
    assert_eq!(kind(events.last().unwrap()), "shutdown");
}

#[test]
fn parallel_rounds_keep_fairness_and_stay_deterministic() {
    // The data plane executes each round's slices on pool workers
    // (4 threads here — see `bench_dir`). Three tenants on three
    // different slicing-invariant tiers check the contract from three
    // sides: the event stream is a pure function of the request stream
    // (two identical runs agree event-for-event), three-way fairness
    // holds at first completion, and co-tenancy leaves each engine's
    // trajectory untouched (the contended final counts equal a solo
    // run's, bit for bit).
    // Step counts are deliberately large: submissions arrive through the
    // reader thread *while rounds are already running*, so a job short
    // enough to finish in under a scheduler hiccup could complete before
    // its co-tenants even arrive. At 2M steps (tens of ms per job) the
    // arrival race is noise and the three-way contention window is wide.
    let specs = [
        (
            "alpha",
            "grid",
            torus_spec("turbo", 2_000_000, 32_768, "null"),
        ),
        (
            "beta",
            "shards",
            complete_spec("sharded", 128, 2_000_000, 32_768),
        ),
        (
            "gamma",
            "plain",
            complete_spec("packed", 96, 2_000_000, 32_768),
        ),
    ];
    let requests: String = specs
        .iter()
        .map(|(t, j, s)| submit(t, j, s))
        .collect::<Vec<_>>()
        .join("");
    // Per-tenant event history. The *interleaving across tenants* can
    // legitimately shift with submission-arrival timing (the reader
    // thread races the first rounds), but each tenant's own sequence of
    // observation clocks and class counts is a pure function of its spec
    // — worker scheduling inside a round must never show through.
    let essentials = |events: &[Value], tenant: &str| -> Vec<(String, u64, Vec<u64>)> {
        events
            .iter()
            .filter(|e| matches!(kind(e), "progress" | "done") && str_of(e, "tenant") == tenant)
            .map(|e| (kind(e).to_string(), u64_of(e, "clock"), counts_of(e)))
            .collect()
    };

    let (code, events) = drive(&requests, 1024);
    assert_eq!(code, 0);
    let (code, replay) = drive(&requests, 1024);
    assert_eq!(code, 0);
    for (tenant, _, _) in &specs {
        assert_eq!(
            essentials(&events, tenant),
            essentials(&replay, tenant),
            "tenant {tenant}: the event stream must not depend on worker scheduling"
        );
    }

    // All three tenants progress before the first completion, and the
    // first finisher holds no more than its fair share lets it: every
    // tenant stays at or above a quarter of the granted steps.
    let first_done = events.iter().position(|e| kind(e) == "done").unwrap();
    for (tenant, _, _) in &specs {
        assert!(
            events[..first_done]
                .iter()
                .any(|e| kind(e) == "progress" && str_of(e, "tenant") == *tenant),
            "tenant {tenant} showed no progress before the first done"
        );
    }
    let done = &events[first_done];
    let (mine, total) = (u64_of(done, "tenant_steps"), u64_of(done, "total_steps"));
    assert!(
        mine * 100 >= total * 25,
        "first finisher got {mine}/{total} steps (< 25% of three-way split)"
    );

    // Solo runs of the same jobs: identical final counts. (All three
    // tiers here are slicing-invariant, so co-tenancy must be invisible
    // to the trajectory.)
    for (tenant, job, spec) in &specs {
        let (code, solo) = drive(&submit(tenant, job, spec), 1024);
        assert_eq!(code, 0);
        let solo_done = solo.iter().find(|e| kind(e) == "done").unwrap();
        let contended_done = events
            .iter()
            .find(|e| kind(e) == "done" && str_of(e, "tenant") == *tenant)
            .unwrap();
        assert_eq!(
            counts_of(solo_done),
            counts_of(contended_done),
            "tenant {tenant}: co-tenancy perturbed the trajectory"
        );
    }
}

#[test]
fn snapshot_stop_resume_matches_the_uninterrupted_run_bit_for_bit() {
    // Turbo is slicing-invariant, so the resumed trajectory must equal the
    // uninterrupted one exactly — even though the resumed server slices
    // with a different quantum. A mid-run shock (fired before the
    // snapshot) checks that `shock_applied` rides the snapshot file.
    // The snapshot threshold sits millions of steps in so the request
    // always arrives (reader-thread latency) while the clock is still
    // below it.
    let spec = torus_spec(
        "turbo",
        8_000_000,
        2_000_000,
        "{\"kind\":\"inject_colour\",\"at\":7777}",
    );
    let snap_path = scratch_file("turbo_mid.ppsnap");
    let snap_str = snap_path.display().to_string();

    // Leg 1: run to the snapshot point, stop.
    let requests = format!(
        "{}{{\"schema_version\":1,\"op\":\"snapshot\",\"tenant\":\"solo\",\"job\":\"grid\",\
         \"path\":\"{snap_str}\",\"at\":4000000,\"stop\":true}}\n",
        submit("solo", "grid", &spec),
    );
    let (code, events) = drive(&requests, 2048);
    assert_eq!(code, 0);
    let snap_ev = events.iter().find(|e| kind(e) == "snapshot").unwrap();
    let snap_clock = u64_of(snap_ev, "clock");
    assert!(
        (4_000_000..4_020_000).contains(&snap_clock),
        "snapshot fires at the first slice boundary at or after 4000000, got {snap_clock}"
    );
    assert!(
        events.iter().any(|e| kind(e) == "shock"),
        "shock fired before snapshot"
    );
    assert!(
        !events.iter().any(|e| kind(e) == "done"),
        "job was stopped, not finished"
    );

    // Leg 2: resume in a fresh server with a different quantum.
    let requests = format!("{{\"schema_version\":1,\"op\":\"resume\",\"path\":\"{snap_str}\"}}\n");
    let (code, events) = drive(&requests, 512);
    assert_eq!(code, 0);
    let resumed = events.iter().find(|e| kind(e) == "resumed").unwrap();
    assert_eq!(u64_of(resumed, "clock"), snap_clock);
    let done = events.iter().find(|e| kind(e) == "done").unwrap();
    assert!(
        !events.iter().any(|e| kind(e) == "shock"),
        "a resumed post-shock job must not re-fire its shock"
    );
    let resumed_counts = counts_of(done);
    let resumed_clock = u64_of(done, "clock");

    // Leg 3: the uninterrupted control run.
    let (code, events) = drive(&submit("solo", "grid", &spec), 2048);
    assert_eq!(code, 0);
    let done = events.iter().find(|e| kind(e) == "done").unwrap();
    assert_eq!(u64_of(done, "clock"), resumed_clock);
    assert_eq!(counts_of(done), resumed_counts, "resume must be bit-exact");
}

#[test]
fn corrupted_and_truncated_snapshots_are_rejected_with_exit_2() {
    // A genuine snapshot to corrupt. The step target is effectively
    // unreachable so the job cannot complete before the reader thread
    // delivers the snapshot request — the run always ends via the
    // `stop: true` snapshot, never via `done`.
    let spec = torus_spec("packed", 100_000_000, 100_000_000, "null");
    let snap_path = scratch_file("to_corrupt.ppsnap");
    let snap_str = snap_path.display().to_string();
    let requests = format!(
        "{}{{\"schema_version\":1,\"op\":\"snapshot\",\"tenant\":\"t\",\"job\":\"j\",\
         \"path\":\"{snap_str}\",\"at\":1000,\"stop\":true}}\n",
        submit("t", "j", &spec),
    );
    let (code, _) = drive(&requests, 256);
    assert_eq!(code, 0);
    let good = std::fs::read_to_string(&snap_path).unwrap();

    let resume_req =
        |p: &str| format!("{{\"schema_version\":1,\"op\":\"resume\",\"path\":\"{p}\"}}\n");

    // Identity edit: checksum mismatch. (The replaced text must really
    // occur — a silent no-op would make this test vacuous.)
    assert!(good.contains("\"tenant\": \"t\""));
    let bad_path = scratch_file("corrupt.ppsnap");
    std::fs::write(
        &bad_path,
        good.replace("\"tenant\": \"t\"", "\"tenant\": \"u\""),
    )
    .unwrap();
    let (code, events) = drive(&resume_req(&bad_path.display().to_string()), 256);
    assert_eq!(code, 2, "corrupt snapshot must exit 2, never resume");
    assert!(events.iter().any(|e| kind(e) == "error"));

    // Truncated file: never parses.
    let trunc_path = scratch_file("truncated.ppsnap");
    std::fs::write(&trunc_path, &good[..good.len() / 2]).unwrap();
    let (code, events) = drive(&resume_req(&trunc_path.display().to_string()), 256);
    assert_eq!(code, 2);
    assert!(events.iter().any(|e| kind(e) == "error"));

    // Missing file: same fail-closed path.
    let (code, _) = drive(&resume_req("/nonexistent/nowhere.ppsnap"), 256);
    assert_eq!(code, 2);
}

#[test]
fn malformed_and_misdirected_requests_exit_2() {
    // Unparseable request line.
    let (code, events) = drive("{\"schema_version\":1,\"op\":\"reboot\"}\n", 256);
    assert_eq!(code, 2);
    assert!(events.iter().any(|e| kind(e) == "error"));

    // Snapshot of a job that was never submitted.
    let (code, events) = drive(
        "{\"schema_version\":1,\"op\":\"snapshot\",\"tenant\":\"ghost\",\"job\":\"x\",\
         \"path\":\"/tmp/x.ppsnap\",\"at\":5}\n",
        256,
    );
    assert_eq!(code, 2);
    assert!(events.iter().any(|e| kind(e) == "error"));

    // Duplicate submit of a live job. The first job's step target is
    // unreachable so it is still live when the duplicate arrives.
    let spec = complete_spec("agent", 32, 100_000_000, 100_000_000);
    let requests = format!(
        "{}{}",
        submit("t", "same", &spec),
        submit("t", "same", &spec)
    );
    let (code, _) = drive(&requests, 256);
    assert_eq!(code, 2);
}

#[test]
fn every_engine_tier_serves_a_job_to_completion() {
    for engine in ["agent", "packed", "turbo", "sharded", "vec", "dense"] {
        let spec = complete_spec(engine, 96, 3_000, 1_500);
        let (code, events) = drive(&submit("tier", engine, &spec), 512);
        assert_eq!(code, 0, "tier `{engine}` failed");
        let done = events.iter().find(|e| kind(e) == "done").unwrap();
        assert!(u64_of(done, "clock") >= 3_000);
        assert_eq!(counts_of(done).iter().sum::<u64>(), 96, "tier `{engine}`");
    }
}
