//! Every fenced JSON example in ARCHITECTURE.md must validate against
//! the real parsers — the documentation is part of the tested surface,
//! so a schema change that forgets the docs fails here.

use pp_bench::schema::{parse, Value};
use pp_serve::snapshot::SnapshotFile;
use pp_serve::wire::{validate_event, Request};

fn architecture_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ARCHITECTURE.md");
    std::fs::read_to_string(path).expect("ARCHITECTURE.md at the workspace root")
}

/// The ```json fenced blocks, in order.
fn json_blocks(text: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match &mut current {
            None if line.trim() == "```json" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_architecture_example_validates_against_its_schema() {
    let text = architecture_md();
    let blocks = json_blocks(&text);
    assert!(
        blocks.len() >= 10,
        "expected the full worked-example set, found {} blocks",
        blocks.len()
    );

    let (mut requests, mut events, mut snapshots, mut envelopes) = (0, 0, 0, 0);
    for (i, block) in blocks.iter().enumerate() {
        let doc = parse(block).unwrap_or_else(|e| panic!("example #{i} is not JSON: {e}"));
        if doc.get("op").is_some() {
            Request::from_doc(&doc)
                .unwrap_or_else(|e| panic!("request example #{i} rejected: {e}"));
            requests += 1;
        } else if doc.get("event").is_some() {
            validate_event(&doc).unwrap_or_else(|e| panic!("event example #{i} rejected: {e}"));
            events += 1;
        } else if doc.get("format").and_then(Value::as_str) == Some("pp-snapshot-v1") {
            // Full parse including the checksum: the printed example must
            // be a *genuine* snapshot, not hand-typed plausible JSON.
            SnapshotFile::parse(block)
                .unwrap_or_else(|e| panic!("snapshot example #{i} rejected: {e}"));
            snapshots += 1;
        } else if doc.get("columns").is_some() {
            pp_bench::output::validate_json(block)
                .unwrap_or_else(|e| panic!("envelope example #{i} rejected: {e}"));
            envelopes += 1;
        } else {
            panic!("example #{i} matches no documented schema: {block}");
        }
    }

    // One worked example per document kind, as the docs promise.
    assert!(requests >= 4, "submit/snapshot/resume/shutdown examples");
    assert!(
        events >= 5,
        "accepted/progress/snapshot/done/shutdown examples"
    );
    assert_eq!(snapshots, 1, "one genuine pp-snapshot-v1 example");
    assert_eq!(envelopes, 1, "one result-JSON v1 example");
}

#[test]
fn the_documented_exit_codes_are_the_real_constants() {
    let text = architecture_md();
    for (code, name) in [
        (0, "EXIT_OK"),
        (2, "EXIT_SCHEMA_ERROR"),
        (3, "EXIT_GATE_FAILURE"),
    ] {
        assert!(text.contains(name), "exit-code table must mention {name}");
        let actual = match name {
            "EXIT_OK" => pp_bench::output::EXIT_OK,
            "EXIT_SCHEMA_ERROR" => pp_bench::output::EXIT_SCHEMA_ERROR,
            _ => pp_bench::output::EXIT_GATE_FAILURE,
        };
        assert_eq!(code, actual, "{name} drifted from the documented value");
    }
}
