//! Integration tests for the result-JSON v1 contract:
//!
//! - property tests pushing hostile strings (control characters, quotes,
//!   backslashes, non-ASCII, astral planes) through the writer and back
//!   through the hand-rolled parser, asserting exact round-trips;
//! - a schema-conformance pass building an envelope for every experiment
//!   bin name through the real writer and validating each one.

use pp_bench::experiments::Report;
use pp_bench::output::{json_cell, result_json_v1, validate_json};
use pp_bench::schema::{self, Value};
use pp_stats::Table;
use proptest::prelude::*;

/// Every `run_bin` name in `crates/bench/src/bin/` — the conformance test
/// below must cover each envelope CI validates.
const BIN_NAMES: [&str; 19] = [
    "fig1_phases",
    "t1_convergence_n",
    "t2_convergence_w",
    "t3_diversity_error",
    "t4_phase3_error",
    "t5_fairness",
    "t6_sustainability",
    "t7_baselines",
    "t8_derandomised",
    "t9_markov",
    "t10_topologies",
    "t11_lower_bound",
    "t12_uniform_partition",
    "t13_stability",
    "t14_adversary",
    "t15_sbm_blocks",
    "ablations",
    "drift_lemmas",
    "throughput",
];

/// Arbitrary Unicode strings, surrogates excluded by `char::from_u32`.
fn any_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..32)
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
}

/// Strings drawn from the characters most likely to break a JSON escaper.
fn hostile_string() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> =
        "\"\\\n\r\t\u{0}\u{7}\u{1b}\u{7f}/<>&'\u{2028}\u{2029}é…🦀\u{10FFFF} a0."
            .chars()
            .collect();
    prop::collection::vec(0usize..alphabet.len(), 0..48)
        .prop_map(move |idxs| idxs.into_iter().map(|i| alphabet[i]).collect())
}

/// Builds an envelope carrying `s` in every string position (title, note,
/// param value, table cell), parses it back, and checks the round-trip.
fn assert_round_trips(s: &str) -> Result<(), TestCaseError> {
    let mut table = Table::new(["payload"]);
    table.row([s.to_string()]);
    // v1 requires a non-empty title, so the payload rides behind a prefix
    // there; notes, params, and cells carry it verbatim.
    let title = format!("t:{s}");
    let mut report = Report::new(&title, table);
    report.note(s);
    report.param("p", s);
    let json = result_json_v1("prop_round_trip", &report, "quick", 1.0, None);
    prop_assert!(
        validate_json(&json).is_ok(),
        "writer emitted invalid v1 for {s:?}: {:?}",
        validate_json(&json)
    );
    let doc = schema::parse(&json)
        .map_err(|e| TestCaseError::fail(format!("unparseable envelope for {s:?}: {e}")))?;
    prop_assert_eq!(
        doc.get("title").and_then(Value::as_str),
        Some(title.as_str())
    );
    prop_assert_eq!(
        doc.get("notes")
            .and_then(Value::as_arr)
            .and_then(|a| a[0].as_str()),
        Some(s)
    );
    // Cells and params are *typed* by the writer: numeric-looking text
    // becomes a JSON number, everything else must survive verbatim.
    let cell = &doc.get("rows").unwrap().as_arr().unwrap()[0]
        .as_arr()
        .unwrap()[0];
    let param = doc.get("params").unwrap().get("p").unwrap();
    for v in [cell, param] {
        match v {
            Value::Str(got) => prop_assert_eq!(got.as_str(), s),
            Value::Num(x) => {
                let expect: f64 = s.trim().parse().map_err(|_| {
                    TestCaseError::fail(format!("{s:?} typed as number {x} but does not parse"))
                })?;
                prop_assert_eq!(*x, expect);
            }
            other => prop_assert!(false, "cell for {s:?} became {other:?}"),
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn random_unicode_round_trips(s in any_string()) {
        assert_round_trips(&s)?;
    }

    #[test]
    fn hostile_characters_round_trip(s in hostile_string()) {
        assert_round_trips(&s)?;
    }

    #[test]
    fn typed_cells_agree_with_the_parser(s in hostile_string()) {
        // Whatever `json_cell` emits must be exactly one parseable JSON
        // value — no cell may corrupt the surrounding envelope.
        let rendered = json_cell(&s);
        let parsed = schema::parse(&rendered);
        prop_assert!(parsed.is_ok(), "json_cell({s:?}) = {rendered} unparseable");
    }
}

#[test]
fn every_bin_envelope_conforms_to_v1() {
    // The conformance pass: one envelope per experiment bin, through the
    // real writer, with the report shapes the bins actually produce
    // (engine set or defaulted, params, multi-line notes, typed cells).
    for (i, name) in BIN_NAMES.iter().enumerate() {
        let mut table = Table::new(["n", "engine", "value"]);
        table.row(["1000".to_string(), "dense".to_string(), "0.5".to_string()]);
        table.row(["-".to_string(), format!("{name} row"), "3.2e9".to_string()]);
        let mut report = Report::new(format!("conformance sweep for {name}"), table);
        report.note(format!("bin #{i}: line one\nline two"));
        report.param("seed", 100 + i);
        if i % 2 == 0 {
            report.set_engine("multi");
        }
        if i % 3 == 0 {
            report.set_steps_per_sec(1.25e9);
        }
        let json = result_json_v1(name, &report, "quick", 7.5, None);
        validate_json(&json)
            .unwrap_or_else(|e| panic!("bin `{name}` envelope failed v1 validation: {e}"));
        let doc = schema::parse(&json).unwrap();
        assert_eq!(doc.get("name").and_then(Value::as_str), Some(*name));
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_f64),
            Some(1.0),
            "bin `{name}` must stamp schema_version 1"
        );
    }
}

#[test]
fn recorder_dump_embeds_and_validates() {
    // The recorder's own JSON must compose with the envelope: record through
    // the always-compiled API, embed the dump, and validate the result.
    pp_obs::reset();
    pp_obs::counter_add("it.counter", 3);
    pp_obs::record_value("it.hist", 17);
    pp_obs::event("it.event", "tag", "detail with \"quotes\" and \\slashes\\");
    let dump = pp_obs::dump().to_json();
    let mut table = Table::new(["k"]);
    table.row(["v"]);
    let report = Report::new("recorder embed", table);
    let json = result_json_v1("it_recorder", &report, "full", 2.0, Some(&dump));
    validate_json(&json).expect("envelope with embedded recorder must validate");
    let doc = schema::parse(&json).unwrap();
    let recorder = doc.get("recorder").expect("recorder object present");
    assert_eq!(
        recorder
            .get("counters")
            .and_then(|c| c.get("it.counter"))
            .and_then(Value::as_f64),
        Some(3.0)
    );
    assert!(recorder
        .get("histograms")
        .and_then(|h| h.get("it.hist"))
        .is_some());
    pp_obs::reset();
}
