//! t16: the fail-closed model-check gate over the shipped protocols.
//!
//! Runs the bounded explorers from `pp-check` at small `n`: the full
//! Diversification gate on the complete graph (exhaustive count space +
//! dense rate/boundary agreement + tier reachability + shock invariants),
//! the per-agent explorer on the cycle, and the Voter baseline on both.
//! With `inject = true` the known-bad [`BuggedDiversification`] runs too,
//! and the gate must fail with a counterexample trace — that is the CI
//! `check-smoke` job's negative control.
//!
//! The returned flag is `true` when any check failed (violations found or
//! exploration truncated); the `t16_model_check` bin turns it into process
//! exit code 3 ([`crate::output::EXIT_GATE_FAILURE`]).

use super::Report;
use crate::runner::Preset;
use pp_baselines::Voter;
use pp_check::{
    all_dark_balanced_words, check_agents, check_counts, gate_diversification_complete,
    population_conserved, support_never_grows, sustainability, BuggedDiversification, CheckReport,
};
use pp_core::{Diversification, Weights};
use pp_graph::Cycle;
use pp_stats::Table;

/// State cap for every exploration; at the gate's population sizes the
/// reachable spaces are far smaller, so hitting this cap means something
/// is wrong (and the run fails closed).
const MAX_STATES: usize = 5_000_000;

/// Folds one check report into the table: a summary row, one row per
/// violation, and the first counterexample trace into the notes.
fn record(table: &mut Table, notes: &mut Vec<String>, report: &CheckReport, failed: &mut bool) {
    let verdict = if report.passed() { "pass" } else { "FAIL" };
    table.row([
        report.protocol.as_str(),
        report.topology.as_str(),
        &report.n.to_string(),
        "summary",
        &format!(
            "states={} edges={} truncated={} violations={} => {}",
            report.states_explored,
            report.edges,
            report.truncated,
            report.violations.len(),
            verdict
        ),
    ]);
    for v in &report.violations {
        table.row([
            report.protocol.as_str(),
            report.topology.as_str(),
            &report.n.to_string(),
            "violation",
            &format!("{} [{}]: {}", v.property, v.cause.tag(), v.detail),
        ]);
    }
    if let Some(v) = report.violations.iter().find(|v| !v.trace.is_empty()) {
        notes.push(format!(
            "counterexample ({} on {}, n={}, property {}):",
            report.protocol, report.topology, report.n, v.property
        ));
        for line in v.render_trace() {
            notes.push(format!("  {line}"));
        }
    }
    if !report.passed() {
        *failed = true;
    }
}

/// Runs the gate; returns the report plus whether any check failed.
pub fn run(preset: Preset, inject: bool) -> (Report, bool) {
    let weights = Weights::new(vec![1.0, 2.0]).expect("static weight table");
    let k = weights.len();
    let n_complete = preset.pick(10, 12) as u64;
    let n_cycle = preset.pick(7, 8);
    let n_voter = 12usize;
    let tier_steps = preset.pick(60, 200);

    let mut table = Table::new(["protocol", "topology", "n", "kind", "detail"]);
    let mut notes = Vec::new();
    let mut failed = false;

    // Full gate: count exploration + dense rates/boundaries + tier
    // reachability + shock invariants, all on the complete graph.
    let gate = gate_diversification_complete(
        &Diversification::new(weights.clone()),
        n_complete,
        MAX_STATES,
        tier_steps,
    );
    record(&mut table, &mut notes, &gate, &mut failed);

    // Per-agent exploration on a sparse topology: the cycle has no
    // count-based shortcut, so this walks the full labelled state space.
    let cycle_seed = all_dark_balanced_words(n_cycle, k);
    let cycle = check_agents(
        &Diversification::new(weights.clone()),
        &Cycle::new(n_cycle),
        &cycle_seed,
        2 * k as u32,
        1,
        &[population_conserved(n_cycle as u64), sustainability(k)],
        MAX_STATES,
    );
    record(&mut table, &mut notes, &cycle, &mut failed);

    // Voter baseline: support is monotone non-increasing (an extinct
    // colour never revives) on both explorers.
    let voter_counts = vec![n_voter as u64 / 3; 3];
    let voter_complete = check_counts(
        &Voter,
        &voter_counts,
        1,
        &[
            population_conserved(n_voter as u64),
            support_never_grows(&voter_counts),
        ],
        MAX_STATES,
    );
    record(&mut table, &mut notes, &voter_complete, &mut failed);

    let voter_words: Vec<u32> = (0..n_voter as u32).map(|i| i % 3).collect();
    let voter_cycle = check_agents(
        &Voter,
        &Cycle::new(n_voter),
        &voter_words,
        3,
        1,
        &[
            population_conserved(n_voter as u64),
            support_never_grows(&voter_counts),
        ],
        MAX_STATES,
    );
    record(&mut table, &mut notes, &voter_cycle, &mut failed);

    if inject {
        // Negative control: the rule-2 bug is bit-exact across tiers (the
        // statistical harness cannot reject it) but kills the last dark
        // agent in a corner the explorer reaches. The gate MUST fail here.
        notes.push("PP_CHECK_INJECT=1: running the known-bad protocol; a FAIL below is the expected outcome".to_string());
        let bugged = gate_diversification_complete(
            &BuggedDiversification::new(weights.clone()),
            n_complete,
            MAX_STATES,
            tier_steps,
        );
        record(&mut table, &mut notes, &bugged, &mut failed);
        if bugged.passed() {
            notes.push(
                "ERROR: the injected bug slipped through the gate — the checker itself is broken"
                    .to_string(),
            );
            failed = true;
        }
    }

    notes.push(format!(
        "fail-closed gate verdict: {}",
        if failed {
            "FAIL (exit 3, see counterexample above)"
        } else {
            "all properties verified on the full reachable set"
        }
    ));

    let mut report = Report::new(
        "t16_model_check: exhaustive small-n invariant explorer",
        table,
    );
    for n in notes {
        report.note(n);
    }
    report.set_engine("multi");
    report
        .param("n_complete", n_complete)
        .param("n_cycle", n_cycle)
        .param("n_voter", n_voter)
        .param("colours", k)
        .param("max_states", MAX_STATES)
        .param("inject", inject);
    (report, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_protocols_pass_the_gate() {
        let (report, failed) = run(Preset::Quick, false);
        assert!(!failed, "notes: {:?}", report.notes);
        // One summary row per check, no violation rows.
        assert_eq!(report.table.rows().len(), 4);
        assert!(report
            .table
            .rows()
            .iter()
            .all(|r| r[3] == "summary" && r[4].ends_with("=> pass")));
    }

    #[test]
    fn injected_bug_fails_the_gate_with_a_trace() {
        let (report, failed) = run(Preset::Quick, true);
        assert!(failed, "the injected bug must trip the gate");
        assert!(report
            .table
            .rows()
            .iter()
            .any(|r| r[0] == "bugged-diversification" && r[3] == "violation"));
        assert!(
            report.notes.iter().any(|n| n.contains("counterexample")),
            "the artifact must carry the counterexample trace"
        );
    }
}
