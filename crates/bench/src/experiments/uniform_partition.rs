//! `t12_uniform_partition` — the `w_i = 1` special case: Diversification
//! becomes a (shade-randomness-free) protocol for the uniform `k`-partition
//! problem of Yasumi et al., and the note below Eq. (2) observes the
//! softening coin disappears entirely. We measure how evenly the population
//! splits across `k` for growing `k`.

use crate::experiments::Report;
use crate::runner::Preset;
use pp_core::{init, ConfigStats, Diversification, Weights};
use pp_engine::{replicate, Simulator};
use pp_graph::Complete;
use pp_stats::{median, table::fmt_f64, Table};

/// Window-max of `max_i |C_i − n/k|` (absolute imbalance in agents).
pub fn window_imbalance(n: usize, k: usize, seed: u64) -> f64 {
    let weights = Weights::uniform(k);
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    sim.run(pp_core::theory::convergence_budget(n, k as f64, 4.0));
    let nln = n as f64 * (n as f64).ln();
    let target = n as f64 / k as f64;
    let mut worst: f64 = 0.0;
    sim.run_observed((2.0 * nln) as u64, (n as u64 / 2).max(1), |_, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        for i in 0..k {
            worst = worst.max((stats.colour_count(i) as f64 - target).abs());
        }
    });
    worst
}

/// Runs the sweep over `k`.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let n = preset.pick(512, 2_048);
    let ks: Vec<usize> = preset.pick(vec![2, 4, 8], vec![2, 4, 8, 16]);
    let seeds = preset.pick(3u64, 8u64);

    let mut table = Table::new([
        "k",
        "target n/k",
        "median max |C_i - n/k|",
        "imbalance / sqrt(n ln n)",
    ]);
    for &k in &ks {
        let imbalances = replicate(base_seed..base_seed + seeds, |s| window_imbalance(n, k, s));
        let med = median(&imbalances).expect("non-empty");
        let scale = (n as f64 * (n as f64).ln()).sqrt();
        table.row([
            k.to_string(),
            fmt_f64(n as f64 / k as f64),
            fmt_f64(med),
            fmt_f64(med / scale),
        ]);
    }

    let mut report = Report::new(format!("t12_uniform_partition (n = {n})"), table);
    report.note(
        "with unit weights the protocol solves the uniform k-partition problem (Yasumi et al.'s \
         objective) with sqrt(n log n)-scale imbalance — the Eq. (1) guarantee specialised to \
         w_i = 1, under random scheduling instead of their adversarial model.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced() {
        let imbalance = window_imbalance(512, 4, 7);
        // Fair share is 128; imbalance should be a small fraction of it.
        assert!(imbalance < 64.0, "imbalance {imbalance} vs share 128");
    }

    #[test]
    fn report_has_all_k_rows() {
        let report = run(Preset::Quick, 19);
        assert_eq!(report.table.num_rows(), 3);
    }
}
