//! `t6_sustainability` — Definition 1.1(3) plus the robustness claims:
//! colours never vanish on their own; adversarially injected colours take
//! root and the system recovers its fair shares; a *retired* colour stays
//! retired under Diversification but haunts the trivial global-sampling
//! protocol forever (the introduction's non-robustness argument).
//!
//! Every phase — the plain run *and* the shock/churn phases — runs on the
//! engine selected by `PP_ENGINE`, through the generic
//! [`Engine`](pp_engine::Engine) surface: the adversary suite itself is
//! engine-generic, so the whole experiment rides the dense tier by
//! default and any fast tier on request (no more falling back to the
//! agent engine for the mutating phases).

use crate::experiments::Report;
use crate::runner::{build_engine, EngineKind, Preset};
use pp_adversary::{apply, error_under_churn, recovery_time, Shock};
use pp_baselines::TrivialProportional;
use pp_core::{
    packed::config_stats_from_class_counts, region::GoodSet, AgentState, Colour, Weights,
};
use pp_engine::Simulator;
use pp_graph::Complete;
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(300, 1_200);
    // Universe of 5 colours; colour 4 is initially ABSENT (the adversary
    // will inject it), so fair shares are computed over the 4 live ones.
    let weights = Weights::new(vec![1.0, 1.0, 1.0, 1.0, 1.0]).expect("static table");
    let k = weights.len();
    let mut counts = [n / 4, n / 4, n / 4, n / 4, 0];
    counts[0] += n - counts.iter().sum::<usize>();
    let states: Vec<AgentState> = counts
        .iter()
        .enumerate()
        .flat_map(|(i, &c)| std::iter::repeat_n(AgentState::dark(Colour::new(i)), c))
        .collect();
    let engine = EngineKind::from_env();
    let mut sim = build_engine(engine, &weights, states, seed);
    let mut shock_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut table = Table::new(["event", "outcome"]);
    let mut report_notes = Vec::new();

    // Phase A: plain run — live colours never vanish, absent colour never
    // appears (the start has zero supporters of colour 4; its adoption
    // rate is exactly zero on every tier).
    let mut min_live_dark = usize::MAX;
    let burn = pp_core::theory::convergence_budget(n, 4.0, 4.0);
    let mut resurrect = false;
    sim.run_observed(burn, n as u64, &mut |_, class_counts| {
        let stats = config_stats_from_class_counts(class_counts, k);
        for i in 0..4 {
            min_live_dark = min_live_dark.min(stats.dark_count(i));
        }
        resurrect |= stats.colour_count(4) > 0;
    });
    table.row([
        format!("phase A: plain run ({} engine)", engine.name()),
        format!(
            "min dark support of live colours = {min_live_dark} (never 0); absent colour appeared: {resurrect}"
        ),
    ]);
    report_notes.push(format!(
        "sustainability of live colours {}",
        if min_live_dark >= 1 {
            "holds"
        } else {
            "VIOLATED"
        }
    ));

    // Phase B: inject colour 4 dark and measure recovery into E(δ) over all
    // 5 — on the same engine, through the generic adversary suite.
    let good = GoodSet::new(weights.clone(), 0.35);
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 64.0);
    let rec = recovery_time(
        &mut *sim,
        &Shock::InjectColour {
            colour: Colour::new(4),
            recruits: (n / 10).max(2),
        },
        &good,
        &mut shock_rng,
        budget,
        n as u64 / 2,
    );
    let nln = n as f64 * (n as f64).ln();
    table.row([
        "phase B: inject colour 4 (dark)".to_string(),
        match rec {
            Some(t) => format!(
                "recovered into E(0.35) after {t} steps = {} n ln n",
                fmt_f64(t as f64 / nln)
            ),
            None => "did NOT recover within budget".to_string(),
        },
    ]);
    report_notes.push(format!(
        "robust recovery after colour injection {}",
        if rec.is_some() { "holds" } else { "VIOLATED" }
    ));

    // Phase C: retire colour 0 (all supporters become colour 1). Under
    // Diversification the retired colour must stay extinct.
    apply(
        &Shock::RetireColour {
            colour: Colour::new(0),
            replacement: Colour::new(1),
        },
        &mut *sim,
        &mut shock_rng,
    );
    let mut resurrected = false;
    sim.run_observed((10.0 * nln) as u64, n as u64, &mut |_, class_counts| {
        let stats = config_stats_from_class_counts(class_counts, k);
        resurrected |= stats.colour_count(0) > 0;
    });
    table.row([
        "phase C: retire colour 0 (Diversification)".to_string(),
        format!("retired colour resurrected: {resurrected} (should be false)"),
    ]);
    report_notes.push(format!(
        "retired colour stays retired under Diversification: {}",
        if resurrected { "VIOLATED" } else { "holds" }
    ));

    // Phase D: the same retirement under the trivial proportional protocol —
    // it keeps resampling the dead colour (the intro's non-robustness).
    // TrivialProportional has no fast-path encoding, so this contrast
    // phase stays on the generic engine regardless of PP_ENGINE.
    let trivial_weights = Weights::new(vec![1.0, 1.0, 1.0, 1.0]).expect("static");
    let trivial_states: Vec<Colour> = (0..n).map(|u| Colour::new(1 + (u % 3))).collect();
    let mut trivial_sim = Simulator::new(
        TrivialProportional::new(trivial_weights),
        Complete::new(n),
        trivial_states,
        seed.wrapping_add(7),
    );
    trivial_sim.run((2.0 * nln) as u64);
    let dead_support = trivial_sim
        .population()
        .count_matching(|&c| c == Colour::new(0));
    table.row([
        "phase D: colour 0 retired (TrivialProportional)".to_string(),
        format!("dead colour's support after run = {dead_support} (> 0: agents keep wasting work on it)"),
    ]);
    report_notes.push(format!(
        "trivial protocol resurrects retired colours (non-robustness): {}",
        if dead_support > 0 {
            "demonstrated"
        } else {
            "NOT demonstrated"
        }
    ));

    // Phase E: sustained churn — one random agent reset per interval; the
    // dynamic-equilibrium error grows with the churn rate but diversity and
    // sustainability survive. Same engine tier as the rest of the phases.
    {
        let churn_weights = Weights::uniform(4);
        let m = preset.pick(300, 1_200);
        let converged = || {
            let states = pp_core::init::all_dark_balanced(m, &churn_weights);
            let mut sim = build_engine(engine, &churn_weights, states, seed.wrapping_add(9));
            sim.run(pp_core::theory::convergence_budget(m, 4.0, 4.0));
            sim
        };
        let horizon = (20.0 * m as f64 * (m as f64).ln()) as u64;
        let mut fast_rng = StdRng::seed_from_u64(seed.wrapping_add(10));
        let mut slow_rng = StdRng::seed_from_u64(seed.wrapping_add(10));
        let mut fast_sim = converged();
        let mut slow_sim = converged();
        let fast = error_under_churn(
            &mut *fast_sim,
            &churn_weights,
            ((m / 100).max(2)) as u64,
            horizon,
            &mut fast_rng,
        );
        let slow = error_under_churn(
            &mut *slow_sim,
            &churn_weights,
            (10 * m) as u64,
            horizon,
            &mut slow_rng,
        );
        table.row([
            "phase E: sustained churn".to_string(),
            format!(
                "mean diversity error: {} at 1 reset per n/100 steps vs {} at 1 per 10n steps (both diverse)",
                fmt_f64(fast),
                fmt_f64(slow)
            ),
        ]);
        report_notes.push(format!(
            "diversity persists under sustained churn, degrading gracefully with rate: {}",
            if fast < 0.5 && slow <= fast + 0.02 {
                "holds"
            } else {
                "VIOLATED"
            }
        ));
    }

    let mut report = Report::new(
        format!(
            "t6_sustainability (n = {n}, universe k = 5, {} engine end-to-end)",
            engine.name()
        ),
        table,
    );
    for note in report_notes {
        report.note(note);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_robustness_claims_hold() {
        let report = run(Preset::Quick, 31);
        let text = report.render();
        assert!(
            !text.contains("VIOLATED"),
            "robustness claim violated:\n{text}"
        );
        assert!(text.contains("demonstrated"), "{text}");
    }
}
