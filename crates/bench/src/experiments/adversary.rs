//! `t14_adversary` — the robustness claims measured systematically:
//! recovery time per **shock type × engine tier**, plus the churn
//! dynamic-equilibrium error per tier.
//!
//! t6 demonstrates each robustness claim once, on the env-selected
//! engine; this bin is the grid the `Engine` refactor makes a one-line
//! combination — every shock from `pp-adversary` on every tier (generic,
//! dense, packed, turbo, sharded, vec) through the same generic code path,
//! with no per-engine arms anywhere. Cross-tier agreement of these rows
//! is itself a coarse equivalence check on the adversary fast path (the
//! fine-grained one is `tests/adversary_equivalence.rs`).

use crate::experiments::Report;
use crate::runner::{build_engine, build_graph_engine, EngineKind, Preset, ALL_ENGINES};
use pp_adversary::{error_under_churn, recovery_time, Shock};
use pp_core::{
    init, packed::config_stats_from_class_counts, region::GoodSet, AgentState, Colour, Weights,
};
use pp_graph::{Complete, Cycle, Topology, Torus2d};
use pp_stats::{median, table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One converged engine of the given tier (balanced all-dark start, Thm
/// 1.3 budget), ready to be shocked.
fn converged(kind: EngineKind, n: usize, weights: &Weights, seed: u64) -> crate::runner::DivEngine {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = build_engine(kind, weights, states, seed);
    sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));
    sim
}

/// One converged packed-tier engine on an arbitrary topology (sparse
/// families mix slower than the complete graph, so the burn-in budget is
/// the caller's).
fn converged_on<T>(topo: T, weights: &Weights, seed: u64, burn_in: u64) -> crate::runner::DivEngine
where
    T: Topology + Clone + Send + Sync + 'static,
{
    let states = init::all_dark_balanced(topo.len(), weights);
    let mut sim = build_graph_engine(EngineKind::Packed, weights, topo, states, seed);
    sim.run(burn_in);
    sim
}

/// Runs the grid.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(300, 4_096);
    let seeds = preset.pick(2u64, 3);
    let weights = Weights::uniform(4);
    let good = GoodSet::new(weights.clone(), 0.35);
    let nln = n as f64 * (n as f64).ln();
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 64.0);

    let shocks: Vec<(&str, Shock)> = vec![
        (
            "inject colour 0 (n/10 dark)",
            Shock::InjectColour {
                colour: Colour::new(0),
                recruits: (n / 10).max(2),
            },
        ),
        (
            "add n/5 dark agents",
            Shock::AddAgents {
                count: n / 5,
                state: AgentState::dark(Colour::new(1)),
            },
        ),
        ("remove n/5 agents", Shock::RemoveAgents { count: n / 5 }),
    ];

    let mut table = Table::new(["engine", "measurement", "result"]);
    let mut notes = Vec::new();
    let mut all_recovered = true;

    for kind in ALL_ENGINES {
        for (label, shock) in &shocks {
            let times: Vec<f64> = (0..seeds)
                .map(|s| {
                    let mut sim = converged(kind, n, &weights, seed.wrapping_add(s));
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(100 + s));
                    recovery_time(&mut *sim, shock, &good, &mut rng, budget, n as u64 / 2)
                        .map(|t| t as f64)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            let med = median(&times).expect("non-empty");
            all_recovered &= med.is_finite();
            table.row([
                kind.name().to_string(),
                format!("recovery after {label}"),
                if med.is_finite() {
                    format!("{} n ln n (median of {seeds})", fmt_f64(med / nln))
                } else {
                    "did NOT recover within budget".to_string()
                },
            ]);
        }

        // Churn: dynamic-equilibrium error at a fast and a slow rate.
        let horizon = (20.0 * nln) as u64;
        let mut fast_rng = StdRng::seed_from_u64(seed.wrapping_add(200));
        let mut slow_rng = StdRng::seed_from_u64(seed.wrapping_add(200));
        let mut fast_sim = converged(kind, n, &weights, seed.wrapping_add(50));
        let mut slow_sim = converged(kind, n, &weights, seed.wrapping_add(50));
        let fast = error_under_churn(
            &mut *fast_sim,
            &weights,
            ((n / 100).max(2)) as u64,
            horizon,
            &mut fast_rng,
        );
        let slow = error_under_churn(
            &mut *slow_sim,
            &weights,
            (10 * n) as u64,
            horizon,
            &mut slow_rng,
        );
        table.row([
            kind.name().to_string(),
            "churn error (1 reset / n/100 steps vs 1 / 10n steps)".to_string(),
            format!("{} vs {}", fmt_f64(fast), fmt_f64(slow)),
        ]);
        if fast >= 0.5 || slow > fast + 0.05 {
            notes.push(format!(
                "{}: churn degradation out of expected order (fast {fast}, slow {slow})",
                kind.name()
            ));
        }
    }

    // Family × shock grid: the same shocks on the packed tier across
    // topology families. Resizing shocks (add/remove agents) have no
    // canonical meaning on fixed-size families (a torus has no "one more
    // agent" position) — `apply` panics there by design, so those grid
    // cells are skipped with a note rather than measured.
    let (rows2d, cols2d) = preset.pick((15, 20), (64, 64));
    assert_eq!(rows2d * cols2d, n, "torus dimensions must multiply to n");
    let sparse_burn_in = pp_core::theory::convergence_budget(n, weights.total(), 64.0);
    let sparse_budget = pp_core::theory::convergence_budget(n, weights.total(), 256.0);
    type MakeEngine<'a> = Box<dyn Fn(u64) -> crate::runner::DivEngine + 'a>;
    let families: Vec<(&str, bool, MakeEngine)> = vec![
        (
            "complete",
            true,
            Box::new(|s| converged_on(Complete::new(n), &weights, s, sparse_burn_in)),
        ),
        (
            "cycle",
            true,
            Box::new(|s| converged_on(Cycle::new(n), &weights, s, sparse_burn_in)),
        ),
        (
            "torus2d",
            false,
            Box::new(|s| converged_on(Torus2d::new(rows2d, cols2d), &weights, s, sparse_burn_in)),
        ),
    ];
    for (family, resizable, make) in &families {
        for (label, shock) in &shocks {
            if shock.resizes() && !resizable {
                table.row([
                    format!("packed@{family}"),
                    format!("recovery after {label}"),
                    "skipped".to_string(),
                ]);
                notes.push(format!(
                    "packed@{family}: `{}` skipped — the shock resizes the population \
                     and the {family} family has no canonical resize",
                    shock.label()
                ));
                continue;
            }
            // The recovery target here is the diversity error (the t10
            // metric), not the mean-field GoodSet: a sparse family's
            // equilibrium shade split is its own (the cycle hovers near
            // all-dark, with lights reabsorbed locally), but the colour
            // fractions must still return to the weighted shares.
            let mut sim = make(seed.wrapping_add(300));
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(400));
            pp_adversary::apply(shock, &mut *sim, &mut rng);
            let start = sim.step_count();
            let k = weights.len();
            let t = sim
                .run_until(sparse_budget, n as u64 / 2, &mut |counts, _| {
                    config_stats_from_class_counts(counts, k).max_diversity_error(&weights) <= 0.35
                })
                .map(|hit| (hit - start) as f64)
                .unwrap_or(f64::INFINITY);
            all_recovered &= t.is_finite();
            table.row([
                format!("packed@{family}"),
                format!("recovery after {label}"),
                if t.is_finite() {
                    format!("{} n ln n", fmt_f64(t / nln))
                } else {
                    "did NOT recover within budget".to_string()
                },
            ]);
        }
    }

    let mut report = Report::new(
        format!(
            "t14_adversary (n = {n}, uniform k = 4, shocks × all 6 engine tiers \
             through the generic Engine path, plus shocks × topology families \
             on the packed tier)"
        ),
        table,
    );
    report.note(format!(
        "robust recovery on every tier: {}",
        if all_recovered { "holds" } else { "VIOLATED" }
    ));
    report.note(
        "every row runs the same generic adversary code (pp-adversary over the Engine \
         trait); tier choice is a constructor argument, not a code path.",
    );
    report.note(
        "family rows recover to diversity error <= 0.35 (the t10 metric) rather than \
         the mean-field good set: sparse families keep their own shade split (the \
         cycle hovers near all-dark), but colour fractions must still return to the \
         weighted shares.",
    );
    for n in notes {
        report.note(n);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tier_recovers_from_every_shock() {
        let report = run(Preset::Quick, 77);
        let text = report.render();
        assert!(
            text.contains("robust recovery on every tier: holds"),
            "{text}"
        );
        assert!(!text.contains("did NOT recover"), "{text}");
        // 6 engines × (3 shocks + 1 churn row) + 3 families × 3 shocks.
        assert_eq!(report.table.rows().len(), 33, "{text}");
    }

    #[test]
    fn resizing_shocks_are_skipped_on_fixed_families_with_a_note() {
        let report = run(Preset::Quick, 78);
        let skipped: Vec<_> = report
            .table
            .rows()
            .iter()
            .filter(|r| r[2] == "skipped")
            .collect();
        // Exactly the two resizing shocks on the torus; the cycle and
        // complete families support resize and measure all three.
        assert_eq!(skipped.len(), 2, "{:?}", report.table.rows());
        assert!(skipped.iter().all(|r| r[0] == "packed@torus2d"));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("no canonical resize")));
    }
}
