//! `t5_fairness` — Theorem 2.12: over a long window each agent holds colour
//! `i` a `(1 ± o(1))·w_i/w` fraction of the time.
//!
//! We track the exact per-agent occupancy of every colour at two horizons;
//! fairness predicts the worst per-agent deviation shrinks as the horizon
//! grows (the `o(1)` in the theorem).
//!
//! Occupancy tracking needs **stable per-agent identity**, which every
//! tier except the count-based dense engine provides; under the dense
//! default, `PP_ENGINE` is mapped to the packed fast path
//! ([`EngineKind::per_agent`]) and the report notes the tier that ran.
//! The tracker streams each snapshot straight out of the engine
//! ([`FairnessTracker::record_engine`]) — no per-snapshot allocation.

use crate::experiments::Report;
use crate::runner::{build_engine, EngineKind, Preset};
use pp_core::{init, FairnessTracker, Weights};
use pp_stats::{table::fmt_f64, Table};

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(128, 512);
    let weights = Weights::new(vec![1.0, 1.0, 2.0]).expect("static table");
    let k = weights.len();
    let engine = EngineKind::from_env().per_agent();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = build_engine(engine, &weights, states, seed);
    // Burn in past the Theorem 1.3 budget.
    sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));

    let nln = n as f64 * (n as f64).ln();
    let horizons: Vec<u64> = preset.pick(
        vec![(20.0 * nln) as u64, (200.0 * nln) as u64],
        vec![(50.0 * nln) as u64, (500.0 * nln) as u64],
    );

    let mut table = Table::new([
        "horizon (steps)",
        "snapshots",
        "max_u,i |occ - w_i/w|",
        "mean_u max_i |occ - w_i/w|",
        "agent0 occupancies",
    ]);
    let mut deviations = Vec::new();
    let mut tracker = FairnessTracker::new(n, k);
    let mut recorded: u64 = 0;
    for &horizon in &horizons {
        // Extend the same run to the next horizon (occupancies accumulate).
        let stride = n as u64;
        while recorded * stride < horizon {
            sim.run(stride);
            tracker.record_engine(&*sim);
            recorded += 1;
        }
        let max_dev = tracker.max_deviation(&weights);
        let mean_dev = tracker.mean_deviation(&weights);
        let occ0: Vec<String> = (0..k).map(|i| fmt_f64(tracker.occupancy(0, i))).collect();
        table.row([
            horizon.to_string(),
            tracker.snapshots().to_string(),
            fmt_f64(max_dev),
            fmt_f64(mean_dev),
            occ0.join("/"),
        ]);
        deviations.push(max_dev);
    }

    let mut report = Report::new(
        format!(
            "t5_fairness (n = {n}, weights = (1,1,2), fair shares 0.25/0.25/0.5, \
             {} engine)",
            engine.name()
        ),
        table,
    );
    if deviations.len() >= 2 {
        let first = deviations[0];
        let last = *deviations.last().expect("non-empty");
        report.note(format!(
            "deviation at the longest horizon {} the shortest ({} vs {}): the o(1) trend {}",
            if last <= first { "is below" } else { "exceeds" },
            fmt_f64(last),
            fmt_f64(first),
            if last <= first {
                "holds"
            } else {
                "is violated"
            },
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_shrinks_with_horizon() {
        let report = run(Preset::Quick, 5);
        assert!(
            report.notes.iter().any(|n| n.contains("holds")),
            "fairness o(1) trend violated:\n{}",
            report.render()
        );
    }

    #[test]
    fn occupancies_near_fair_share() {
        let report = run(Preset::Quick, 6);
        // The longest-horizon max deviation should be well under the
        // trivial bound of max fair share (0.5).
        let text = report.render();
        let last_row = text.lines().rfind(|l| l.contains('/')).expect("data row");
        let max_dev: f64 = last_row
            .split_whitespace()
            .nth(2)
            .and_then(|s| s.parse().ok())
            .expect("max deviation cell");
        assert!(max_dev < 0.3, "max deviation {max_dev}:\n{text}");
    }
}
