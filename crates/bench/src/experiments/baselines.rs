//! `t7_baselines` — the paper's framing claim: consensus protocols destroy
//! diversity, Diversification sustains it.
//!
//! For each protocol we measure the number of steps until the **first**
//! colour goes extinct, starting from a balanced `k`-colour configuration.
//! Voter / 2-Choices / 3-Majority lose a colour quickly (they are built to);
//! Diversification and Anti-Voter never do — their rows report the censored
//! budget. This is the "crossover" table: who preserves diversity, by an
//! unbounded factor.

use crate::experiments::Report;
use crate::runner::Preset;
use pp_baselines::{AntiVoter, ThreeMajority, TwoChoices, Voter};
use pp_core::{init, Colour, ConfigStats, Diversification, Weights};
use pp_engine::{replicate, Protocol, Simulator};
use pp_graph::Complete;
use pp_stats::{median, table::fmt_f64, Table};

/// Steps until the first of `k` colours has zero support, or `None` if all
/// colours survive the whole `budget`.
fn extinction_time<P>(protocol: P, n: usize, k: usize, seed: u64, budget: u64) -> Option<u64>
where
    P: Protocol<State = Colour>,
{
    let states: Vec<Colour> = (0..n).map(|u| Colour::new(u % k)).collect();
    let mut sim = Simulator::new(protocol, Complete::new(n), states, seed);
    sim.run_until(budget, (n as u64 / 2).max(1), |pop, _| {
        let counts = pop.count_by(|&c| c);
        (0..k).any(|i| !counts.contains_key(&Colour::new(i)))
    })
}

/// Steps until the first colour extinction under Diversification (which the
/// dynamics make impossible); returns `None` (censored) unless the paper's
/// guarantee is somehow violated.
fn diversification_extinction(n: usize, k: usize, seed: u64, budget: u64) -> Option<u64> {
    let weights = Weights::uniform(k);
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights),
        Complete::new(n),
        states,
        seed,
    );
    sim.run_until(budget, (n as u64 / 2).max(1), |pop, _| {
        let stats = ConfigStats::from_states(pop.states(), k);
        (0..k).any(|i| stats.colour_count(i) == 0)
    })
}

/// Runs the comparison.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let n = preset.pick(256, 1_024);
    let k = 4;
    let seeds = preset.pick(3u64, 10u64);
    let nf = n as f64;
    // Voter needs Θ(n²) steps; give everyone the same generous budget.
    let budget = (20.0 * nf * nf) as u64;

    let mut table = Table::new([
        "protocol",
        "median extinction (steps)",
        "in units n ln n",
        "verdict",
    ]);

    let mut add_row = |name: &str, times: Vec<Option<u64>>| {
        let survived = times.iter().filter(|t| t.is_none()).count();
        let finite: Vec<f64> = times.iter().flatten().map(|&t| t as f64).collect();
        let nln = nf * nf.ln();
        if survived == times.len() {
            table.row([
                name.to_string(),
                format!("> {budget} (all {survived} seeds censored)"),
                format!("> {}", fmt_f64(budget as f64 / nln)),
                "diversity sustained".to_string(),
            ]);
        } else {
            let med = median(&finite).expect("some finite");
            table.row([
                name.to_string(),
                fmt_f64(med),
                fmt_f64(med / nln),
                format!("first colour dies ({}/{} seeds)", finite.len(), times.len()),
            ]);
        }
    };

    add_row(
        "voter",
        replicate(base_seed..base_seed + seeds, |s| {
            extinction_time(Voter, n, k, s, budget)
        }),
    );
    add_row(
        "2-choices",
        replicate(base_seed..base_seed + seeds, |s| {
            extinction_time(TwoChoices, n, k, s, budget)
        }),
    );
    add_row(
        "3-majority",
        replicate(base_seed..base_seed + seeds, |s| {
            extinction_time(ThreeMajority, n, k, s, budget)
        }),
    );
    add_row(
        "anti-voter (k=2)",
        replicate(base_seed..base_seed + seeds, |s| {
            extinction_time(AntiVoter, n, 2, s, budget)
        }),
    );
    add_row(
        "diversification",
        replicate(base_seed..base_seed + seeds, |s| {
            diversification_extinction(n, k, s, budget)
        }),
    );

    let mut report = Report::new(
        format!("t7_baselines (n = {n}, k = {k}, budget = 20 n^2 steps)"),
        table,
    );
    report.note(
        "shape check: every consensus protocol loses a colour within the budget; \
         Diversification (and Anti-Voter, the k = 2 special case) never does — \
         the crossover the paper's introduction claims.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_kills_diversification_sustains() {
        let report = run(Preset::Quick, 41);
        let text = report.render();
        // Diversification row must be censored.
        let div_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("diversification"))
            .expect("diversification row");
        assert!(div_row.contains("sustained"), "{text}");
        // Voter row must be finite.
        let voter_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("voter"))
            .expect("voter row");
        assert!(voter_row.contains("dies"), "{text}");
    }

    #[test]
    fn two_choices_faster_than_voter() {
        // 2-Choices amplifies drift; its extinction time should not exceed
        // Voter's by much. We check both are finite at small n.
        let t_voter = extinction_time(Voter, 128, 4, 5, 2_000_000);
        let t_two = extinction_time(TwoChoices, 128, 4, 5, 2_000_000);
        assert!(t_voter.is_some() && t_two.is_some());
    }
}
