//! `t10_topologies` — the future-work question: how does Diversification
//! behave beyond the complete graph?
//!
//! Same protocol, same budget (`30·n·ln n` steps), different interaction
//! graphs. The paper's analysis needs the complete graph; the expectation
//! (and the measured shape) is that well-mixing graphs (complete, dense ER,
//! random-regular, torus) stay close to the fair share while the cycle —
//! diameter `n/2` — lags far behind at equal budget.

use crate::experiments::Report;
use crate::runner::{standard_weights, Preset};
use pp_core::{init, ConfigStats, Diversification};
use pp_engine::Simulator;
use pp_graph::{
    erdos_renyi, random_regular, watts_strogatz, Complete, Cycle, Hypercube, Topology, Torus2d,
};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Window-max diversity error on an arbitrary topology after a fixed budget.
fn error_on(topology: Box<dyn Topology>, seed: u64) -> f64 {
    let weights = standard_weights();
    let n = topology.len();
    let k = weights.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        topology,
        states,
        seed,
    );
    let nln = n as f64 * (n as f64).ln();
    sim.run((30.0 * nln) as u64);
    let mut worst: f64 = 0.0;
    sim.run_observed((2.0 * nln) as u64, (n as u64 / 2).max(1), |_, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        worst = worst.max(stats.max_diversity_error(&weights));
    });
    worst
}

/// Runs the comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    let side = preset.pick(16usize, 32);
    let n = side * side; // 256 or 1024, a perfect square for the torus.
    let mut gen_rng = StdRng::seed_from_u64(seed.wrapping_add(100));

    let dim = (n as f64).log2() as u32; // n is a power of four, so exact.
    let topologies: Vec<Box<dyn Topology>> = vec![
        Box::new(Complete::new(n)),
        Box::new(random_regular(n, 8, &mut gen_rng)),
        Box::new(erdos_renyi(n, 16.0 / n as f64, &mut gen_rng)),
        Box::new(Hypercube::new(dim)),
        Box::new(watts_strogatz(n, 4, 0.1, &mut gen_rng)),
        Box::new(Torus2d::new(side, side)),
        Box::new(Cycle::new(n)),
    ];

    let mut table = Table::new(["topology", "window-max diversity error", "vs complete"]);
    let mut complete_err = None;
    let mut rows = Vec::new();
    for topology in topologies {
        let name = topology.name();
        let err = error_on(topology, seed);
        if name == "complete" {
            complete_err = Some(err);
        }
        rows.push((name, err));
    }
    let base = complete_err.expect("complete graph measured");
    for (name, err) in &rows {
        table.row([name.clone(), fmt_f64(*err), format!("{:.2}x", err / base)]);
    }

    let mut report = Report::new(
        format!("t10_topologies (n = {n}, weights = (1,1,2,4), budget = 30 n ln n)"),
        table,
    );
    let cycle_err = rows
        .iter()
        .find(|(name, _)| name == "cycle")
        .map(|&(_, e)| e)
        .expect("cycle measured");
    report.note(format!(
        "well-mixing graphs track the complete graph; the cycle lags by {:.1}x at equal budget \
         (diameter Θ(n) vs Θ(1)) — the trade-off the future-work section anticipates.",
        cycle_err / base
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_worst_complete_is_good() {
        let report = run(Preset::Quick, 13);
        let text = report.render();
        let value = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.trim_start().starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("row {name} missing:\n{text}"))
        };
        let complete = value("complete");
        let cycle = value("cycle");
        assert!(complete < 0.15, "complete graph error {complete}:\n{text}");
        assert!(
            cycle > complete,
            "cycle ({cycle}) should lag complete ({complete}):\n{text}"
        );
    }
}
