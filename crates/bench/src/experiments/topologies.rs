//! `t10_topologies` — the future-work question: how does Diversification
//! behave beyond the complete graph?
//!
//! Same protocol, same budget (`30·n·ln n` steps), different interaction
//! graphs. The paper's analysis needs the complete graph; the expectation
//! (and the measured shape) is that well-mixing graphs (complete, dense ER,
//! random-regular, torus, within-community SBM) stay close to the fair
//! share while the cycle — diameter `n/2` — lags far behind at equal
//! budget.
//!
//! Every family runs through the generic [`Engine`]
//! path: `PP_ENGINE` selects the tier (packed by default — the dense
//! complete-graph default maps to its per-agent sibling via
//! [`EngineKind::per_agent`]), and the whole (family × seed) grid is
//! scheduled through one work-stealing pool ([`sweep_grid`]). The packed
//! tier lifts the comparison from the generic engine's `n = 1024` ceiling
//! to `n = 65 536` at full preset.

use crate::experiments::Report;
use crate::runner::{build_graph_engine, standard_weights, EngineKind, Preset};
use pp_core::{init, packed::config_stats_from_class_counts, AgentState, Weights};
use pp_engine::{sweep_grid, Engine};
use pp_graph::{
    erdos_renyi, random_regular, watts_strogatz, Complete, Csr, Cycle, Hypercube, Topology, Torus2d,
};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One topology family instance, concrete so every simulation below is
/// fully monomorphized (no `Box<dyn Topology>` in the hot path).
#[derive(Debug, Clone)]
enum FastTopo {
    Complete(Complete),
    Csr(Csr),
    Hypercube(Hypercube),
    Torus(Torus2d),
    Cycle(Cycle),
}

impl FastTopo {
    fn name(&self) -> String {
        match self {
            FastTopo::Complete(t) => t.name(),
            FastTopo::Csr(t) => t.name(),
            FastTopo::Hypercube(t) => t.name(),
            FastTopo::Torus(t) => t.name(),
            FastTopo::Cycle(t) => t.name(),
        }
    }

    /// Window-max diversity error after the fixed budget, on whichever
    /// engine tier `PP_ENGINE` selects. The match below dispatches the
    /// *topology* (keeping each family monomorphized); the engine
    /// dispatch happens once, inside [`build_graph_engine`].
    fn error_on(&self, weights: &Weights, seed: u64) -> f64 {
        match self.clone() {
            FastTopo::Complete(t) => error_on_engine(t, weights, seed),
            FastTopo::Csr(t) => error_on_engine(t, weights, seed),
            FastTopo::Hypercube(t) => error_on_engine(t, weights, seed),
            FastTopo::Torus(t) => error_on_engine(t, weights, seed),
            FastTopo::Cycle(t) => error_on_engine(t, weights, seed),
        }
    }
}

/// Window-max diversity error after a `30·n·ln n` budget, sampled over a
/// `2·n·ln n` trailing window — one definition for every engine tier and
/// family, so a budget or observable change cannot drift between them.
fn windowed_error(sim: &mut dyn Engine<State = AgentState>, n: usize, weights: &Weights) -> f64 {
    let k = weights.len();
    let nln = n as f64 * (n as f64).ln();
    sim.run((30.0 * nln) as u64);
    let mut worst: f64 = 0.0;
    sim.run_observed(
        (2.0 * nln) as u64,
        (n as u64 / 2).max(1),
        &mut |_, counts| {
            let stats = config_stats_from_class_counts(counts, k);
            worst = worst.max(stats.max_diversity_error(weights));
        },
    );
    worst
}

/// [`windowed_error`] on a freshly built engine of the env-selected tier.
fn error_on_engine<T>(topology: T, weights: &Weights, seed: u64) -> f64
where
    T: Topology + Clone + Send + Sync + 'static,
{
    let kind = EngineKind::from_env().per_agent();
    let n = topology.len();
    let states = init::all_dark_balanced(n, weights);
    let mut sim = build_graph_engine(kind, weights, topology, states, seed);
    windowed_error(&mut *sim, n, weights)
}

/// Samples an ER graph with average degree `avg_deg`, retrying (with a
/// perturbed seed) until every node has a neighbour — at `n = 65 536` and
/// degree 16 an isolated node appears in ~1 run in 150, and an isolated
/// node cannot interact at all.
fn connected_enough_er(n: usize, avg_deg: f64, seed: u64) -> Csr {
    let p = avg_deg / n as f64;
    for attempt in 0..16 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt * 7919));
        let g = erdos_renyi(n, p, &mut rng);
        if g.min_degree() >= 1 {
            return g.to_csr().with_name(format!("er(avg deg={avg_deg})"));
        }
    }
    panic!("no isolated-node-free G({n}, {p}) sample in 16 attempts");
}

/// The eight families, at size `n = side²`. The SBM is t15's sampler
/// ([`crate::experiments::sbm::sample_sbm`]) — one set of community
/// parameters for both experiments.
fn build_families(side: usize, seed: u64) -> Vec<FastTopo> {
    let n = side * side;
    let mut gen_rng = StdRng::seed_from_u64(seed.wrapping_add(100));
    let dim = (n as f64).log2() as u32; // n is a power of four, so exact.
    vec![
        FastTopo::Complete(Complete::new(n)),
        FastTopo::Csr(random_regular(n, 8, &mut gen_rng).to_csr()),
        FastTopo::Csr(connected_enough_er(n, 16.0, seed)),
        FastTopo::Csr(crate::experiments::sbm::sample_sbm(n, seed)),
        FastTopo::Hypercube(Hypercube::new(dim)),
        FastTopo::Csr(watts_strogatz(n, 4, 0.1, &mut gen_rng).to_csr()),
        FastTopo::Torus(Torus2d::new(side, side)),
        FastTopo::Cycle(Cycle::new(n)),
    ]
}

/// Runs the comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    // Quick runs what used to be the *full* scale (n = 1024); full rides
    // the fast tiers up to n = 65 536.
    let side = preset.pick(32usize, 256);
    let n = side * side;
    let reps = preset.pick(2u64, 3);
    let weights = standard_weights();

    let families = build_families(side, seed);
    let seeds: Vec<u64> = (0..reps).map(|r| seed.wrapping_add(r)).collect();
    let grid = sweep_grid(families.len(), &seeds, |job, s| {
        families[job].error_on(&weights, s)
    });

    let mut table = Table::new([
        "topology",
        "window-max diversity error",
        "vs complete",
        "seeds",
    ]);
    let mut complete_err = None;
    let mut rows = Vec::new();
    for (family, errors) in families.iter().zip(&grid) {
        let name = family.name();
        let err = errors.iter().sum::<f64>() / errors.len() as f64;
        if name == "complete" {
            complete_err = Some(err);
        }
        rows.push((name, err));
    }
    let base = complete_err.expect("complete graph measured");
    for (name, err) in &rows {
        table.row([
            name.clone(),
            fmt_f64(*err),
            format!("{:.2}x", err / base),
            reps.to_string(),
        ]);
    }

    let kind = EngineKind::from_env().per_agent();
    let mut report = Report::new(
        format!(
            "t10_topologies (n = {n}, weights = (1,1,2,4), budget = 30 n ln n, \
             {} engine)",
            kind.name()
        ),
        table,
    );
    let cycle_err = rows
        .iter()
        .find(|(name, _)| name == "cycle")
        .map(|&(_, e)| e)
        .expect("cycle measured");
    report.note(format!(
        "well-mixing graphs track the complete graph; the cycle lags by {:.1}x at equal budget \
         (diameter Θ(n) vs Θ(1)) — the trade-off the future-work section anticipates.",
        cycle_err / base
    ));
    report.note(format!(
        "engine: {} via the generic Engine path (PP_ENGINE selects any tier), \
         {} (family × seed) runs through one work-stealing pool; \
         sbm nodes are community-contiguous so contiguous shards align with blocks.",
        kind.name(),
        families.len() as u64 * reps
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_worst_complete_is_good() {
        let report = run(Preset::Quick, 13);
        let text = report.render();
        let value = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.trim_start().starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("row {name} missing:\n{text}"))
        };
        let complete = value("complete");
        let cycle = value("cycle");
        assert!(complete < 0.15, "complete graph error {complete}:\n{text}");
        assert!(
            cycle > complete,
            "cycle ({cycle}) should lag complete ({complete}):\n{text}"
        );
        // The clustered SBM is well-mixing within blocks: globally it must
        // track the dense families, not the cycle.
        let sbm = value("sbm(blocks=4)");
        assert!(
            sbm < cycle,
            "sbm ({sbm}) should beat the cycle ({cycle}):\n{text}"
        );
    }

    #[test]
    fn er_retry_never_returns_isolated_nodes() {
        let g = connected_enough_er(256, 8.0, 3);
        assert!(g.min_degree() >= 1);
        assert_eq!(g.len(), 256);
    }

    #[test]
    fn sbm_family_is_contiguous_and_connected_enough() {
        let g = crate::experiments::sbm::sample_sbm(256, 3);
        assert!(g.min_degree() >= 1);
        assert_eq!(g.len(), 256);
        assert_eq!(g.preferred_partition(), pp_graph::PartitionKind::Contiguous);
    }
}
