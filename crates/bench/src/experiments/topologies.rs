//! `t10_topologies` — the future-work question: how does Diversification
//! behave beyond the complete graph?
//!
//! Same protocol, same budget (`30·n·ln n` steps), different interaction
//! graphs. The paper's analysis needs the complete graph; the expectation
//! (and the measured shape) is that well-mixing graphs (complete, dense ER,
//! random-regular, torus) stay close to the fair share while the cycle —
//! diameter `n/2` — lags far behind at equal budget.
//!
//! Runs on the packed fast path ([`PackedSimulator`]): random families are
//! lowered to [`Csr`], structured families stay arithmetic, and the whole
//! (family × seed) grid is scheduled through one work-stealing pool
//! ([`sweep_grid`]). That lifts the comparison from the generic engine's
//! `n = 1024` ceiling to `n = 65 536` at full preset.

use crate::experiments::Report;
use crate::runner::{standard_weights, EngineKind, Preset};
use pp_core::{init, packed::config_stats_from_packed, Diversification, Weights};
use pp_engine::{sweep_grid, PackedSimulator, ShardedSimulator};
use pp_graph::{
    erdos_renyi, random_regular, watts_strogatz, Complete, Csr, Cycle, Hypercube, Topology, Torus2d,
};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One topology family instance, concrete so every simulation below is
/// fully monomorphized (no `Box<dyn Topology>` in the hot path).
#[derive(Debug, Clone)]
enum FastTopo {
    Complete(Complete),
    Csr(Csr),
    Hypercube(Hypercube),
    Torus(Torus2d),
    Cycle(Cycle),
}

impl FastTopo {
    fn name(&self) -> String {
        match self {
            FastTopo::Complete(t) => t.name(),
            FastTopo::Csr(t) => t.name(),
            FastTopo::Hypercube(t) => t.name(),
            FastTopo::Torus(t) => t.name(),
            FastTopo::Cycle(t) => t.name(),
        }
    }

    /// Window-max diversity error after the fixed budget. Runs on the
    /// packed engine by default (dispatching once per *run*, not once per
    /// interaction); `PP_ENGINE=sharded` reroutes every family onto the
    /// graph-partitioned engine, which uses the machine's cores for each
    /// single run instead of only fanning seeds.
    fn error_on(&self, weights: &Weights, seed: u64) -> f64 {
        let sharded = EngineKind::from_env() == EngineKind::Sharded;
        match self.clone() {
            FastTopo::Complete(t) if sharded => error_on_sharded(t, weights, seed),
            FastTopo::Csr(t) if sharded => error_on_sharded(t, weights, seed),
            FastTopo::Hypercube(t) if sharded => error_on_sharded(t, weights, seed),
            FastTopo::Torus(t) if sharded => error_on_sharded(t, weights, seed),
            FastTopo::Cycle(t) if sharded => error_on_sharded(t, weights, seed),
            FastTopo::Complete(t) => error_on_packed(t, weights, seed),
            FastTopo::Csr(t) => error_on_packed(t, weights, seed),
            FastTopo::Hypercube(t) => error_on_packed(t, weights, seed),
            FastTopo::Torus(t) => error_on_packed(t, weights, seed),
            FastTopo::Cycle(t) => error_on_packed(t, weights, seed),
        }
    }
}

/// The engine surface the shared budget/window driver needs; implemented
/// for both fast-tier engines so the experiment's burn-in, window, and
/// stride live in exactly one place ([`windowed_error`]).
trait ErrorEngine {
    fn burn(&mut self, steps: u64);
    fn observe(&mut self, steps: u64, stride: u64, f: &mut dyn FnMut(&[u32]));
}

impl<P: pp_engine::PackedProtocol, T: Topology> ErrorEngine for PackedSimulator<P, T> {
    fn burn(&mut self, steps: u64) {
        self.run(steps);
    }

    fn observe(&mut self, steps: u64, stride: u64, f: &mut dyn FnMut(&[u32])) {
        self.run_observed(steps, stride, |_, packed| f(packed));
    }
}

impl<P: pp_engine::PackedProtocol, T: Topology> ErrorEngine for ShardedSimulator<P, T, u8> {
    fn burn(&mut self, steps: u64) {
        self.run(steps);
    }

    fn observe(&mut self, steps: u64, stride: u64, f: &mut dyn FnMut(&[u32])) {
        self.run_observed(steps, stride, |_, packed| f(packed));
    }
}

/// Window-max diversity error after a `30·n·ln n` budget, sampled over a
/// `2·n·ln n` trailing window — one definition shared by both engine
/// arms, so a budget or observable change cannot drift between them.
fn windowed_error(sim: &mut dyn ErrorEngine, n: usize, weights: &Weights) -> f64 {
    let k = weights.len();
    let nln = n as f64 * (n as f64).ln();
    sim.burn((30.0 * nln) as u64);
    let mut worst: f64 = 0.0;
    sim.observe((2.0 * nln) as u64, (n as u64 / 2).max(1), &mut |packed| {
        let stats = config_stats_from_packed(packed, k);
        worst = worst.max(stats.max_diversity_error(weights));
    });
    worst
}

/// [`windowed_error`] on the packed fast path.
fn error_on_packed<T: Topology>(topology: T, weights: &Weights, seed: u64) -> f64 {
    let n = topology.len();
    let states = init::all_dark_balanced(n, weights);
    let mut sim = PackedSimulator::new(
        Diversification::new(weights.clone()),
        topology,
        &states,
        seed,
    );
    windowed_error(&mut sim, n, weights)
}

/// [`windowed_error`] on the graph-partitioned engine (`u8` storage,
/// `k = 4` fits a byte): the same budget and window, multi-core per run.
fn error_on_sharded<T: Topology>(topology: T, weights: &Weights, seed: u64) -> f64 {
    let n = topology.len();
    let states = init::all_dark_balanced(n, weights);
    let mut sim = ShardedSimulator::<_, _, u8>::new(
        Diversification::new(weights.clone()),
        topology,
        &states,
        seed,
    );
    windowed_error(&mut sim, n, weights)
}

/// Samples an ER graph with average degree `avg_deg`, retrying (with a
/// perturbed seed) until every node has a neighbour — at `n = 65 536` and
/// degree 16 an isolated node appears in ~1 run in 150, and an isolated
/// node cannot interact at all.
fn connected_enough_er(n: usize, avg_deg: f64, seed: u64) -> Csr {
    let p = avg_deg / n as f64;
    for attempt in 0..16 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt * 7919));
        let g = erdos_renyi(n, p, &mut rng);
        if g.min_degree() >= 1 {
            return g.to_csr().with_name(format!("er(avg deg={avg_deg})"));
        }
    }
    panic!("no isolated-node-free G({n}, {p}) sample in 16 attempts");
}

/// The seven families, at size `n = side²`.
fn build_families(side: usize, seed: u64) -> Vec<FastTopo> {
    let n = side * side;
    let mut gen_rng = StdRng::seed_from_u64(seed.wrapping_add(100));
    let dim = (n as f64).log2() as u32; // n is a power of four, so exact.
    vec![
        FastTopo::Complete(Complete::new(n)),
        FastTopo::Csr(random_regular(n, 8, &mut gen_rng).to_csr()),
        FastTopo::Csr(connected_enough_er(n, 16.0, seed)),
        FastTopo::Hypercube(Hypercube::new(dim)),
        FastTopo::Csr(watts_strogatz(n, 4, 0.1, &mut gen_rng).to_csr()),
        FastTopo::Torus(Torus2d::new(side, side)),
        FastTopo::Cycle(Cycle::new(n)),
    ]
}

/// Runs the comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    // Quick now runs what used to be the *full* scale (n = 1024); full
    // rides the packed engine up to n = 65 536.
    let side = preset.pick(32usize, 256);
    let n = side * side;
    let reps = preset.pick(2u64, 3);
    let weights = standard_weights();

    let families = build_families(side, seed);
    let seeds: Vec<u64> = (0..reps).map(|r| seed.wrapping_add(r)).collect();
    let grid = sweep_grid(families.len(), &seeds, |job, s| {
        families[job].error_on(&weights, s)
    });

    let mut table = Table::new([
        "topology",
        "window-max diversity error",
        "vs complete",
        "seeds",
    ]);
    let mut complete_err = None;
    let mut rows = Vec::new();
    for (family, errors) in families.iter().zip(&grid) {
        let name = family.name();
        let err = errors.iter().sum::<f64>() / errors.len() as f64;
        if name == "complete" {
            complete_err = Some(err);
        }
        rows.push((name, err));
    }
    let base = complete_err.expect("complete graph measured");
    for (name, err) in &rows {
        table.row([
            name.clone(),
            fmt_f64(*err),
            format!("{:.2}x", err / base),
            reps.to_string(),
        ]);
    }

    let mut report = Report::new(
        format!(
            "t10_topologies (n = {n}, weights = (1,1,2,4), budget = 30 n ln n, \
             packed fast-path engine)"
        ),
        table,
    );
    let cycle_err = rows
        .iter()
        .find(|(name, _)| name == "cycle")
        .map(|&(_, e)| e)
        .expect("cycle measured");
    report.note(format!(
        "well-mixing graphs track the complete graph; the cycle lags by {:.1}x at equal budget \
         (diameter Θ(n) vs Θ(1)) — the trade-off the future-work section anticipates.",
        cycle_err / base
    ));
    let engine_note = if EngineKind::from_env() == EngineKind::Sharded {
        "ShardedSimulator (graph-partitioned multi-core, u8 states, PP_ENGINE=sharded)"
    } else {
        "PackedSimulator (u32 packed states, monomorphized per family, CSR for the random graphs)"
    };
    report.note(format!(
        "engine: {engine_note}, {} (family × seed) runs through one work-stealing pool.",
        families.len() as u64 * reps
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_worst_complete_is_good() {
        let report = run(Preset::Quick, 13);
        let text = report.render();
        let value = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.trim_start().starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("row {name} missing:\n{text}"))
        };
        let complete = value("complete");
        let cycle = value("cycle");
        assert!(complete < 0.15, "complete graph error {complete}:\n{text}");
        assert!(
            cycle > complete,
            "cycle ({cycle}) should lag complete ({complete}):\n{text}"
        );
    }

    #[test]
    fn er_retry_never_returns_isolated_nodes() {
        let g = connected_enough_er(256, 8.0, 3);
        assert!(g.min_degree() >= 1);
        assert_eq!(g.len(), 256);
    }
}
