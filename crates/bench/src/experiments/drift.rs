//! `drift_lemmas` — the contraction inequalities of Lemmas 2.9(1), 2.10(1)
//! and 4.1(1), checked with **exact** conditional drifts.
//!
//! Conditioned on a configuration, the one-step expected change of each
//! potential has a closed form (`pp_core::drift`). Along a real trajectory
//! from the adversarial start we tabulate, at log-spaced checkpoints,
//! the potential value and its exact drift, and estimate the contraction
//! coefficient `c₁` in
//!
//! ```text
//! E[Δφ] ≤ −c₁·φ/(n·w) + c₂.
//! ```
//!
//! The lemmas claim `c₁ > 0` with `c₂ = O(1)` inside the good set `E`; the
//! measured coefficients confirm both the sign and the `1/(n·w)` scale of
//! the contraction (the potentials halve every `O(w·n)` steps).

use crate::experiments::Report;
use crate::runner::{standard_weights, Preset};
use pp_core::drift::{expected_phi_drift, expected_psi_drift, expected_sigma_sq_drift};
use pp_core::region::GoodSet;
use pp_core::{init, phi, psi, sigma_sq, ConfigStats, Diversification};
use pp_engine::Simulator;
use pp_graph::Complete;
use pp_stats::{linear_fit, table::fmt_f64, Table};

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(1_024, 4_096);
    let weights = standard_weights();
    let k = weights.len();
    let w = weights.total();
    let states = init::all_dark_single_minority(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );

    // Convergence lands around 4·n·ln n (see t1), so an 8·n·ln n horizon
    // covers the whole decay plus the equilibrium regime.
    let horizon = (8.0 * n as f64 * (n as f64).ln()) as u64;
    let checkpoints = 24u64;
    let stride = horizon / checkpoints;

    let good = GoodSet::new(weights.clone(), 0.25);
    let mut table = Table::new([
        "step",
        "in E?",
        "phi",
        "E[dPhi] exact",
        "psi",
        "E[dPsi] exact",
        "sigma^2",
        "E[dSigma^2] exact",
    ]);
    // For the contraction fit: E[Δφ] against φ/(n·w).
    let mut phi_x = Vec::new();
    let mut phi_y = Vec::new();
    let mut psi_x = Vec::new();
    let mut psi_y = Vec::new();
    for _ in 0..checkpoints {
        sim.run(stride);
        let stats = ConfigStats::from_states(sim.population().states(), k);
        let in_e = good.contains(&stats);
        let (p, dp) = (phi(&stats, &weights), expected_phi_drift(&stats, &weights));
        let (s, ds) = (psi(&stats, &weights), expected_psi_drift(&stats, &weights));
        let (g, dg) = (
            sigma_sq(&stats, &weights),
            expected_sigma_sq_drift(&stats, &weights),
        );
        table.row([
            sim.step_count().to_string(),
            if in_e { "yes" } else { "no" }.to_string(),
            fmt_f64(p),
            fmt_f64(dp),
            fmt_f64(s),
            fmt_f64(ds),
            fmt_f64(g),
            fmt_f64(dg),
        ]);
        // Lemmas 2.9/2.10 assume the configuration lies in E; fit only there.
        if in_e {
            phi_x.push(p / (n as f64 * w));
            phi_y.push(dp);
            psi_x.push(s / (n as f64));
            psi_y.push(ds);
        }
    }

    let mut report = Report::new(
        format!("drift_lemmas (n = {n}, weights = (1,1,2,4), exact conditional drifts)"),
        table,
    );
    if let Some(fit) = linear_fit(&phi_x, &phi_y) {
        report.note(format!(
            "Lemma 2.9(1), fitted over in-E checkpoints only: E[dPhi] = {:.3} - {:.3}·phi/(n·w); contraction c1 = {:.3} (> 0 required), R^2 = {:.3}",
            fit.intercept, -fit.slope, -fit.slope, fit.r_squared
        ));
    }
    if let Some(fit) = linear_fit(&psi_x, &psi_y) {
        report.note(format!(
            "Lemma 2.10(1), fitted over in-E checkpoints only: E[dPsi] = {:.3} - {:.3}·psi/n; contraction c1 = {:.3} (> 0 required), R^2 = {:.3}",
            fit.intercept, -fit.slope, -fit.slope, fit.r_squared
        ));
    }
    report.note(
        "halving-time corollary: c1/(n·w) per-step contraction means the potentials halve \
         every O(w·n) steps, the rate Lemma 2.6 turns into the O(w·n·log n) phase length.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contraction(report: &Report, lemma: &str) -> f64 {
        let note = report
            .notes
            .iter()
            .find(|n| n.contains(lemma))
            .expect("lemma note");
        note.split("c1 = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable contraction")
    }

    #[test]
    fn phi_and_psi_contract() {
        let report = run(Preset::Quick, 7);
        assert!(
            contraction(&report, "Lemma 2.9") > 0.0,
            "phi contraction non-positive:\n{}",
            report.render()
        );
        assert!(
            contraction(&report, "Lemma 2.10") > 0.0,
            "psi contraction non-positive:\n{}",
            report.render()
        );
    }
}
