//! `t9_markov` — the §2.4 Markov-chain approximation behind the fairness
//! proof.
//!
//! After convergence we record one agent's `(colour, shade)` trajectory for
//! `T` global time-steps and compare it with the ideal equilibrium chain
//! `P`:
//!
//! 1. **occupancy**: the fraction of time in each of the `2k` states vs the
//!    exact stationary distribution `π` (Eqs. (18)–(19));
//! 2. **transitions**: the empirical transition frequencies vs the entries
//!    of `P` (Eq. (20) predicts per-entry error `err = O((log n/n)^{1/4})/n`
//!    — we report the max entry deviation scaled by `n`);
//! 3. **concentration**: the hit counts against the Theorem A.2 width.

use crate::experiments::Report;
use crate::runner::{converged_simulator, standard_weights, Preset};
use pp_core::checker::TrajectoryRecorder;
use pp_markov::{chernoff::chernoff_mc_width, mixing_time, IdealChain, Walk};
use pp_stats::{table::fmt_f64, Table};

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(256, 1_024);
    let weights = standard_weights();
    let k = weights.len();
    let mut sim = converged_simulator(n, &weights, seed);

    let steps: u64 = preset.pick(2_000_000, 10_000_000);
    let mut recorder = TrajectoryRecorder::new(0, k);
    recorder.record(sim.population().states());
    for _ in 0..steps {
        sim.step();
        recorder.record(sim.population().states());
    }
    let walk = Walk::from_states(recorder.into_states());

    let chain = IdealChain::new(weights.as_slice(), n);
    let pi = chain.exact_stationary();
    let occupancy = walk.occupancy(2 * k);
    let empirical = walk.empirical_transitions(2 * k);
    let ideal = chain.matrix();

    let mut table = Table::new(["state", "pi (exact)", "occupancy (measured)", "|diff|"]);
    let mut max_occ_err: f64 = 0.0;
    for i in 0..k {
        for (label, idx) in [("D", chain.dark(i)), ("L", chain.light(i))] {
            let diff = (occupancy[idx] - pi[idx]).abs();
            max_occ_err = max_occ_err.max(diff);
            table.row([
                format!("{label}{i} (w={})", weights.get(i)),
                fmt_f64(pi[idx]),
                fmt_f64(occupancy[idx]),
                fmt_f64(diff),
            ]);
        }
    }

    let mut max_trans_err: f64 = 0.0;
    for i in 0..2 * k {
        for j in 0..2 * k {
            max_trans_err = max_trans_err.max((empirical.prob(i, j) - ideal.prob(i, j)).abs());
        }
    }

    let mut report = Report::new(
        format!("t9_markov (n = {n}, weights = (1,1,2,4), T = {steps} steps, agent 0)"),
        table,
    );
    report.note(format!(
        "max occupancy deviation from pi: {} (fairness needs o(1))",
        fmt_f64(max_occ_err)
    ));
    report.note(format!(
        "max |empirical - P| transition entry: {} = {}/n; Eq. (20) allows err = (ln n/n)^(1/4)/n = {}/n",
        fmt_f64(max_trans_err),
        fmt_f64(max_trans_err * n as f64),
        fmt_f64(pp_core::theory::mc_approximation_error(n))
    ));
    // Theorem A.2 check on the heaviest dark state.
    let heavy = chain.dark(k - 1);
    if let Some(tmix) = mixing_time(ideal, 0.125, 200 * n) {
        let hits = walk.hit_counts(2 * k)[heavy] as f64;
        let expected = pi[heavy] * walk.len() as f64;
        let width = chernoff_mc_width(pi[heavy], walk.len() as u64, tmix as u64, n as u64, 2.0);
        report.note(format!(
            "Thm A.2 on D{} : |N - pi t| = {} <= width {} : {} (t_mix(1/8) = {tmix})",
            k - 1,
            fmt_f64((hits - expected).abs()),
            fmt_f64(width),
            if (hits - expected).abs() <= width {
                "holds"
            } else {
                "VIOLATED"
            },
        ));
    } else {
        report.note("mixing time not reached within cap (expected only for huge n)".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_close_to_stationary() {
        let report = run(Preset::Quick, 8);
        let note = report
            .notes
            .iter()
            .find(|n| n.contains("occupancy deviation"))
            .expect("occupancy note");
        let dev: f64 = note
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable deviation");
        assert!(
            dev < 0.08,
            "occupancy deviation {dev}:\n{}",
            report.render()
        );
    }

    #[test]
    fn chernoff_width_holds() {
        let report = run(Preset::Quick, 9);
        assert!(!report.render().contains("VIOLATED"), "{}", report.render());
    }
}
