//! `fig1_phases` — the phase timeline of Fig. 1.
//!
//! One run from the adversarial single-minority start; we locate the
//! milestones the analysis defines:
//!
//! * τ₁ — first entry into the multiplicative good set `E(δ)` (Thm 2.5);
//! * τ₂,₁ — `φ` first drops below `C·w·n·ln n` (Lemma 2.6);
//! * τ₂,₂ — `ψ` first drops below `C·w·n·ln n` (Lemma 2.7);
//! * τ₃ — `σ²` first drops below `C·n^{3/2}·√(ln n)` (Lemma 2.14);
//!
//! and report each in steps and in units of `n·ln n`. The paper predicts
//! all four are `O(w² n log n)` and occur in this order up to constants.

use crate::experiments::Report;
use crate::runner::{standard_weights, Preset};
use pp_core::{init, phi, psi, region::GoodSet, sigma_sq, ConfigStats, Diversification};
use pp_engine::Simulator;
use pp_graph::Complete;
use pp_stats::{table::fmt_f64, Table, TimeSeries};

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(2_048, 8_192);
    let weights = standard_weights();
    let k = weights.len();
    let w = weights.total();
    let states = init::all_dark_single_minority(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );

    let good = GoodSet::new(weights.clone(), 0.25);
    let horizon = pp_core::theory::convergence_budget(n, w, 8.0);
    let stride = (n as u64) / 2;

    let mut phi_ts = TimeSeries::new();
    let mut psi_ts = TimeSeries::new();
    let mut sigma_ts = TimeSeries::new();
    let mut violation_ts = TimeSeries::new();
    sim.run_observed(horizon, stride, |t, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        phi_ts.push(t, phi(&stats, &weights));
        psi_ts.push(t, psi(&stats, &weights));
        sigma_ts.push(t, sigma_sq(&stats, &weights));
        violation_ts.push(t, good.violation(&stats));
    });

    let nf = n as f64;
    let nln = nf * nf.ln();
    let pot_bound = pp_core::theory::potential_equilibrium_scale(n, w);
    let sigma_bound = nf.powf(1.5) * nf.ln().sqrt();

    let tau1 = violation_ts.settling_time_leq(0.0);
    let tau21 = phi_ts.settling_time_leq(pot_bound);
    let tau22 = psi_ts.settling_time_leq(pot_bound);
    let tau3 = sigma_ts.settling_time_leq(sigma_bound);

    let mut table = Table::new(["milestone", "bound reached", "steps", "steps/(n ln n)"]);
    for (name, bound, tau) in [
        (
            "tau1  (enter E(0.25), Thm 2.5)",
            "violation = 0".to_string(),
            tau1,
        ),
        (
            "tau2.1 (phi <= w n ln n, Lem 2.6)",
            format!("phi <= {}", fmt_f64(pot_bound)),
            tau21,
        ),
        (
            "tau2.2 (psi <= w n ln n, Lem 2.7)",
            format!("psi <= {}", fmt_f64(pot_bound)),
            tau22,
        ),
        (
            "tau3  (sigma^2 <= n^1.5 sqrt(ln n), Lem 2.14)",
            format!("sigma^2 <= {}", fmt_f64(sigma_bound)),
            tau3,
        ),
    ] {
        match tau {
            Some(t) => table.row([
                name.to_string(),
                bound,
                t.to_string(),
                fmt_f64(t as f64 / nln),
            ]),
            None => table.row([name.to_string(), bound, "not reached".into(), "-".into()]),
        };
    }

    let mut report = Report::new(
        format!("fig1_phases (n = {n}, w = {w}, seed = {seed})"),
        table,
    );

    // Potential decay series at log-spaced checkpoints — the "curve" of Fig. 1.
    let mut series = Table::new(["step", "phi", "psi", "sigma^2", "E-violation"]);
    let len = phi_ts.len();
    let mut idx = 0usize;
    while idx < len {
        let t = phi_ts.times()[idx];
        series.row([
            t.to_string(),
            fmt_f64(phi_ts.values()[idx]),
            fmt_f64(psi_ts.values()[idx]),
            fmt_f64(sigma_ts.values()[idx]),
            fmt_f64(violation_ts.values()[idx]),
        ]);
        idx = (idx * 2).max(idx + 1);
    }
    report.note(format!("decay series:\n{}", series.render()));

    if let (Some(t1), Some(t21), Some(t22)) = (tau1, tau21, tau22) {
        report.note(format!(
            "phase ordering tau1 <= tau2.1 <= tau2.2: {}",
            if t1 <= t21 && t21 <= t22 {
                "holds"
            } else {
                "violated (single-run noise)"
            }
        ));
    }
    if let Some(t3) = tau3 {
        report.note(format!(
            "all milestones within the O(w^2 n log n) budget: tau3/(w^2 n ln n) = {}",
            fmt_f64(t3 as f64 / (w * w * nln))
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_reaches_all_milestones() {
        let report = run(Preset::Quick, 11);
        let text = report.render();
        assert!(
            !text.contains("not reached"),
            "some milestone missed:\n{text}"
        );
        assert!(text.contains("tau3"));
    }
}
