//! `t3_diversity_error` — the `Õ(1/√n)` concentration of Eq. (1).
//!
//! After convergence, the worst deviation of any colour fraction from its
//! fair share, maximised over a whole observation window, should scale like
//! `sqrt(ln n / n)`: a log-log slope of about `−0.45 ± 0.1` against `n`.

use crate::experiments::{diversity_error_for_with, Report};
use crate::runner::{standard_weights, EngineKind, Preset};
use pp_engine::replicate;
use pp_stats::{loglog_fit, median, table::fmt_f64, Table};

/// Measures the windowed diversity error for one `(n, seed)` pair with the
/// engine selected by `PP_ENGINE` (dense by default — the topology is
/// `Complete`).
pub fn window_error(n: usize, seed: u64) -> f64 {
    window_error_with(EngineKind::from_env(), n, seed)
}

/// [`window_error`] with an explicit engine choice.
pub fn window_error_with(engine: EngineKind, n: usize, seed: u64) -> f64 {
    diversity_error_for_with(engine, n, &standard_weights(), seed)
}

/// Runs the sweep.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(
        vec![256, 512, 1_024, 2_048],
        vec![512, 1_024, 2_048, 4_096, 8_192, 16_384],
    );
    let seeds = preset.pick(3u64, 10u64);

    let mut table = Table::new([
        "n",
        "median max error",
        "error/sqrt(ln n / n)",
        "error*sqrt(n)",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let errors = replicate(base_seed..base_seed + seeds, |seed| window_error(n, seed));
        let med = median(&errors).expect("non-empty");
        let scale = pp_core::theory::diversity_error_scale(n);
        table.row([
            n.to_string(),
            fmt_f64(med),
            fmt_f64(med / scale),
            fmt_f64(med * (n as f64).sqrt()),
        ]);
        xs.push(n as f64);
        ys.push(med);
    }

    let mut report = Report::new(
        "t3_diversity_error (weights = (1,1,2,4))".to_string(),
        table,
    );
    if let Some(fit) = loglog_fit(&xs, &ys) {
        report.note(format!(
            "log-log fit of window-max error against n: slope = {:.3} (theory: -1/2 up to log factors), R^2 = {:.3}",
            fit.slope, fit.r_squared
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_shrinks_with_n() {
        let small = window_error(256, 5);
        let large = window_error(2_048, 5);
        assert!(
            large < small,
            "diversity error did not shrink: {small} -> {large}"
        );
    }

    #[test]
    fn slope_is_negative_half_ish() {
        let report = run(Preset::Quick, 3);
        let note = report.notes.first().expect("fit note");
        let slope: f64 = note
            .split("slope = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable slope");
        assert!(
            (-0.75..=-0.25).contains(&slope),
            "slope {slope} inconsistent with Õ(1/sqrt(n)):\n{}",
            report.render()
        );
    }
}
