//! `ablations` — knock out one design choice of Eq. (2) at a time (the
//! choices DESIGN.md §5 calls out) and measure what breaks:
//!
//! * **shade-blind adoption** (`AdoptAnyShade`): light agents copy light
//!   agents too. Measured outcome: the equilibrium is essentially unchanged
//!   (light agents are a thin slice whose colour mix already tracks the dark
//!   mix) — the rule matters for the proof's calibration argument, not for
//!   the equilibrium location;
//! * **weight-blind softening** (`ConstantFlip`): softening at a constant
//!   rate → the equilibrium collapses to the uniform partition and the
//!   heavy colour loses its extra share entirely.

use crate::experiments::Report;
use crate::runner::Preset;
use pp_baselines::{AdoptAnyShade, ConstantFlip};
use pp_core::{init, AgentState, ConfigStats, Diversification, Weights};
use pp_engine::{replicate, Protocol, Simulator};
use pp_graph::Complete;
use pp_stats::{median, table::fmt_f64, Table};

/// `(window-max diversity error, mean heavy-colour share)` for a protocol.
fn measure<P>(make: impl Fn() -> P, n: usize, weights: &Weights, seed: u64) -> (f64, f64)
where
    P: Protocol<State = AgentState>,
{
    let k = weights.len();
    let heavy = k - 1;
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(make(), Complete::new(n), states, seed);
    sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));
    let nln = n as f64 * (n as f64).ln();
    let mut worst: f64 = 0.0;
    let mut share_sum = 0.0;
    let mut samples = 0u32;
    sim.run_observed((2.0 * nln) as u64, (n as u64 / 2).max(1), |_, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        worst = worst.max(stats.max_diversity_error(weights));
        share_sum += stats.colour_fraction(heavy);
        samples += 1;
    });
    (worst, share_sum / samples as f64)
}

/// Runs the ablation comparison.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let n = preset.pick(512, 2_048);
    let weights = Weights::new(vec![1.0, 3.0]).expect("static table");
    let seeds = preset.pick(3u64, 8u64);
    let fair_heavy = weights.fair_share(1); // 0.75

    let mut table = Table::new([
        "variant",
        "median window err",
        "median heavy share (target 0.75)",
        "what broke",
    ]);

    let full: Vec<(f64, f64)> = replicate(base_seed..base_seed + seeds, |s| {
        measure(|| Diversification::new(weights.clone()), n, &weights, s)
    });
    let shade: Vec<(f64, f64)> = replicate(base_seed..base_seed + seeds, |s| {
        measure(|| AdoptAnyShade::new(weights.clone()), n, &weights, s)
    });
    let flip: Vec<(f64, f64)> = replicate(base_seed..base_seed + seeds, |s| {
        measure(|| ConstantFlip::new(0.5), n, &weights, s)
    });

    let med = |pairs: &[(f64, f64)], which: usize| -> f64 {
        let vals: Vec<f64> = pairs
            .iter()
            .map(|p| if which == 0 { p.0 } else { p.1 })
            .collect();
        median(&vals).expect("non-empty")
    };

    let (full_err, full_share) = (med(&full, 0), med(&full, 1));
    let (shade_err, shade_share) = (med(&shade, 0), med(&shade, 1));
    let (flip_err, flip_share) = (med(&flip, 0), med(&flip, 1));

    table.row([
        "diversification".to_string(),
        fmt_f64(full_err),
        fmt_f64(full_share),
        "-".to_string(),
    ]);
    table.row([
        "adopt-any-shade".to_string(),
        fmt_f64(shade_err),
        fmt_f64(shade_share),
        format!("err ratio {:.2}x vs full", shade_err / full_err),
    ]);
    table.row([
        "constant-flip(0.5)".to_string(),
        fmt_f64(flip_err),
        fmt_f64(flip_share),
        format!(
            "heavy colour lost {:.0}%-of-extra-share",
            100.0 * (fair_heavy - flip_share) / (fair_heavy - 0.5)
        ),
    ]);

    let mut report = Report::new(
        format!("ablations (n = {n}, weights = (1,3), heavy fair share 0.75)"),
        table,
    );
    report.note(
        "weight-inverse softening is the decisive ingredient: replacing 1/w_i with a constant \
         collapses the equilibrium to the uniform partition. Dark-only adoption (rule 1) turns \
         out to be non-critical for the equilibrium location in simulation — it is load-bearing \
         for the proof's adoption-rate calibration, not for where the process settles.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_flip_loses_the_weighted_share() {
        let report = run(Preset::Quick, 23);
        let text = report.render();
        let share_of = |name: &str| -> f64 {
            text.lines()
                .find(|l| l.trim_start().starts_with(name))
                .and_then(|l| l.split_whitespace().nth(2))
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("row {name}:\n{text}"))
        };
        let full = share_of("diversification ");
        let flip = share_of("constant-flip(0.5)");
        assert!(
            full > 0.65 && flip < 0.62,
            "full={full}, flip={flip}:\n{text}"
        );
    }
}
