//! One module per experiment; ids match DESIGN.md §4.

pub mod ablations;
pub mod adversary;
pub mod baselines;
pub mod convergence;
pub mod derandomised;
pub mod diversity;
pub mod drift;
pub mod fairness;
pub mod fig1;
pub mod lower_bound;
pub mod markov;
pub mod model_check;
pub mod phase3;
pub mod sbm;
pub mod stability;
pub mod sustainability;
pub mod topologies;
pub mod uniform_partition;

use crate::runner::EngineKind;
use pp_core::{packed::config_stats_from_class_counts, Weights};
use pp_stats::Table;

/// Post-convergence window-max diversity error of the randomised protocol
/// for an arbitrary weight table (shared by t3/t8/t10/t12), using the
/// engine selected by [`EngineKind::from_env`] (the topology here is always
/// `Complete`, so the dense engine is the default).
pub fn diversity_error_for(n: usize, weights: &Weights, seed: u64) -> f64 {
    diversity_error_for_with(EngineKind::from_env(), n, weights, seed)
}

/// [`diversity_error_for`] with an explicit engine choice — one generic
/// code path for every tier (the `Engine` trait's class-count observer).
pub fn diversity_error_for_with(engine: EngineKind, n: usize, weights: &Weights, seed: u64) -> f64 {
    let k = weights.len();
    let window = (2.0 * n as f64 * (n as f64).ln()) as u64;
    let stride = (n as u64 / 2).max(1);
    let mut worst: f64 = 0.0;
    let mut sim = crate::runner::converged_engine(engine, n, weights, seed);
    sim.run_observed(window, stride, &mut |_, counts| {
        let stats = config_stats_from_class_counts(counts, k);
        worst = worst.max(stats.max_diversity_error(weights));
    });
    worst
}

/// The output of one experiment: a titled table plus free-form notes
/// (fitted exponents, pass/fail verdicts, caveats).
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id and description, e.g. `t3_diversity_error`.
    pub title: String,
    /// The rows the experiment reports.
    pub table: Table,
    /// Derived observations (fits, verdicts).
    pub notes: Vec<String>,
    /// Engine tier the experiment ran on, when one engine is meaningful
    /// (multi-engine sweeps leave it `None` and name engines per row).
    pub engine: Option<String>,
    /// Topology/protocol parameters for the result-JSON `params` object;
    /// values are typed by the writer (numeric strings become numbers).
    pub params: Vec<(String, String)>,
    /// Aggregate step rate, when the experiment measures one (throughput).
    pub steps_per_sec: Option<f64>,
}

impl Report {
    /// Creates a report.
    pub fn new(title: impl Into<String>, table: Table) -> Self {
        Report {
            title: title.into(),
            table,
            notes: Vec::new(),
            engine: None,
            params: Vec::new(),
            steps_per_sec: None,
        }
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Records the engine tier this report ran on.
    pub fn set_engine(&mut self, engine: impl Into<String>) -> &mut Self {
        self.engine = Some(engine.into());
        self
    }

    /// Appends a `params` entry for the result-JSON envelope.
    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Records the aggregate step rate for the result-JSON envelope.
    pub fn set_steps_per_sec(&mut self, rate: f64) -> &mut Self {
        self.steps_per_sec = Some(rate);
        self
    }

    /// Renders title, table, and notes as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&self.table.render());
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Prints the report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_parts() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let mut r = Report::new("demo", t);
        r.note("slope = 1.0");
        let text = r.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("slope = 1.0"));
    }
}
