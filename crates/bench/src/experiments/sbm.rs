//! `t15_sbm_blocks` — does diversity hold *within* communities?
//!
//! The paper's guarantee is global: colour fractions over the whole
//! population track the fair shares. On a clustered interaction graph
//! (stochastic block model: dense within-community edges, sparse
//! cross-community edges) a global guarantee could hide per-community
//! segregation — block 1 all-red, block 2 all-blue, globally balanced.
//! This experiment measures the window-max diversity error **per block**
//! and compares it to the global error at the same budget.
//!
//! Node numbering is community-contiguous (the `stochastic_block_model`
//! constructor's contract), so the sharded tier's contiguous partition
//! aligns shards with blocks — the report records the cross-edge
//! fraction of the contiguous layout against the strided one, which is
//! the partitioner story the SBM exists to stress.

use crate::experiments::Report;
use crate::runner::{build_graph_engine, standard_weights, EngineKind, Preset};
use pp_core::{init, ConfigStats, Weights};
use pp_graph::{stochastic_block_model, Csr, Partition, PartitionKind};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of communities.
const BLOCKS: usize = 4;

/// Samples the SBM both experiments share (t10's family list reuses this
/// sampler, so the parameters cannot drift apart): `BLOCKS` near-equal
/// communities, within-degree ≈ 12, cross-degree ≈ 2, retried until no
/// node is isolated. Node numbering is block-contiguous, so
/// `Partition::contiguous` — the CSR default — aligns shards with
/// communities for the sharded tier.
pub(crate) fn sample_sbm(n: usize, seed: u64) -> Csr {
    let block = n / BLOCKS;
    let sizes = [block, block, block, n - 3 * block];
    let p_in = 12.0 / block as f64;
    let p_out = 2.0 / ((BLOCKS - 1) * block) as f64;
    for attempt in 0..16 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt * 7919));
        let g = stochastic_block_model(&sizes, p_in, p_out, &mut rng);
        if g.min_degree() >= 1 {
            return g.to_csr().with_name("sbm(blocks=4)".to_string());
        }
    }
    panic!("no isolated-node-free SBM sample in 16 attempts");
}

/// Per-block + global window-max diversity errors for one seed.
fn block_errors(n: usize, weights: &Weights, seed: u64) -> (Vec<f64>, f64) {
    let kind = EngineKind::from_env().per_agent();
    let k = weights.len();
    let block = n / BLOCKS;
    let topology = sample_sbm(n, seed);
    let states = init::all_dark_balanced(n, weights);
    let mut sim = build_graph_engine(kind, weights, topology, states, seed);

    let nln = n as f64 * (n as f64).ln();
    sim.run((30.0 * nln) as u64);

    let mut worst_block = vec![0.0f64; BLOCKS];
    let mut worst_global = 0.0f64;
    let window = (2.0 * nln) as u64;
    let stride = (n as u64 / 2).max(1);
    let mut done = 0u64;
    while done < window {
        let burst = stride.min(window - done);
        sim.run(burst);
        done += burst;
        // Per-block shaded tallies, streamed straight off the engine: the
        // block of agent `u` is `u / block` (community-contiguous
        // numbering).
        let mut dark = vec![vec![0usize; k]; BLOCKS];
        let mut light = vec![vec![0usize; k]; BLOCKS];
        sim.visit_states(&mut |u, s| {
            let b = (u / block).min(BLOCKS - 1);
            let i = s.colour.index();
            if s.shade.bit() == 1 {
                dark[b][i] += 1;
            } else {
                light[b][i] += 1;
            }
        });
        let mut global_dark = vec![0usize; k];
        let mut global_light = vec![0usize; k];
        for b in 0..BLOCKS {
            for i in 0..k {
                global_dark[i] += dark[b][i];
                global_light[i] += light[b][i];
            }
            let stats = ConfigStats::from_counts(dark[b].clone(), light[b].clone());
            worst_block[b] = worst_block[b].max(stats.max_diversity_error(weights));
        }
        let stats = ConfigStats::from_counts(global_dark, global_light);
        worst_global = worst_global.max(stats.max_diversity_error(weights));
    }
    (worst_block, worst_global)
}

/// Runs the experiment.
pub fn run(preset: Preset, seed: u64) -> Report {
    let n = preset.pick(4_096, 65_536);
    let reps = preset.pick(2u64, 3);
    let weights = standard_weights();
    let kind = EngineKind::from_env().per_agent();

    let mut block_worst = [0.0f64; BLOCKS];
    let mut block_sum = [0.0f64; BLOCKS];
    let mut global_sum = 0.0f64;
    for r in 0..reps {
        let (blocks, global) = block_errors(n, &weights, seed.wrapping_add(r));
        for (b, e) in blocks.iter().enumerate() {
            block_worst[b] = block_worst[b].max(*e);
            block_sum[b] += e;
        }
        global_sum += global;
    }
    let global_mean = global_sum / reps as f64;

    let mut table = Table::new([
        "region",
        "mean window-max error",
        "worst over seeds",
        "vs global",
    ]);
    for b in 0..BLOCKS {
        let mean = block_sum[b] / reps as f64;
        table.row([
            format!("block {b} (n/{BLOCKS} nodes)"),
            fmt_f64(mean),
            fmt_f64(block_worst[b]),
            format!("{:.2}x", mean / global_mean),
        ]);
    }
    table.row([
        "global".to_string(),
        fmt_f64(global_mean),
        "-".to_string(),
        "1.00x".to_string(),
    ]);

    // The partitioner story: contiguous shards align with blocks, so
    // their cut is (nearly) only the sparse cross-community edges, while
    // strided shards cut everything.
    let csr = sample_sbm(n, seed);
    let contiguous = Partition::new(n, BLOCKS, PartitionKind::Contiguous).cross_edge_fraction(&csr);
    let strided = Partition::new(n, BLOCKS, PartitionKind::Strided).cross_edge_fraction(&csr);

    let worst = block_worst.iter().cloned().fold(0.0f64, f64::max);
    let mut report = Report::new(
        format!(
            "t15_sbm_blocks (n = {n}, 4 equal communities, within-degree ~12, \
             cross-degree ~2, weights = (1,1,2,4), {} engine)",
            kind.name()
        ),
        table,
    );
    // A block holds n/4 agents, so its own √n floor is ~2× the global
    // one; within-block diversity "holds" if block errors stay near that
    // scaling rather than drifting to segregation (error ~ fair share).
    let max_share = 0.5; // largest fair share of (1,1,2,4)
    report.note(format!(
        "diversity within blocks {}: worst block error {} stays far from segregation \
         (error ≈ {max_share} if a block lost a colour) and within ~{:.1}x of the \
         global error ({}), consistent with the (n/4)^(-1/2) concentration floor.",
        if worst < 0.5 * max_share {
            "holds"
        } else {
            "is VIOLATED"
        },
        fmt_f64(worst),
        (worst / global_mean).ceil(),
        fmt_f64(global_mean),
    ));
    report.note(format!(
        "partition alignment: contiguous shards cut {} of edges vs {} for strided — \
         community-contiguous numbering is what lets Partition::contiguous see the blocks.",
        fmt_f64(contiguous),
        fmt_f64(strided),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diversity_holds_within_blocks() {
        let report = run(Preset::Quick, 23);
        let text = report.render();
        assert!(
            text.contains("diversity within blocks holds"),
            "within-block diversity violated:\n{text}"
        );
    }

    #[test]
    fn contiguous_partition_cuts_less_than_strided() {
        let csr = sample_sbm(1_024, 5);
        let contiguous =
            Partition::new(1_024, BLOCKS, PartitionKind::Contiguous).cross_edge_fraction(&csr);
        let strided =
            Partition::new(1_024, BLOCKS, PartitionKind::Strided).cross_edge_fraction(&csr);
        assert!(
            contiguous < strided / 2.0,
            "contiguous {contiguous} should cut far less than strided {strided}"
        );
    }
}
