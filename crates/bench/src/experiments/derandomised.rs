//! `t8_derandomised` — the grey-shade variant of §1.2, whose analysis the
//! paper leaves open. We measure its convergence time and equilibrium
//! quality side by side with the randomised protocol on the same integer
//! weights; empirically the two behave alike, supporting the paper's
//! conjecture that the derandomisation is benign.

use crate::experiments::Report;
use crate::runner::{convergence_time, Preset};
use pp_core::{
    init, region::GoodSet, ConfigStats, DerandomisedDiversification, IntWeights, Weights,
};
use pp_engine::{replicate, Simulator};
use pp_graph::Complete;
use pp_stats::{median, table::fmt_f64, Table};

/// Convergence time of the derandomised protocol into `E(δ)` from the
/// single-minority start (`ConfigStats` classifies any positive shade as
/// dark).
pub fn derandomised_convergence_time(
    n: usize,
    weights: &IntWeights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    let protocol = DerandomisedDiversification::new(weights.clone());
    let states = init::grey_single_minority(n, &protocol);
    let k = weights.len();
    let good = GoodSet::new(weights.to_weights(), delta);
    let mut sim = Simulator::new(protocol, Complete::new(n), states, seed);
    sim.run_until(max_steps, (n as u64 / 4).max(1), |pop, _| {
        good.contains(&ConfigStats::from_grey_states(pop.states(), k))
    })
}

/// Post-convergence window-max diversity error of the derandomised protocol.
pub fn derandomised_window_error(n: usize, weights: &IntWeights, seed: u64) -> f64 {
    let protocol = DerandomisedDiversification::new(weights.clone());
    let states = init::grey_balanced(n, &protocol);
    let k = weights.len();
    let real = weights.to_weights();
    let mut sim = Simulator::new(protocol, Complete::new(n), states, seed);
    sim.run(pp_core::theory::convergence_budget(n, real.total(), 4.0));
    let window = (2.0 * n as f64 * (n as f64).ln()) as u64;
    let mut worst: f64 = 0.0;
    sim.run_observed(window, (n as u64 / 2).max(1), |_, pop| {
        let stats = ConfigStats::from_grey_states(pop.states(), k);
        worst = worst.max(stats.max_diversity_error(&real));
    });
    worst
}

/// Runs the comparison.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(vec![256, 512, 1_024], vec![512, 1_024, 2_048, 4_096]);
    let seeds = preset.pick(3u64, 8u64);
    let int_weights = IntWeights::new(vec![1, 2, 4]).expect("static table");
    let real_weights: Weights = int_weights.to_weights();
    let delta = 0.25;

    let mut table = Table::new([
        "n",
        "randomised T",
        "derandomised T",
        "T ratio (der/rand)",
        "randomised window err",
        "derandomised window err",
    ]);
    for &n in &sizes {
        let budget = pp_core::theory::convergence_budget(n, real_weights.total(), 64.0);
        let rand_t = replicate(base_seed..base_seed + seeds, |s| {
            convergence_time(n, &real_weights, delta, s, budget)
                .map(|t| t as f64)
                .unwrap_or(budget as f64)
        });
        let der_t = replicate(base_seed..base_seed + seeds, |s| {
            derandomised_convergence_time(n, &int_weights, delta, s, budget)
                .map(|t| t as f64)
                .unwrap_or(budget as f64)
        });
        let rand_err = replicate(base_seed..base_seed + seeds, |s| {
            crate::experiments::diversity_error_for(n, &real_weights, s)
        });
        let der_err = replicate(base_seed..base_seed + seeds, |s| {
            derandomised_window_error(n, &int_weights, s)
        });
        let (mr, md) = (
            median(&rand_t).expect("non-empty"),
            median(&der_t).expect("non-empty"),
        );
        table.row([
            n.to_string(),
            fmt_f64(mr),
            fmt_f64(md),
            fmt_f64(md / mr),
            fmt_f64(median(&rand_err).expect("non-empty")),
            fmt_f64(median(&der_err).expect("non-empty")),
        ]);
    }

    let mut report = Report::new(
        "t8_derandomised (weights = (1,2,4); grey shades 0..=w_i)".to_string(),
        table,
    );
    report.note(
        "the open problem of §1.2: empirically the derandomised protocol converges within a \
         constant factor of the randomised one and reaches the same fair shares.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derandomised_converges() {
        let iw = IntWeights::new(vec![1, 2, 4]).unwrap();
        let budget = pp_core::theory::convergence_budget(256, 7.0, 64.0);
        let t = derandomised_convergence_time(256, &iw, 0.3, 3, budget);
        assert!(t.is_some(), "derandomised protocol failed to converge");
    }

    #[test]
    fn derandomised_equilibrium_matches_weights() {
        let iw = IntWeights::new(vec![1, 2, 4]).unwrap();
        let err = derandomised_window_error(512, &iw, 4);
        assert!(err < 0.15, "derandomised window error {err}");
    }
}
