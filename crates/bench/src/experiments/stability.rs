//! `t13_stability` — the second half of Theorem 2.5: once the process
//! enters the good set `E(δ)`, it stays there for a polynomially long
//! window, with exit probability `exp(−Ω(δ²·n/w³))`.
//!
//! The exponent matters: at small `n` (or heavy `w`) exits are *expected* —
//! `n/w³` is the scale at which the guarantee kicks in. So the experiment
//! uses uniform weights (`w = k = 4`) and reports, per `n`: the worst
//! relative deviation from the `E`-centre over a `min(n², 200·n·ln n)`-step
//! window, and the fraction of seeds that ever left `E(0.3)`. The theorem
//! predicts both shrink rapidly as `n` grows.

use crate::experiments::Report;
use crate::runner::Preset;
use pp_core::{init, region::GoodSet, ConfigStats, Diversification, Weights};
use pp_engine::{replicate, Simulator};
use pp_graph::Complete;
use pp_stats::{median, table::fmt_f64, Table};

/// One stability watch: returns the worst relative deviation from the
/// `E`-centre observed over the whole window (membership of `E(δ)` holds
/// iff this stays `≤ δ`).
pub fn worst_deviation(n: usize, seed: u64) -> f64 {
    let weights = Weights::uniform(4);
    let k = weights.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    sim.run(pp_core::theory::convergence_budget(n, weights.total(), 4.0));
    let good = GoodSet::new(weights, 0.3);
    let nf = n as f64;
    let window = ((nf * nf) as u64).min((200.0 * nf * nf.ln()) as u64);
    let mut worst: f64 = 0.0;
    sim.run_observed(window, (n as u64 / 2).max(1), |_, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        worst = worst.max(good.max_relative_deviation(&stats));
    });
    worst
}

/// Runs the sweep.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(vec![256, 512, 1_024], vec![512, 1_024, 2_048, 4_096]);
    let seeds = preset.pick(4u64, 10u64);
    let delta = 0.3;

    let mut table = Table::new([
        "n",
        "window (steps)",
        "median worst deviation",
        "seeds that left E(0.3)",
    ]);
    let mut worst_by_size = Vec::new();
    for &n in &sizes {
        let nf = n as f64;
        let window = ((nf * nf) as u64).min((200.0 * nf * nf.ln()) as u64);
        let devs = replicate(base_seed..base_seed + seeds, |s| worst_deviation(n, s));
        let exits = devs.iter().filter(|&&d| d > delta).count();
        let med = median(&devs).expect("non-empty");
        worst_by_size.push(med);
        table.row([
            n.to_string(),
            window.to_string(),
            fmt_f64(med),
            format!("{exits}/{seeds}"),
        ]);
    }

    let mut report = Report::new(
        format!("t13_stability (uniform w = 4, delta = {delta}, window = min(n^2, 200 n ln n))"),
        table,
    );
    let first = worst_by_size.first().copied().unwrap_or(0.0);
    let last = worst_by_size.last().copied().unwrap_or(0.0);
    report.note(format!(
        "Theorem 2.5 second half: the window-max deviation shrinks with n ({} -> {}), so the \
         exp(-Omega(delta^2 n/w^3)) exit probability vanishes — the polynomially-long stability \
         window, exercised at the n^2 scale (DESIGN.md section 3 explains the n^10 -> n^2 reduction).",
        fmt_f64(first),
        fmt_f64(last)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_shrinks_with_n() {
        let small = worst_deviation(256, 3);
        let large = worst_deviation(2_048, 3);
        assert!(
            large < small,
            "window-max deviation did not shrink: {small} -> {large}"
        );
    }

    #[test]
    fn large_n_stays_inside() {
        let dev = worst_deviation(2_048, 7);
        assert!(dev <= 0.3, "left E(0.3) at n = 2048: deviation {dev}");
    }
}
