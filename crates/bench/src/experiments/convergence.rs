//! `t1_convergence_n` / `t2_convergence_w` — the `O(w² n log n)`
//! convergence-time bound of Theorem 1.3, swept in `n` and in `w`.

use crate::experiments::Report;
use crate::runner::{convergence_time, standard_weights, Preset};
use pp_core::Weights;
use pp_engine::replicate;
use pp_stats::{loglog_fit, median, table::fmt_f64, Table};

/// `t1_convergence_n`: convergence time vs population size `n` at fixed
/// weights. Theorem 1.3 predicts `T = O(w² n log n)`, i.e. a log-log slope
/// of `≈ 1` against `n·ln n`.
pub fn run_n_sweep(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(
        vec![256, 512, 1_024, 2_048],
        vec![512, 1_024, 2_048, 4_096, 8_192, 16_384],
    );
    let seeds = preset.pick(3u64, 10u64);
    let weights = standard_weights();
    let w = weights.total();
    let delta = 0.25;

    let mut table = Table::new(["n", "seeds", "median T", "T/(n ln n)", "T/(w^2 n ln n)"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let budget = pp_core::theory::convergence_budget(n, w, 64.0);
        let times = replicate(base_seed..base_seed + seeds, |seed| {
            convergence_time(n, &weights, delta, seed, budget)
                .map(|t| t as f64)
                .unwrap_or(budget as f64)
        });
        let med = median(&times).expect("non-empty seeds");
        let nln = n as f64 * (n as f64).ln();
        table.row([
            n.to_string(),
            seeds.to_string(),
            fmt_f64(med),
            fmt_f64(med / nln),
            fmt_f64(med / (w * w * nln)),
        ]);
        xs.push(nln);
        ys.push(med);
    }

    let mut report = Report::new(
        format!("t1_convergence_n (weights = (1,1,2,4), delta = {delta})"),
        table,
    );
    if let Some(fit) = loglog_fit(&xs, &ys) {
        report.note(format!(
            "log-log fit of T against n·ln n: slope = {:.3} (theory: <= 1), R^2 = {:.3}",
            fit.slope, fit.r_squared
        ));
    }
    report
}

/// `t2_convergence_w`: convergence time vs total weight `w` at fixed `n`,
/// using two colours with weights `(1, W−1)`. Theorem 1.3's budget grows as
/// `w²`; the measured time grows with `w` (the theorem is an upper bound).
pub fn run_w_sweep(preset: Preset, base_seed: u64) -> Report {
    let n = preset.pick(1_024, 4_096);
    let totals: Vec<f64> = preset.pick(
        vec![2.0, 4.0, 8.0, 16.0],
        vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
    );
    let seeds = preset.pick(3u64, 10u64);
    let delta = 0.25;
    let nln = n as f64 * (n as f64).ln();

    let mut table = Table::new(["w", "weights", "median T", "T/(n ln n)", "T/(w^2 n ln n)"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &total in &totals {
        let weights = Weights::new(vec![1.0, total - 1.0]).expect("valid two-colour table");
        let budget = pp_core::theory::convergence_budget(n, total, 64.0);
        let times = replicate(base_seed..base_seed + seeds, |seed| {
            convergence_time(n, &weights, delta, seed, budget)
                .map(|t| t as f64)
                .unwrap_or(budget as f64)
        });
        let med = median(&times).expect("non-empty seeds");
        table.row([
            fmt_f64(total),
            format!("(1,{})", total - 1.0),
            fmt_f64(med),
            fmt_f64(med / nln),
            fmt_f64(med / (total * total * nln)),
        ]);
        xs.push(total);
        ys.push(med);
    }

    let mut report = Report::new(
        format!("t2_convergence_w (n = {n}, delta = {delta})"),
        table,
    );
    if let Some(fit) = loglog_fit(&xs, &ys) {
        report.note(format!(
            "log-log fit of T against w: slope = {:.3} (theory allows up to 2; the w² budget is an upper bound), R^2 = {:.3}",
            fit.slope, fit.r_squared
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_sweep_slope_near_linear_in_nlogn() {
        let report = run_n_sweep(Preset::Quick, 1);
        let note = report.notes.first().expect("fit note");
        // Extract slope from the note.
        let slope: f64 = note
            .split("slope = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable slope");
        assert!(
            (0.5..=1.5).contains(&slope),
            "T vs n ln n slope {slope} far from linear:\n{}",
            report.render()
        );
    }

    #[test]
    fn w_sweep_is_monotone_increasing() {
        let report = run_w_sweep(Preset::Quick, 2);
        // Convergence time should not shrink as the weight spread grows.
        let note = report.notes.first().expect("fit note");
        let slope: f64 = note
            .split("slope = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable slope");
        assert!(
            slope > 0.0,
            "convergence time should grow with w:\n{}",
            report.render()
        );
        assert!(
            slope < 2.5,
            "slope {slope} above the w² budget:\n{}",
            report.render()
        );
    }
}
