//! `t11_lower_bound` — the `Ω(n log n)` broadcast bound of §1.
//!
//! A colour supported by a single agent must propagate to `Θ(n)` agents;
//! the paper argues this takes `Ω(n log n)` steps, making Diversification's
//! `O(w² n log n)` convergence asymptotically optimal for constant `w`. We
//! start one agent with colour 1 (uniform two-colour weights, fair share
//! `n/2`) and time how long colour 1 needs to reach `n/4` supporters; the
//! ratio to `n·ln n` should stay bounded as `n` grows.

use crate::experiments::Report;
use crate::runner::{build_engine, EngineKind, Preset};
use pp_core::{init, packed::config_stats_from_class_counts, Weights};
use pp_engine::replicate;
use pp_stats::{loglog_fit, median, table::fmt_f64, Table};

/// Steps for the singleton colour to reach support `n/4`, with the engine
/// selected by `PP_ENGINE` (dense by default — the topology is `Complete`;
/// for the dense engine the singleton colour exercises its exact
/// critical-channel sampling until the colour takes root).
pub fn spread_time(n: usize, seed: u64) -> Option<u64> {
    spread_time_with(EngineKind::from_env(), n, seed)
}

/// [`spread_time`] with an explicit engine choice — one generic code path
/// for every tier.
pub fn spread_time_with(engine: EngineKind, n: usize, seed: u64) -> Option<u64> {
    let weights = Weights::uniform(2);
    let budget = pp_core::theory::convergence_budget(n, 2.0, 64.0);
    let check = (n as u64 / 4).max(1);
    // single_minority puts colour 0 in the majority; colour 1 is the
    // singleton.
    let states = init::all_dark_single_minority(n, &weights);
    let mut sim = build_engine(engine, &weights, states, seed);
    sim.run_until(budget, check, &mut |counts, _| {
        config_stats_from_class_counts(counts, 2).colour_count(1) >= n / 4
    })
}

/// Runs the sweep.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(
        vec![256, 512, 1_024, 2_048],
        vec![512, 1_024, 2_048, 4_096, 8_192, 16_384],
    );
    let seeds = preset.pick(3u64, 10u64);

    let mut table = Table::new(["n", "median spread time", "T/(n ln n)"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let times = replicate(base_seed..base_seed + seeds, |s| {
            spread_time(n, s).map(|t| t as f64).unwrap_or(f64::INFINITY)
        });
        let med = median(&times).expect("non-empty");
        let nln = n as f64 * (n as f64).ln();
        table.row([n.to_string(), fmt_f64(med), fmt_f64(med / nln)]);
        xs.push(n as f64);
        ys.push(med);
    }

    let mut report = Report::new(
        "t11_lower_bound (uniform k = 2; singleton colour to n/4 support)".to_string(),
        table,
    );
    if let Some(fit) = loglog_fit(&xs, &ys) {
        report.note(format!(
            "log-log fit of spread time against n: slope = {:.3} (Θ(n log n) predicts slightly above 1), R^2 = {:.3}",
            fit.slope, fit.r_squared
        ));
    }
    report.note(
        "matching upper bound: Diversification converges in O(w² n log n), so for constant w \
         the protocol is asymptotically optimal against this broadcast bound.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_finishes_and_scales_superlinearly() {
        // Spread times are heavy-tailed; compare medians over a few seeds.
        let med = |n: usize| -> f64 {
            let times: Vec<f64> = (0..5)
                .map(|s| spread_time(n, 3 + s).expect("spread finished") as f64)
                .collect();
            median(&times).unwrap()
        };
        let t512 = med(512);
        let t2048 = med(2_048);
        // 4× population ⇒ more than 4× time (the log factor), but not 16×.
        assert!(
            t2048 > 3.0 * t512 && t2048 < 20.0 * t512,
            "t512={t512}, t2048={t2048}"
        );
    }
}
