//! `t4_phase3_error` — the additive equilibrium error of Theorem 2.13:
//! `|A_i − w_i n/(1+w)| ≤ C·n^{3/4}·(ln n)^{1/4}` (and similarly for the
//! light counts), maximised over an observation window.

use crate::experiments::Report;
use crate::runner::{converged_simulator, standard_weights, Preset};
use pp_core::ConfigStats;
use pp_engine::replicate;
use pp_stats::{loglog_fit, median, table::fmt_f64, Table};

/// Measured `(dark, light)` window-max equilibrium errors for one run.
pub fn window_errors(n: usize, seed: u64) -> (f64, f64) {
    let weights = standard_weights();
    let k = weights.len();
    let mut sim = converged_simulator(n, &weights, seed);
    let window = (2.0 * n as f64 * (n as f64).ln()) as u64;
    let stride = (n as u64) / 2;
    let mut dark: f64 = 0.0;
    let mut light: f64 = 0.0;
    sim.run_observed(window, stride.max(1), |_, pop| {
        let stats = ConfigStats::from_states(pop.states(), k);
        dark = dark.max(stats.max_dark_equilibrium_error(&weights));
        light = light.max(stats.max_light_equilibrium_error(&weights));
    });
    (dark, light)
}

/// Runs the sweep.
pub fn run(preset: Preset, base_seed: u64) -> Report {
    let sizes: Vec<usize> = preset.pick(
        vec![256, 512, 1_024, 2_048],
        vec![512, 1_024, 2_048, 4_096, 8_192],
    );
    let seeds = preset.pick(3u64, 10u64);

    let mut table = Table::new([
        "n",
        "median dark err",
        "median light err",
        "dark err / n^0.75 ln^0.25 n",
        "light err / n^0.75 ln^0.25 n",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &sizes {
        let pairs = replicate(base_seed..base_seed + seeds, |seed| window_errors(n, seed));
        let darks: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let lights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let dark = median(&darks).expect("non-empty");
        let light = median(&lights).expect("non-empty");
        let scale = pp_core::theory::phase3_error_scale(n);
        table.row([
            n.to_string(),
            fmt_f64(dark),
            fmt_f64(light),
            fmt_f64(dark / scale),
            fmt_f64(light / scale),
        ]);
        xs.push(n as f64);
        ys.push(dark);
    }

    let mut report = Report::new("t4_phase3_error (weights = (1,1,2,4))".to_string(), table);
    if let Some(fit) = loglog_fit(&xs, &ys) {
        report.note(format!(
            "log-log fit of dark error against n: slope = {:.3} (theory: <= 3/4 up to log factors; \
             the fluctuation floor is 1/2), R^2 = {:.3}",
            fit.slope, fit.r_squared
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_sublinear_in_n() {
        let (d256, _) = window_errors(256, 9);
        let (d2048, _) = window_errors(2_048, 9);
        // 8× the population should NOT produce 8× the absolute error.
        assert!(
            d2048 < 6.0 * d256,
            "errors scale linearly: {d256} -> {d2048}"
        );
    }

    #[test]
    fn slope_is_below_three_quarters() {
        let report = run(Preset::Quick, 17);
        let note = report.notes.first().expect("fit note");
        let slope: f64 = note
            .split("slope = ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parseable slope");
        assert!(
            (0.2..=0.95).contains(&slope),
            "slope {slope} outside the [1/2, 3/4] band the theory brackets:\n{}",
            report.render()
        );
    }
}
