//! Shared experiment plumbing.

use pp_core::{init, region::GoodSet, ConfigStats, Diversification, Weights};
use pp_engine::Simulator;
use pp_graph::Complete;

/// Experiment scale: `Quick` presets finish in seconds (used by
/// `cargo bench` and the test-suite), `Full` presets are the scales quoted
/// in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Reduced population sizes and seed counts; same code paths.
    Quick,
    /// The scales recorded in EXPERIMENTS.md.
    Full,
}

impl Preset {
    /// Picks `quick` or `full` depending on the preset.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Preset::Quick => quick,
            Preset::Full => full,
        }
    }

    /// Reads the preset from the process environment: `PP_PRESET=full`
    /// selects [`Preset::Full`], anything else (or unset) is quick.
    pub fn from_env() -> Self {
        match std::env::var("PP_PRESET") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Preset::Full,
            _ => Preset::Quick,
        }
    }
}

/// Measures the convergence time of Theorem 1.3: the first time-step at
/// which the configuration (started from the adversarial single-minority
/// configuration) enters `E(δ)`, checked every `n/4` steps.
///
/// Returns `None` if the budget `max_steps` is exhausted first.
///
/// # Panics
///
/// Panics if `n < weights.len()`.
pub fn convergence_time(
    n: usize,
    weights: &Weights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    let states = init::all_dark_single_minority(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    let good = GoodSet::new(weights.clone(), delta);
    let k = weights.len();
    let check = (n as u64 / 4).max(1);
    sim.run_until(max_steps, check, |pop, _| {
        good.contains(&ConfigStats::from_states(pop.states(), k))
    })
}

/// Builds a simulator from the balanced all-dark start and runs it past the
/// Theorem 1.3 budget (`c·w²·n·ln n` with `c = 4`), returning it in its
/// (w.h.p.) converged state.
pub fn converged_simulator(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> Simulator<Diversification, Complete> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The weight table used by most experiments: `k = 4`, weights `(1, 1, 2, 4)`
/// (total `w = 8`) — small enough for fast runs, skewed enough that weighted
/// fair shares differ visibly from uniform.
pub fn standard_weights() -> Weights {
    Weights::new(vec![1.0, 1.0, 2.0, 4.0]).expect("static table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_pick() {
        assert_eq!(Preset::Quick.pick(1, 2), 1);
        assert_eq!(Preset::Full.pick(1, 2), 2);
    }

    #[test]
    fn convergence_time_is_finite_at_small_n() {
        let w = standard_weights();
        let budget = pp_core::theory::convergence_budget(256, w.total(), 50.0);
        let t = convergence_time(256, &w, 0.5, 7, budget);
        assert!(t.is_some(), "no convergence within 50·w²·n·ln n");
    }

    #[test]
    fn converged_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_simulator(512, &w, 3);
        let stats = ConfigStats::from_states(sim.population().states(), w.len());
        assert!(stats.max_diversity_error(&w) < 0.12);
    }

    #[test]
    fn tiny_budget_times_out() {
        let w = standard_weights();
        assert_eq!(convergence_time(256, &w, 0.05, 7, 10), None);
    }
}
