//! Shared experiment plumbing.
//!
//! Engine selection lives here, and **only** here: [`build_engine`] /
//! [`build_graph_engine`] are the bench layer's single dispatch point from
//! [`EngineKind`] to a concrete simulator, returning a
//! `Box<dyn Engine<State = AgentState>>` every experiment drives through
//! the generic [`Engine`] surface. Adding an engine
//! tier (or a workload) no longer touches every experiment file.

use pp_core::{
    init, packed::config_stats_from_class_counts, region::GoodSet, AgentState, Diversification,
    Weights,
};
use pp_dense::DenseEngine;
use pp_engine::{
    Engine, PackedSimulator, ShardedSimulator, Simulator, TurboSimulator, VecSimulator,
};
use pp_graph::{Complete, Topology};

/// Experiment scale: `Quick` presets finish in seconds (used by
/// `cargo bench` and the test-suite), `Full` presets are the scales quoted
/// in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Reduced population sizes and seed counts; same code paths.
    Quick,
    /// The scales recorded in EXPERIMENTS.md.
    Full,
}

impl Preset {
    /// Picks `quick` or `full` depending on the preset.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Preset::Quick => quick,
            Preset::Full => full,
        }
    }

    /// Reads the preset from the process environment: `PP_PRESET=full`
    /// selects [`Preset::Full`], `PP_PRESET=quick` (or unset) is quick.
    ///
    /// # Panics
    ///
    /// Panics on any other value, matching [`EngineKind::from_env`]: a
    /// silently ignored typo (`PP_PRESET=ful`) would record quick-preset
    /// numbers as full-scale results.
    pub fn from_env() -> Self {
        match std::env::var("PP_PRESET") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Preset::Full,
            Ok(v) if v.eq_ignore_ascii_case("quick") => Preset::Quick,
            Err(_) => Preset::Quick,
            Ok(v) => panic!("PP_PRESET must be `quick` or `full`, got `{v}`"),
        }
    }

    /// Short lowercase name for the result-JSON `preset` field.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Quick => "quick",
            Preset::Full => "full",
        }
    }
}

/// Which simulation engine tier drives a measurement.
///
/// Complete-graph measurements default to the count-based dense engine
/// (distributionally equivalent to the per-agent engines there, and
/// orders of magnitude faster at large `n`); `PP_ENGINE` reroutes every
/// experiment onto any other tier through the same generic code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One `AgentState` per agent, one RNG draw per interaction — the
    /// generic reference engine.
    Agent,
    /// `k × 2` count matrix, τ-leaped batches of interactions
    /// (complete graph only).
    Dense,
    /// Monomorphized `u32` SoA fast path (`PackedSimulator`) — bit-exact
    /// twin of the agent engine under a shared seed.
    Packed,
    /// Per-agent `u8`/`u32` states with counter-based relaxed-equivalence
    /// randomness (`TurboSimulator`) — statistically, not bit-exactly,
    /// equivalent to the agent engine; verified by the `pp-stats`
    /// harness.
    Turbo,
    /// Graph-partitioned multi-core engine (`ShardedSimulator`): turbo's
    /// counter-based scheduling, node set split across per-core shards,
    /// boundary interactions merged deterministically between blocks.
    /// Statistical tier, verified by the `pp-stats` harness.
    Sharded,
    /// Lane-parallel ensemble engine (`VecSimulator`) at one lane:
    /// turbo's schedule walk plus per-lane partner/aux streams, bit-exact
    /// vs the turbo tier under a shared seed. Single-trajectory `Engine`
    /// workloads run it at `L = 1` (no wasted lanes); ensemble workloads
    /// reach the multi-lane step loop through
    /// [`replicate_vec`](pp_engine::replicate_vec).
    Vec,
}

impl EngineKind {
    /// Reads the engine from the environment: `PP_ENGINE` set to `agent`,
    /// `packed`, `turbo`, `sharded`, or `vec` forces that tier; `dense`
    /// (or unset) selects the dense engine — the default for
    /// complete-graph experiments.
    ///
    /// # Panics
    ///
    /// Panics on any other value: a silently ignored typo would record
    /// dense-vs-dense numbers as an engine comparison.
    pub fn from_env() -> Self {
        match std::env::var("PP_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("agent") => EngineKind::Agent,
            Ok(v) if v.eq_ignore_ascii_case("dense") => EngineKind::Dense,
            Ok(v) if v.eq_ignore_ascii_case("packed") => EngineKind::Packed,
            Ok(v) if v.eq_ignore_ascii_case("turbo") => EngineKind::Turbo,
            Ok(v) if v.eq_ignore_ascii_case("sharded") => EngineKind::Sharded,
            Ok(v) if v.eq_ignore_ascii_case("vec") => EngineKind::Vec,
            Err(_) => EngineKind::Dense,
            Ok(v) => {
                panic!(
                    "PP_ENGINE must be `agent`, `dense`, `packed`, `turbo`, `sharded`, \
                     or `vec`, got `{v}`"
                )
            }
        }
    }

    /// The nearest tier with **per-agent identity**: [`Dense`] maps to
    /// [`Packed`] (its bit-exact per-agent sibling), everything else is
    /// itself.
    ///
    /// Two experiment classes need this: general-graph workloads (the
    /// count-based engine exists only on the complete graph) and
    /// per-agent instrumentation (fairness occupancy — the dense engine
    /// has no stable agent identity to track). Using the mapping instead
    /// of a panic keeps `PP_ENGINE` unset (= dense) working for every
    /// `t*` bin; reports note the tier that actually ran.
    ///
    /// [`Dense`]: EngineKind::Dense
    /// [`Packed`]: EngineKind::Packed
    pub fn per_agent(self) -> Self {
        match self {
            EngineKind::Dense => EngineKind::Packed,
            other => other,
        }
    }

    /// Short lowercase name for tables and notes.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Agent => "agent",
            EngineKind::Dense => "dense",
            EngineKind::Packed => "packed",
            EngineKind::Turbo => "turbo",
            EngineKind::Sharded => "sharded",
            EngineKind::Vec => "vec",
        }
    }
}

/// A boxed engine running Diversification — the currency of the generic
/// experiment path. `Send` so holders (notably the `pp serve` data
/// plane) may run slices of distinct engines on pool workers; every
/// tier is a plain owned value, so the bound costs nothing.
pub type DivEngine = Box<dyn Engine<State = AgentState> + Send>;

/// Builds a Diversification engine of the selected tier over an arbitrary
/// topology, from explicit initial states — the bench layer's **single**
/// engine-dispatch point.
///
/// # Panics
///
/// Panics for [`EngineKind::Dense`]: the count-based engine relies on
/// complete-graph mean-field symmetry that no display-name check can
/// establish for an arbitrary `T`, so only [`build_engine`] — which
/// constructs the `Complete` topology itself — builds it; general-graph
/// experiments map the dense default away first via
/// [`EngineKind::per_agent`]. Also panics if the state count does not
/// match the topology size.
pub fn build_graph_engine<T>(
    kind: EngineKind,
    weights: &Weights,
    topology: T,
    states: Vec<AgentState>,
    seed: u64,
) -> DivEngine
where
    T: Topology + Clone + Send + Sync + 'static,
{
    let k = weights.len();
    let protocol = Diversification::new(weights.clone());
    match kind {
        EngineKind::Agent => Box::new(Simulator::new(protocol, topology, states, seed)),
        EngineKind::Dense => {
            panic!(
                "the dense engine applies only on the complete graph, not `{}`; \
                 build it through build_engine, or map the kind away with \
                 EngineKind::per_agent() first",
                topology.name()
            );
        }
        EngineKind::Packed => Box::new(PackedSimulator::new(protocol, topology, &states, seed)),
        EngineKind::Turbo => {
            if pp_core::packed::fits_u8(k) {
                Box::new(TurboSimulator::<_, _, u8>::new(
                    protocol, topology, &states, seed,
                ))
            } else {
                Box::new(TurboSimulator::<_, _, u32>::new(
                    protocol, topology, &states, seed,
                ))
            }
        }
        EngineKind::Sharded => {
            if pp_core::packed::fits_u8(k) {
                Box::new(ShardedSimulator::<_, _, u8>::new(
                    protocol, topology, &states, seed,
                ))
            } else {
                Box::new(ShardedSimulator::<_, _, u32>::new(
                    protocol, topology, &states, seed,
                ))
            }
        }
        EngineKind::Vec => {
            // One lane, lane seed == master seed: bit-exact vs the turbo
            // tier, so single-trajectory workloads pay no lane overhead.
            if pp_core::packed::fits_u8(k) {
                Box::new(VecSimulator::<_, _, u8, 1>::from_seed(
                    protocol, topology, &states, seed,
                ))
            } else {
                Box::new(VecSimulator::<_, _, u32, 1>::from_seed(
                    protocol, topology, &states, seed,
                ))
            }
        }
    }
}

/// [`build_graph_engine`] on the complete graph — the builder behind every
/// complete-graph measurement (where all five tiers, including dense,
/// apply).
pub fn build_engine(
    kind: EngineKind,
    weights: &Weights,
    states: Vec<AgentState>,
    seed: u64,
) -> DivEngine {
    let n = states.len();
    match kind {
        EngineKind::Dense => Box::new(DenseEngine::from_states(
            Diversification::new(weights.clone()),
            &states,
            weights.len(),
            seed,
        )),
        other => build_graph_engine(other, weights, Complete::new(n), states, seed),
    }
}

/// Measures the convergence time of Theorem 1.3 with the engine selected by
/// [`EngineKind::from_env`]: the first time-step at which the configuration
/// (started from the adversarial single-minority configuration) enters
/// `E(δ)`, checked every `n/4` steps.
///
/// Returns `None` if the budget `max_steps` is exhausted first.
///
/// # Panics
///
/// Panics if `n < weights.len()`.
pub fn convergence_time(
    n: usize,
    weights: &Weights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    convergence_time_with(EngineKind::from_env(), n, weights, delta, seed, max_steps)
}

/// [`convergence_time`] with an explicit engine choice — one generic code
/// path for every tier.
pub fn convergence_time_with(
    engine: EngineKind,
    n: usize,
    weights: &Weights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    let good = GoodSet::new(weights.clone(), delta);
    let k = weights.len();
    let check = (n as u64 / 4).max(1);
    let states = init::all_dark_single_minority(n, weights);
    let mut sim = build_engine(engine, weights, states, seed);
    sim.run_until(max_steps, check, &mut |counts, _| {
        good.contains(&config_stats_from_class_counts(counts, k))
    })
}

/// Builds a simulator from the balanced all-dark start and runs it past the
/// Theorem 1.3 budget (`c·w²·n·ln n` with `c = 4`), returning it in its
/// (w.h.p.) converged state.
///
/// The concrete-type twin of [`converged_engine`], for experiments that
/// need the generic engine's own API (per-agent trajectories, protocol
/// access).
pub fn converged_simulator(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> Simulator<Diversification, Complete> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// Balanced all-dark start on the selected tier, run past the Theorem 1.3
/// budget — the engine-generic counterpart of [`converged_simulator`].
pub fn converged_engine(kind: EngineKind, n: usize, weights: &Weights, seed: u64) -> DivEngine {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = build_engine(kind, weights, states, seed);
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The weight table used by most experiments: `k = 4`, weights `(1, 1, 2, 4)`
/// (total `w = 8`) — small enough for fast runs, skewed enough that weighted
/// fair shares differ visibly from uniform.
pub fn standard_weights() -> Weights {
    Weights::new(vec![1.0, 1.0, 2.0, 4.0]).expect("static table is valid")
}

/// Every engine tier, in the order reports list them.
pub const ALL_ENGINES: [EngineKind; 6] = [
    EngineKind::Agent,
    EngineKind::Dense,
    EngineKind::Packed,
    EngineKind::Turbo,
    EngineKind::Sharded,
    EngineKind::Vec,
];

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::ConfigStats;

    #[test]
    fn preset_pick() {
        assert_eq!(Preset::Quick.pick(1, 2), 1);
        assert_eq!(Preset::Full.pick(1, 2), 2);
    }

    #[test]
    fn per_agent_maps_only_dense() {
        assert_eq!(EngineKind::Dense.per_agent(), EngineKind::Packed);
        for kind in [
            EngineKind::Agent,
            EngineKind::Packed,
            EngineKind::Turbo,
            EngineKind::Sharded,
            EngineKind::Vec,
        ] {
            assert_eq!(kind.per_agent(), kind);
        }
    }

    #[test]
    fn convergence_time_is_finite_at_small_n() {
        let w = standard_weights();
        let budget = pp_core::theory::convergence_budget(256, w.total(), 50.0);
        for engine in ALL_ENGINES {
            let t = convergence_time_with(engine, 256, &w, 0.5, 7, budget);
            assert!(
                t.is_some(),
                "no convergence within 50·w²·n·ln n ({engine:?})"
            );
        }
    }

    #[test]
    fn engines_agree_on_convergence_scale() {
        // Medians over a few seeds land within a small factor of each other.
        let w = standard_weights();
        let n = 512;
        let budget = pp_core::theory::convergence_budget(n, w.total(), 64.0);
        let median = |engine: EngineKind| -> f64 {
            let mut times: Vec<f64> = (0..5)
                .map(|s| {
                    convergence_time_with(engine, n, &w, 0.4, 100 + s, budget)
                        .map(|t| t as f64)
                        .unwrap_or(budget as f64)
                })
                .collect();
            times.sort_by(f64::total_cmp);
            times[2]
        };
        let agent = median(EngineKind::Agent);
        let dense = median(EngineKind::Dense);
        let ratio = agent.max(dense) / agent.min(dense).max(1.0);
        assert!(ratio < 4.0, "agent {agent} vs dense {dense}");
    }

    #[test]
    fn agent_and_packed_builders_are_bit_exact_twins() {
        // The builder must not perturb the bit-exact tier pairing: same
        // seed through both kinds ⇒ identical class counts along the run.
        let w = standard_weights();
        let states = init::all_dark_balanced(128, &w);
        let mut a = build_engine(EngineKind::Agent, &w, states.clone(), 11);
        let mut p = build_engine(EngineKind::Packed, &w, states, 11);
        for _ in 0..5 {
            a.run(2_000);
            p.run(2_000);
            assert_eq!(a.class_counts(), p.class_counts());
        }
        assert_eq!(a.snapshot(), p.snapshot());
    }

    #[test]
    fn vec_and_turbo_builders_are_bit_exact_twins() {
        // The one-lane vec tier must reproduce the turbo trajectory under
        // a shared seed — through the builder, not just the raw engines.
        let w = standard_weights();
        let states = init::all_dark_balanced(128, &w);
        let topo = pp_graph::Cycle::new(128);
        let mut t = build_graph_engine(EngineKind::Turbo, &w, topo, states.clone(), 11);
        let mut v = build_graph_engine(EngineKind::Vec, &w, topo, states, 11);
        for _ in 0..5 {
            t.run(2_000);
            v.run(2_000);
            assert_eq!(t.snapshot(), v.snapshot());
        }
    }

    #[test]
    fn converged_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_simulator(512, &w, 3);
        let stats = ConfigStats::from_states(sim.population().states(), w.len());
        assert!(stats.max_diversity_error(&w) < 0.12);
    }

    #[test]
    fn converged_engine_is_near_fair_share_on_every_tier() {
        let w = standard_weights();
        for kind in ALL_ENGINES {
            let sim = converged_engine(kind, 512, &w, 3);
            let stats = config_stats_from_class_counts(&sim.class_counts(), w.len());
            assert!(
                stats.max_diversity_error(&w) < 0.12,
                "{kind:?} not near fair share"
            );
            assert!(stats.all_colours_alive(), "{kind:?} lost a colour");
        }
    }

    #[test]
    fn tiny_budget_times_out() {
        let w = standard_weights();
        for engine in ALL_ENGINES {
            assert_eq!(convergence_time_with(engine, 256, &w, 0.05, 7, 10), None);
        }
    }

    #[test]
    #[should_panic(expected = "only on the complete graph")]
    fn dense_rejects_general_graphs() {
        let w = standard_weights();
        let states = init::all_dark_balanced(64, &w);
        build_graph_engine(EngineKind::Dense, &w, pp_graph::Cycle::new(64), states, 1);
    }
}
