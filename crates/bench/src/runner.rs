//! Shared experiment plumbing.

use pp_core::{
    init, packed::config_stats_from_words, region::GoodSet, ConfigStats, Diversification, Weights,
};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::{ShardedSimulator, Simulator, TurboSimulator};
use pp_graph::Complete;

/// Experiment scale: `Quick` presets finish in seconds (used by
/// `cargo bench` and the test-suite), `Full` presets are the scales quoted
/// in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Reduced population sizes and seed counts; same code paths.
    Quick,
    /// The scales recorded in EXPERIMENTS.md.
    Full,
}

impl Preset {
    /// Picks `quick` or `full` depending on the preset.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Preset::Quick => quick,
            Preset::Full => full,
        }
    }

    /// Reads the preset from the process environment: `PP_PRESET=full`
    /// selects [`Preset::Full`], anything else (or unset) is quick.
    pub fn from_env() -> Self {
        match std::env::var("PP_PRESET") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Preset::Full,
            _ => Preset::Quick,
        }
    }
}

/// Which simulation engine drives a complete-graph measurement.
///
/// The topology of every measurement routed through this enum is
/// `Complete`, where the count-based [`DenseSimulator`] is distributionally
/// equivalent to the per-agent [`Simulator`] (see `pp-dense`); experiments
/// on any other topology always use the agent engine directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One `AgentState` per agent, one RNG draw per interaction.
    Agent,
    /// `k × 2` count matrix, τ-leaped batches of interactions.
    Dense,
    /// Per-agent `u8` states with counter-based relaxed-equivalence
    /// randomness (`TurboSimulator`) — statistically, not bit-exactly,
    /// equivalent to the agent engine; verified by the `pp-stats`
    /// harness.
    Turbo,
    /// Graph-partitioned multi-core engine (`ShardedSimulator`): turbo's
    /// counter-based scheduling, node set split across per-core shards,
    /// boundary interactions merged deterministically between blocks.
    /// Statistical tier, verified by the `pp-stats` harness.
    Sharded,
}

impl EngineKind {
    /// Reads the engine from the environment: `PP_ENGINE=agent` forces the
    /// per-agent engine, `PP_ENGINE=turbo` the relaxed-equivalence turbo
    /// engine, `PP_ENGINE=sharded` the graph-partitioned multi-core
    /// engine, and `PP_ENGINE=dense` (or unset) selects the dense engine —
    /// the default for complete-graph experiments.
    ///
    /// # Panics
    ///
    /// Panics on any other value: a silently ignored typo would record
    /// dense-vs-dense numbers as an engine comparison.
    pub fn from_env() -> Self {
        match std::env::var("PP_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("agent") => EngineKind::Agent,
            Ok(v) if v.eq_ignore_ascii_case("dense") => EngineKind::Dense,
            Ok(v) if v.eq_ignore_ascii_case("turbo") => EngineKind::Turbo,
            Ok(v) if v.eq_ignore_ascii_case("sharded") => EngineKind::Sharded,
            Err(_) => EngineKind::Dense,
            Ok(v) => {
                panic!("PP_ENGINE must be `agent`, `dense`, `turbo`, or `sharded`, got `{v}`")
            }
        }
    }
}

/// Measures the convergence time of Theorem 1.3 with the engine selected by
/// [`EngineKind::from_env`]: the first time-step at which the configuration
/// (started from the adversarial single-minority configuration) enters
/// `E(δ)`, checked every `n/4` steps.
///
/// Returns `None` if the budget `max_steps` is exhausted first.
///
/// # Panics
///
/// Panics if `n < weights.len()`.
pub fn convergence_time(
    n: usize,
    weights: &Weights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    convergence_time_with(EngineKind::from_env(), n, weights, delta, seed, max_steps)
}

/// [`convergence_time`] with an explicit engine choice.
pub fn convergence_time_with(
    engine: EngineKind,
    n: usize,
    weights: &Weights,
    delta: f64,
    seed: u64,
    max_steps: u64,
) -> Option<u64> {
    let good = GoodSet::new(weights.clone(), delta);
    let k = weights.len();
    let check = (n as u64 / 4).max(1);
    match engine {
        EngineKind::Agent => {
            let states = init::all_dark_single_minority(n, weights);
            let mut sim = Simulator::new(
                Diversification::new(weights.clone()),
                Complete::new(n),
                states,
                seed,
            );
            sim.run_until(max_steps, check, |pop, _| {
                good.contains(&ConfigStats::from_states(pop.states(), k))
            })
        }
        EngineKind::Dense => {
            let config = CountConfig::all_dark_single_minority(n as u64, k);
            let mut sim = DenseSimulator::new(
                Diversification::new(weights.clone()),
                config.to_classes(),
                seed,
            );
            sim.run_until(max_steps, check, |counts, _| {
                good.contains(&CountConfig::from_classes(counts).stats())
            })
        }
        EngineKind::Turbo => {
            let states = init::all_dark_single_minority(n, weights);
            if pp_core::packed::fits_u8(k) {
                let mut sim = TurboSimulator::<_, _, u8>::new(
                    Diversification::new(weights.clone()),
                    Complete::new(n),
                    &states,
                    seed,
                );
                sim.run_until(max_steps, check, |words, _| {
                    good.contains(&config_stats_from_words(words, k))
                })
            } else {
                let mut sim = TurboSimulator::<_, _, u32>::new(
                    Diversification::new(weights.clone()),
                    Complete::new(n),
                    &states,
                    seed,
                );
                sim.run_until(max_steps, check, |words, _| {
                    good.contains(&config_stats_from_words(words, k))
                })
            }
        }
        EngineKind::Sharded => {
            let states = init::all_dark_single_minority(n, weights);
            if pp_core::packed::fits_u8(k) {
                let mut sim = ShardedSimulator::<_, _, u8>::new(
                    Diversification::new(weights.clone()),
                    Complete::new(n),
                    &states,
                    seed,
                );
                sim.run_until(max_steps, check, |words, _| {
                    good.contains(&config_stats_from_words(words, k))
                })
            } else {
                let mut sim = ShardedSimulator::<_, _, u32>::new(
                    Diversification::new(weights.clone()),
                    Complete::new(n),
                    &states,
                    seed,
                );
                sim.run_until(max_steps, check, |words, _| {
                    good.contains(&config_stats_from_words(words, k))
                })
            }
        }
    }
}

/// Builds a simulator from the balanced all-dark start and runs it past the
/// Theorem 1.3 budget (`c·w²·n·ln n` with `c = 4`), returning it in its
/// (w.h.p.) converged state.
pub fn converged_simulator(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> Simulator<Diversification, Complete> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The dense-engine counterpart of [`converged_simulator`]: balanced
/// all-dark start, run past the Theorem 1.3 budget.
pub fn converged_dense_simulator(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> DenseSimulator<Diversification> {
    let config = CountConfig::all_dark_balanced(n as u64, weights.len());
    let mut sim = DenseSimulator::new(
        Diversification::new(weights.clone()),
        config.to_classes(),
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The turbo-engine counterpart of [`converged_simulator`]: balanced
/// all-dark start, run past the Theorem 1.3 budget on the
/// relaxed-equivalence engine. Callers pick the storage word: `u8` when
/// [`pp_core::packed::fits_u8`] holds (`k ≤ 127`), `u32` otherwise.
///
/// # Panics
///
/// Panics if a packed state overflows the chosen storage word `W`.
pub fn converged_turbo_simulator<W: pp_engine::TurboWord>(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> TurboSimulator<Diversification, Complete, W> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = TurboSimulator::<_, _, W>::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        &states,
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The sharded-engine counterpart of [`converged_simulator`]: balanced
/// all-dark start, run past the Theorem 1.3 budget on the
/// graph-partitioned engine (threads from the shared pool budget).
/// Callers pick the storage word like for
/// [`converged_turbo_simulator`]: `u8` when
/// [`pp_core::packed::fits_u8`] holds, `u32` otherwise.
///
/// # Panics
///
/// Panics if a packed state overflows the chosen storage word `W`.
pub fn converged_sharded_simulator<W: pp_engine::TurboWord>(
    n: usize,
    weights: &Weights,
    seed: u64,
) -> ShardedSimulator<Diversification, Complete, W> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = ShardedSimulator::<_, _, W>::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        &states,
        seed,
    );
    let budget = pp_core::theory::convergence_budget(n, weights.total(), 4.0);
    sim.run(budget);
    sim
}

/// The weight table used by most experiments: `k = 4`, weights `(1, 1, 2, 4)`
/// (total `w = 8`) — small enough for fast runs, skewed enough that weighted
/// fair shares differ visibly from uniform.
pub fn standard_weights() -> Weights {
    Weights::new(vec![1.0, 1.0, 2.0, 4.0]).expect("static table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_pick() {
        assert_eq!(Preset::Quick.pick(1, 2), 1);
        assert_eq!(Preset::Full.pick(1, 2), 2);
    }

    #[test]
    fn convergence_time_is_finite_at_small_n() {
        let w = standard_weights();
        let budget = pp_core::theory::convergence_budget(256, w.total(), 50.0);
        for engine in [
            EngineKind::Agent,
            EngineKind::Dense,
            EngineKind::Turbo,
            EngineKind::Sharded,
        ] {
            let t = convergence_time_with(engine, 256, &w, 0.5, 7, budget);
            assert!(
                t.is_some(),
                "no convergence within 50·w²·n·ln n ({engine:?})"
            );
        }
    }

    #[test]
    fn engines_agree_on_convergence_scale() {
        // Medians over a few seeds land within a small factor of each other.
        let w = standard_weights();
        let n = 512;
        let budget = pp_core::theory::convergence_budget(n, w.total(), 64.0);
        let median = |engine: EngineKind| -> f64 {
            let mut times: Vec<f64> = (0..5)
                .map(|s| {
                    convergence_time_with(engine, n, &w, 0.4, 100 + s, budget)
                        .map(|t| t as f64)
                        .unwrap_or(budget as f64)
                })
                .collect();
            times.sort_by(f64::total_cmp);
            times[2]
        };
        let agent = median(EngineKind::Agent);
        let dense = median(EngineKind::Dense);
        let ratio = agent.max(dense) / agent.min(dense).max(1.0);
        assert!(ratio < 4.0, "agent {agent} vs dense {dense}");
    }

    #[test]
    fn converged_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_simulator(512, &w, 3);
        let stats = ConfigStats::from_states(sim.population().states(), w.len());
        assert!(stats.max_diversity_error(&w) < 0.12);
    }

    #[test]
    fn converged_turbo_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_turbo_simulator::<u8>(512, &w, 3);
        let stats = pp_core::packed::config_stats_from_words(sim.states_words(), w.len());
        assert!(stats.max_diversity_error(&w) < 0.12);
        assert!(stats.all_colours_alive());
    }

    #[test]
    fn converged_sharded_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_sharded_simulator::<u8>(512, &w, 3);
        let stats = pp_core::packed::config_stats_from_words(&sim.states_packed(), w.len());
        assert!(stats.max_diversity_error(&w) < 0.12);
        assert!(stats.all_colours_alive());
    }

    #[test]
    fn converged_dense_simulator_is_near_fair_share() {
        let w = standard_weights();
        let sim = converged_dense_simulator(512, &w, 3);
        let stats = CountConfig::from_classes(sim.counts()).stats();
        assert!(stats.max_diversity_error(&w) < 0.12);
        assert!(stats.all_colours_alive());
    }

    #[test]
    fn tiny_budget_times_out() {
        let w = standard_weights();
        for engine in [
            EngineKind::Agent,
            EngineKind::Dense,
            EngineKind::Turbo,
            EngineKind::Sharded,
        ] {
            assert_eq!(convergence_time_with(engine, 256, &w, 0.05, 7, 10), None);
        }
    }
}
