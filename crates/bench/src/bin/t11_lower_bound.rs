//! Regenerates experiment `t11_lower_bound` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::lower_bound::run(preset, 1100).print();
}
