//! Validates `BENCH_*.json` artifacts against the result-JSON v1 schema and
//! runs the CI regression/A-B gates, with the stable exit codes the
//! Observability contract defines (EXPERIMENTS.md):
//!
//! - `0` — every file validated (and every requested gate passed);
//! - `2` — a file is unreadable, unparseable, or violates the v1 schema;
//! - `3` — schemas are fine but a gate failed (step-rate regression or
//!   obs-overhead A/B outside its band).
//!
//! Usage:
//!
//! ```text
//! validate_bench FILE.json...
//!     [--gate BASELINE.json FRESH.json]   # per-(n, engine) Msteps/s ratio
//!     [--min-ratio 0.70]                  # gate threshold (fresh/baseline)
//!     [--ab A.json B.json SUBSTR RATIO]   # rate of the row whose engine
//!                                         # contains SUBSTR must agree
//!                                         # within RATIO in both files
//! ```
//!
//! The gate reproduces the bench-regression contract previously inlined as
//! CI python: every (n, engine) row present in both the baseline and the
//! fresh throughput report must retain at least `--min-ratio` of its
//! baseline step rate. The gate keys on the envelopes' `runner_class`
//! labels: when baseline and fresh carry the same non-null class the
//! floor is raised to at least 0.80 (same hardware answers for a 20%
//! band; unlabelled or cross-class comparisons keep the loose default).

use pp_bench::output::{EXIT_GATE_FAILURE, EXIT_SCHEMA_ERROR};
use pp_bench::schema::{self, Value};
use std::collections::BTreeMap;
use std::process::exit;

fn load_validated(path: &str) -> Value {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("schema error: cannot read `{path}`: {e}");
            exit(EXIT_SCHEMA_ERROR);
        }
    };
    let doc = match schema::parse(&body) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("schema error: `{path}`: {e}");
            exit(EXIT_SCHEMA_ERROR);
        }
    };
    if let Err(e) = schema::validate_v1(&doc) {
        eprintln!("schema error: `{path}` is not result-JSON v1: {e}");
        exit(EXIT_SCHEMA_ERROR);
    }
    doc
}

fn column_index(doc: &Value, name: &str) -> Option<usize> {
    doc.get("columns")?
        .as_arr()?
        .iter()
        .position(|c| c.as_str() == Some(name))
}

/// Rows excluded from the step-rate gates **by engine name**: the
/// obs-probe row reports ns/call, not a step rate (its `Msteps/s` cell
/// is `-`), so it is never a regression claim. A named list — rather
/// than a shape heuristic like "non-numeric `n`" — keeps the exclusion
/// explicit and greppable when new microbenchmark rows appear.
const GATE_EXCLUDED_ENGINES: &[&str] = &["obs-probe"];

/// `(n, engine) -> Msteps/s` for every gate-eligible row. Eligibility is
/// the named [`GATE_EXCLUDED_ENGINES`] list plus the key requirements:
/// a numeric population `n` and a numeric rate (both needed to form a
/// comparable `(n, engine)` entry).
fn rates(doc: &Value, path: &str) -> BTreeMap<String, f64> {
    let (Some(n_col), Some(e_col), Some(r_col)) = (
        column_index(doc, "n"),
        column_index(doc, "engine"),
        column_index(doc, "Msteps/s"),
    ) else {
        eprintln!("schema error: `{path}` lacks the n/engine/Msteps/s columns the gate needs");
        exit(EXIT_SCHEMA_ERROR);
    };
    let mut out = BTreeMap::new();
    for row in doc.get("rows").and_then(Value::as_arr).unwrap_or(&[]) {
        let cells = row.as_arr().unwrap_or(&[]);
        let (Some(n), Some(engine), Some(rate)) = (
            cells.get(n_col),
            cells.get(e_col).and_then(Value::as_str),
            cells.get(r_col).and_then(Value::as_f64),
        ) else {
            continue;
        };
        if GATE_EXCLUDED_ENGINES.iter().any(|ex| engine.contains(ex)) {
            continue;
        }
        let Value::Num(x) = n else { continue };
        let n_key = format!("{x}");
        out.insert(format!("n={n_key} engine={engine}"), rate);
    }
    out
}

/// The `runner_class` label of an artifact (absent and `null` are both
/// "unlabelled" — pre-label artifacts and ad-hoc local runs).
fn runner_class_of(doc: &Value) -> Option<String> {
    doc.get("runner_class")
        .and_then(Value::as_str)
        .map(str::to_string)
}

/// Same-hardware comparisons answer for a tighter band than
/// cross-hardware ones: when baseline and fresh carry the same non-null
/// `runner_class`, the floor rises to at least this value (a 20% band
/// instead of the default 30%).
const SAME_CLASS_MIN_RATIO: f64 = 0.80;

/// The floor the gate actually enforces, given both artifacts' labels:
/// raised to [`SAME_CLASS_MIN_RATIO`] when the classes match and are
/// non-null, the caller's `min_ratio` otherwise (never lowered — a
/// stricter explicit `--min-ratio` always wins).
fn effective_min_ratio(min_ratio: f64, base: Option<&str>, fresh: Option<&str>) -> f64 {
    match (base, fresh) {
        (Some(b), Some(f)) if b == f => min_ratio.max(SAME_CLASS_MIN_RATIO),
        _ => min_ratio,
    }
}

fn gate(baseline_path: &str, fresh_path: &str, min_ratio: f64) -> bool {
    let base_doc = load_validated(baseline_path);
    let fresh_doc = load_validated(fresh_path);
    let (base_class, fresh_class) = (runner_class_of(&base_doc), runner_class_of(&fresh_doc));
    let min_ratio = effective_min_ratio(min_ratio, base_class.as_deref(), fresh_class.as_deref());
    println!(
        "gate: runner classes {} vs {} — min ratio {min_ratio}",
        base_class.as_deref().unwrap_or("(unlabelled)"),
        fresh_class.as_deref().unwrap_or("(unlabelled)"),
    );
    let baseline = rates(&base_doc, baseline_path);
    let fresh = rates(&fresh_doc, fresh_path);
    let mut ok = true;
    let mut compared = 0usize;
    for (key, &base) in &baseline {
        let Some(&new) = fresh.get(key) else {
            println!("gate: {key}: missing from fresh run (skipped)");
            continue;
        };
        compared += 1;
        let ratio = if base > 0.0 {
            new / base
        } else {
            f64::INFINITY
        };
        let verdict = if ratio >= min_ratio {
            "ok"
        } else {
            "REGRESSION"
        };
        println!("gate: {key}: baseline {base:.2} fresh {new:.2} ratio {ratio:.3} {verdict}");
        if ratio < min_ratio {
            ok = false;
        }
    }
    if compared == 0 {
        eprintln!("gate: no (n, engine) rows in common between baseline and fresh");
        ok = false;
    }
    ok
}

/// Rate of the first row whose engine cell contains `substr`.
fn rate_of(doc: &Value, path: &str, substr: &str) -> f64 {
    for (key, rate) in rates(doc, path) {
        if key.contains(substr) {
            return rate;
        }
    }
    eprintln!("schema error: `{path}` has no engine row containing `{substr}`");
    exit(EXIT_SCHEMA_ERROR);
}

fn ab(a_path: &str, b_path: &str, substr: &str, min_ratio: f64) -> bool {
    let a = rate_of(&load_validated(a_path), a_path, substr);
    let b = rate_of(&load_validated(b_path), b_path, substr);
    let ratio = if a > 0.0 && b > 0.0 {
        (b / a).min(a / b)
    } else {
        0.0
    };
    let ok = ratio >= min_ratio;
    println!(
        "ab: `{substr}`: {a_path} {a:.2} vs {b_path} {b:.2} agreement {ratio:.3} (need >= \
         {min_ratio}) {}",
        if ok { "ok" } else { "FAILED" }
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut gate_paths: Option<(String, String)> = None;
    let mut ab_spec: Option<(String, String, String, f64)> = None;
    let mut min_ratio = 0.70_f64;
    let mut i = 0;
    let usage = "usage: validate_bench FILE.json... [--gate BASELINE FRESH] [--min-ratio R] \
                 [--ab A B SUBSTR RATIO]";
    let arg_at = |args: &[String], i: usize| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{usage}");
            exit(EXIT_SCHEMA_ERROR);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--gate" => {
                gate_paths = Some((arg_at(&args, i + 1), arg_at(&args, i + 2)));
                i += 3;
            }
            "--min-ratio" => {
                min_ratio = arg_at(&args, i + 1).parse().unwrap_or_else(|_| {
                    eprintln!("{usage}");
                    exit(EXIT_SCHEMA_ERROR);
                });
                i += 2;
            }
            "--ab" => {
                let ratio: f64 = arg_at(&args, i + 4).parse().unwrap_or_else(|_| {
                    eprintln!("{usage}");
                    exit(EXIT_SCHEMA_ERROR);
                });
                ab_spec = Some((
                    arg_at(&args, i + 1),
                    arg_at(&args, i + 2),
                    arg_at(&args, i + 3),
                    ratio,
                ));
                i += 5;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`\n{usage}");
                exit(EXIT_SCHEMA_ERROR);
            }
            file => {
                files.push(file.to_string());
                i += 1;
            }
        }
    }
    if files.is_empty() && gate_paths.is_none() && ab_spec.is_none() {
        eprintln!("{usage}");
        exit(EXIT_SCHEMA_ERROR);
    }

    for path in &files {
        load_validated(path);
        println!("valid: {path}");
    }
    let mut gates_ok = true;
    if let Some((baseline, fresh)) = gate_paths {
        gates_ok &= gate(&baseline, &fresh, min_ratio);
    }
    if let Some((a, b, substr, ratio)) = ab_spec {
        gates_ok &= ab(&a, &b, &substr, ratio);
    }
    if !gates_ok {
        exit(EXIT_GATE_FAILURE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_class_tightens_the_floor_and_nothing_else_does() {
        let cases = [
            (Some("ci-4core"), Some("ci-4core"), 0.80),
            (Some("ci-4core"), Some("ci-2core"), 0.70),
            (Some("ci-4core"), None, 0.70),
            (None, Some("ci-4core"), 0.70),
            (None, None, 0.70),
        ];
        for (base, fresh, want) in cases {
            assert_eq!(
                effective_min_ratio(0.70, base, fresh),
                want,
                "classes {base:?} vs {fresh:?}"
            );
        }
        // An explicitly stricter CLI floor is never relaxed.
        assert_eq!(
            effective_min_ratio(0.90, Some("x"), Some("x")),
            0.90,
            "same-class must not lower a stricter explicit floor"
        );
    }

    #[test]
    fn runner_class_of_reads_string_and_treats_null_as_unlabelled() {
        let doc = schema::parse("{\"runner_class\":\"ci-4core\"}").unwrap();
        assert_eq!(runner_class_of(&doc).as_deref(), Some("ci-4core"));
        let doc = schema::parse("{\"runner_class\":null}").unwrap();
        assert_eq!(runner_class_of(&doc), None);
        let doc = schema::parse("{}").unwrap();
        assert_eq!(runner_class_of(&doc), None);
    }
}
