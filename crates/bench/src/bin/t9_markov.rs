//! Regenerates experiment `t9_markov` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t9_markov.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. (This experiment runs on the per-agent engine
//! only; `PP_ENGINE` has no effect here.)

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::markov::run(preset, 900);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t9_markov");
}
