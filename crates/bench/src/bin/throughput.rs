//! Engine throughput comparison across the three tiers.
//!
//! Prints steps-per-second for the agent vs dense engines on the complete
//! graph at n ∈ {10⁴, 10⁶, 10⁸}, and for the generic-dyn vs packed engines
//! on ring/torus/random-regular at n = 10⁵, then writes the table to
//! `BENCH_throughput.json`. Run with `PP_PRESET=full` for longer
//! measurement windows.
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("throughput", |preset| {
        pp_bench::throughput::run(preset, 1600)
    });
}
