//! Engine throughput comparison across the three tiers.
//!
//! Prints steps-per-second for the agent vs dense engines on the complete
//! graph at n ∈ {10⁴, 10⁶, 10⁸}, and for the generic-dyn vs packed engines
//! on ring/torus/random-regular at n = 10⁵, then writes the table to
//! `BENCH_throughput.json`. Run with `PP_PRESET=full` for longer
//! measurement windows.

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::throughput::run(preset, 1600);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "throughput");
}
