//! Engine throughput comparison: agent-based vs dense (count-based).
//!
//! Prints steps-per-second for both engines at n ∈ {10⁴, 10⁶, 10⁸} and
//! writes the table to `BENCH_throughput.json`. Run with `PP_PRESET=full`
//! for longer measurement windows.

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::throughput::run(preset, 1600);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "throughput");
}
