//! Regenerates experiment `t2_convergence_w` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t2_convergence_w.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. `PP_ENGINE=agent` forces the per-agent engine for
//! complete-graph measurements (the default is the dense engine).

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::convergence::run_w_sweep(preset, 200);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t2_convergence_w");
}
