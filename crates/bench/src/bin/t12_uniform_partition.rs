//! Regenerates experiment `t12_uniform_partition` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::uniform_partition::run(preset, 1200).print();
}
