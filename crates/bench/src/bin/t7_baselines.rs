//! Regenerates experiment `t7_baselines` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t7_baselines.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. (This experiment runs on the per-agent engine
//! only; `PP_ENGINE` has no effect here.)
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("t7_baselines", |preset| {
        pp_bench::experiments::baselines::run(preset, 700)
    });
}
