//! Regenerates experiment `t5_fairness` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t5_fairness.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. (This experiment runs on the per-agent engine
//! only; `PP_ENGINE` has no effect here.)

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::fairness::run(preset, 500);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t5_fairness");
}
