//! Regenerates experiment `t15_sbm_blocks` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t15_sbm_blocks.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the `n = 65 536` scale recorded in EXPERIMENTS.md;
//! the default is the quick preset. `PP_ENGINE` selects the tier (packed
//! by default; `sharded` aligns shards with the community-contiguous
//! blocks).
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("t15_sbm_blocks", |preset| {
        pp_bench::experiments::sbm::run(preset, 1_500)
    });
}
