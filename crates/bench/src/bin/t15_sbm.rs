//! Regenerates experiment `t15_sbm_blocks` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t15_sbm_blocks.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the `n = 65 536` scale recorded in EXPERIMENTS.md;
//! the default is the quick preset. `PP_ENGINE` selects the tier (packed
//! by default; `sharded` aligns shards with the community-contiguous
//! blocks).

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::sbm::run(preset, 1_500);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t15_sbm_blocks");
}
