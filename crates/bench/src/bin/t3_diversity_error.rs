//! Regenerates experiment `t3_diversity_error` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::diversity::run(preset, 300).print();
}
