//! Regenerates experiment `t3_diversity_error` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t3_diversity_error.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. `PP_ENGINE=agent` forces the per-agent engine for
//! complete-graph measurements (the default is the dense engine).
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("t3_diversity_error", |preset| {
        pp_bench::experiments::diversity::run(preset, 300)
    });
}
