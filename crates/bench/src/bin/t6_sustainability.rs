//! Regenerates experiment `t6_sustainability` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::sustainability::run(preset, 600).print();
}
