//! Regenerates experiment `t14_adversary` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t14_adversary.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. The grid itself sweeps **all** engine tiers —
//! every shock and churn measurement runs on agent, dense, packed, turbo,
//! and sharded through the generic `Engine` path.
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("t14_adversary", |preset| {
        pp_bench::experiments::adversary::run(preset, 1_400)
    });
}
