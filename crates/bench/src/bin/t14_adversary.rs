//! Regenerates experiment `t14_adversary` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t14_adversary.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. The grid itself sweeps **all** engine tiers —
//! every shock and churn measurement runs on agent, dense, packed, turbo,
//! and sharded through the generic `Engine` path.

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::adversary::run(preset, 1_400);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t14_adversary");
}
