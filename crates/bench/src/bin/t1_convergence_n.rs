//! Regenerates experiment `t1_convergence_n` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::convergence::run_n_sweep(preset, 100).print();
}
