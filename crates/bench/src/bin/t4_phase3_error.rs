//! Regenerates experiment `t4_phase3_error` (see EXPERIMENTS.md).
//!
//! Run with `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md;
//! the default is the quick preset.

fn main() {
    let preset = pp_bench::Preset::from_env();
    pp_bench::experiments::phase3::run(preset, 400).print();
}
