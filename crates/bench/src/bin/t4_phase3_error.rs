//! Regenerates experiment `t4_phase3_error` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t4_phase3_error.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. (This experiment runs on the per-agent engine
//! only; `PP_ENGINE` has no effect here.)

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::phase3::run(preset, 400);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t4_phase3_error");
}
