//! Regenerates experiment `t10_topologies` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t10_topologies.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Runs on the packed
//! fast-path engine (`pp_engine::PackedSimulator` over CSR/structured
//! topologies): quick preset covers `n = 1024` (the old full scale), full
//! preset `n = 65 536` across all seven families.
//!
//! Output follows the result-JSON v1 envelope (EXPERIMENTS.md
//! "Observability"): exit code 0 on success, 2 on schema error. With a
//! `--features obs` build, `PP_OBS` selects a recorder sink
//! (`table`/`jsonl`/`json`).
fn main() {
    pp_bench::output::run_bin("t10_topologies", |preset| {
        pp_bench::experiments::topologies::run(preset, 1000)
    });
}
