//! Regenerates experiment `t10_topologies` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t10_topologies.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Run with
//! `PP_PRESET=full` for the scales recorded in EXPERIMENTS.md; the default
//! is the quick preset. `PP_ENGINE=agent` forces the per-agent engine for
//! complete-graph measurements (the default is the dense engine).

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::topologies::run(preset, 1000);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t10_topologies");
}
