//! Regenerates experiment `t10_topologies` (see EXPERIMENTS.md).
//!
//! Prints the report table and writes it to `BENCH_t10_topologies.json` (in
//! `PP_BENCH_DIR` if set, else the working directory). Runs on the packed
//! fast-path engine (`pp_engine::PackedSimulator` over CSR/structured
//! topologies): quick preset covers `n = 1024` (the old full scale), full
//! preset `n = 65 536` across all seven families.

fn main() {
    let preset = pp_bench::Preset::from_env();
    let report = pp_bench::experiments::topologies::run(preset, 1000);
    report.print();
    pp_bench::output::write_report_or_warn(&report, "t10_topologies");
}
