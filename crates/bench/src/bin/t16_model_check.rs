//! t16: the fail-closed model-check gate.
//!
//! Unlike the other bins this one owns its `main`: the gate's contract is
//! process exit code 3 ([`EXIT_GATE_FAILURE`]) with the counterexample in
//! the written artifact, which [`pp_bench::output::run_bin`] (exit 0/2
//! only) cannot express. The envelope flow is otherwise identical.
//!
//! `PP_CHECK_INJECT=1` additionally runs the known-bad
//! `BuggedDiversification`; the run must then exit 3 — CI's `check-smoke`
//! job asserts exactly that.

use pp_bench::output::{self, EXIT_GATE_FAILURE, EXIT_OK, EXIT_SCHEMA_ERROR};
use std::time::Instant;

fn main() {
    pp_obs::init_from_env();
    let preset = pp_bench::Preset::from_env();
    let inject = std::env::var("PP_CHECK_INJECT")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let start = Instant::now();
    let (report, gate_failed) = pp_bench::experiments::model_check::run(preset, inject);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    report.print();
    let recorder_json = if pp_obs::sink() == pp_obs::Sink::Json {
        Some(pp_obs::dump().to_json())
    } else {
        None
    };
    let json = output::result_json_v1(
        "t16_model_check",
        &report,
        preset.name(),
        wall_ms,
        recorder_json.as_deref(),
    );
    if let Err(e) = output::validate_json(&json) {
        eprintln!("error: refusing to write invalid result JSON for `t16_model_check`: {e}");
        std::process::exit(EXIT_SCHEMA_ERROR);
    }
    match output::write_json("t16_model_check", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write BENCH_t16_model_check.json: {err}"),
    }
    pp_obs::flush_to_stderr();
    std::process::exit(if gate_failed {
        EXIT_GATE_FAILURE
    } else {
        EXIT_OK
    });
}
