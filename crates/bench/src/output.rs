//! Machine-readable experiment output.
//!
//! Every `t*` binary writes its [`Report`] to `BENCH_<name>.json` (in
//! `PP_BENCH_DIR` if set, else the working directory) next to the
//! plain-text table it prints, so downstream tooling can diff runs without
//! scraping stdout. The writer is dependency-free: reports are flat
//! (title, columns, string rows, notes), so the JSON is assembled by hand.

use crate::experiments::Report;
use std::io::Write;
use std::path::PathBuf;

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: impl IntoIterator<Item = impl AsRef<str>>) -> String {
    let quoted: Vec<String> = items
        .into_iter()
        .map(|s| format!("\"{}\"", escape(s.as_ref())))
        .collect();
    format!("[{}]", quoted.join(", "))
}

/// Renders a [`Report`] as a JSON document.
pub fn report_to_json(report: &Report) -> String {
    let rows: Vec<String> = report
        .table
        .rows()
        .iter()
        .map(|row| string_array(row.iter()))
        .collect();
    format!(
        "{{\n  \"title\": \"{}\",\n  \"columns\": {},\n  \"rows\": [\n    {}\n  ],\n  \"notes\": {}\n}}\n",
        escape(&report.title),
        string_array(report.table.header().iter()),
        rows.join(",\n    "),
        string_array(report.notes.iter()),
    )
}

/// The output path for experiment `name`: `$PP_BENCH_DIR/BENCH_<name>.json`
/// (or the working directory when `PP_BENCH_DIR` is unset).
pub fn bench_path(name: &str) -> PathBuf {
    let dir = std::env::var("PP_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    PathBuf::from(dir).join(format!("BENCH_{name}.json"))
}

/// Writes `report` to `dir/BENCH_<name>.json`; returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_report_to(
    report: &Report,
    dir: &std::path::Path,
    name: &str,
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(report_to_json(report).as_bytes())?;
    Ok(path)
}

/// Writes `report` to [`bench_path`]`(name)`; returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_report(report: &Report, name: &str) -> std::io::Result<PathBuf> {
    let path = bench_path(name);
    let mut file = std::fs::File::create(&path)?;
    file.write_all(report_to_json(report).as_bytes())?;
    Ok(path)
}

/// Writes `report` to `BENCH_<name>.json`, printing a confirmation line (or
/// a warning on failure — experiment binaries should still exit 0 when the
/// working directory is read-only).
pub fn write_report_or_warn(report: &Report, name: &str) {
    match write_report(report, name) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write BENCH_{name}.json: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_stats::Table;

    fn sample_report() -> Report {
        let mut table = Table::new(["n", "weights"]);
        table.row(["1024", "(1,3.0)"]);
        let mut report = Report::new("demo \"quoted\"", table);
        report.note("slope = 1.0\nsecond line");
        report
    }

    #[test]
    fn json_shape_and_escaping() {
        let json = report_to_json(&sample_report());
        assert!(json.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"columns\": [\"n\", \"weights\"]"));
        // Cells containing commas survive (the reason this is not CSV).
        assert!(json.contains("\"(1,3.0)\""));
        assert!(json.contains("slope = 1.0\\nsecond line"));
        // Balanced braces and brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn write_report_roundtrip() {
        // Uses the explicit-directory writer: mutating PP_BENCH_DIR here
        // would race sibling tests that read the environment concurrently.
        let dir = std::env::temp_dir().join("pp_bench_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_report_to(&sample_report(), &dir, "unit_test").unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"rows\""));
        std::fs::remove_file(path).unwrap();
    }
}
