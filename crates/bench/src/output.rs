//! The result-JSON v1 writer: one machine-readable envelope for every bin.
//!
//! Every `t*` binary and the throughput bench go through [`run_bin`], which
//! runs the experiment, prints the human table, wraps the [`Report`] in the
//! versioned envelope documented in [`crate::schema`], **self-validates** it
//! with the hand-rolled parser, and writes `BENCH_<name>.json` (into
//! `PP_BENCH_DIR`, created if missing, else the working directory).
//!
//! Exit codes are part of the contract (EXPERIMENTS.md "Observability"):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | run completed, envelope written (or write warned on read-only dirs) |
//! | 2    | schema error — the envelope failed v1 validation |
//! | 3    | gate failure — a regression/A-B gate tripped (`validate_bench`) |
//!
//! Cells from [`pp_stats::Table`] are strings; the writer types them:
//! integer-looking cells become JSON integers, finite float-looking cells
//! become JSON numbers, everything else stays a string. String escaping is
//! shared with the recorder ([`pp_obs::json`]), so the workspace has exactly
//! one JSON escaper.

use crate::experiments::Report;
use crate::schema;
use pp_obs::json::quote;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The envelope version this writer emits.
pub const SCHEMA_VERSION: u32 = 1;

/// Process exit code: run completed and the envelope validated.
pub const EXIT_OK: i32 = 0;
/// Process exit code: the result JSON failed v1 schema validation.
pub const EXIT_SCHEMA_ERROR: i32 = 2;
/// Process exit code: a regression or A/B gate failed.
pub const EXIT_GATE_FAILURE: i32 = 3;

fn string_array(items: impl IntoIterator<Item = impl AsRef<str>>) -> String {
    let quoted: Vec<String> = items.into_iter().map(|s| quote(s.as_ref())).collect();
    format!("[{}]", quoted.join(", "))
}

/// Types a table cell for the envelope: integers and finite floats become
/// JSON numbers (only when the text round-trips, so `007` or `1_000` stay
/// strings), everything else is a JSON string.
pub fn json_cell(cell: &str) -> String {
    let t = cell.trim();
    if let Ok(i) = t.parse::<i64>() {
        if i.to_string() == t {
            return i.to_string();
        }
    }
    let digits = t.trim_start_matches(['+', '-']);
    let leading_zero = digits.len() > 1 && digits.starts_with('0') && !digits.starts_with("0.");
    if !leading_zero
        && t.bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        if let Ok(x) = t.parse::<f64>() {
            if x.is_finite() {
                return format_f64(x);
            }
        }
    }
    quote(cell)
}

/// Formats a finite float as a JSON number (Rust's shortest round-trip
/// `Display`, with a `.0` appended to integral values so the cell stays
/// visibly a float).
fn format_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

/// The hardware-class label this process stamps into envelopes:
/// `PP_RUNNER_CLASS` when set and non-empty, else `None` (written as
/// `null`). Free-form — CI sets e.g. `ci-4core` so the regression gate
/// can tell same-hardware comparisons (tight band) from cross-hardware
/// ones (loose band).
pub fn runner_class() -> Option<String> {
    std::env::var("PP_RUNNER_CLASS")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Renders a [`Report`] as a result-JSON v1 envelope.
///
/// `recorder_json` is the pre-rendered [`pp_obs::Dump::to_json`] object when
/// `PP_OBS=json`, else `None` (serialized as `null`).
pub fn result_json_v1(
    name: &str,
    report: &Report,
    preset: &str,
    wall_ms: f64,
    recorder_json: Option<&str>,
) -> String {
    let rows: Vec<String> = report
        .table
        .rows()
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|c| json_cell(c)).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    let params: Vec<String> = report
        .params
        .iter()
        .map(|(k, v)| format!("{}: {}", quote(k), json_cell(v)))
        .collect();
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"name\": {name},\n  \"title\": {title},\n  \
         \"engine\": {engine},\n  \"preset\": {preset},\n  \"params\": {{{params}}},\n  \
         \"columns\": {columns},\n  \"rows\": [\n    {rows}\n  ],\n  \"notes\": {notes},\n  \
         \"wall_ms\": {wall_ms},\n  \"steps_per_sec\": {rate},\n  \
         \"runner_class\": {class},\n  \"recorder\": {recorder}\n}}\n",
        name = quote(name),
        title = quote(&report.title),
        engine = match &report.engine {
            Some(e) => quote(e),
            None => "null".to_string(),
        },
        preset = quote(preset),
        params = params.join(", "),
        columns = string_array(report.table.header().iter()),
        rows = rows.join(",\n    "),
        notes = string_array(report.notes.iter()),
        wall_ms = format_f64(wall_ms.max(0.0)),
        rate = match report.steps_per_sec {
            Some(r) if r.is_finite() && r >= 0.0 => format_f64(r),
            _ => "null".to_string(),
        },
        class = match runner_class() {
            Some(c) => quote(&c),
            None => "null".to_string(),
        },
        recorder = recorder_json.unwrap_or("null"),
    )
}

/// The output path for experiment `name`: `$PP_BENCH_DIR/BENCH_<name>.json`
/// (or the working directory when `PP_BENCH_DIR` is unset).
pub fn bench_path(name: &str) -> PathBuf {
    let dir = std::env::var("PP_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    PathBuf::from(dir).join(format!("BENCH_{name}.json"))
}

/// Writes `json` to `dir/BENCH_<name>.json`, **creating the directory** if
/// it does not exist; returns the path written.
///
/// # Errors
///
/// Returns an error naming the directory when it cannot be created, or
/// propagates the write failure.
pub fn write_json_to(dir: &Path, name: &str, json: &str) -> std::io::Result<PathBuf> {
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(dir).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot create bench dir `{}`: {e}", dir.display()),
            )
        })?;
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    Ok(path)
}

/// Writes `json` to [`bench_path`]`(name)`, creating `PP_BENCH_DIR` if it
/// does not exist (previously a missing directory made every write fail
/// silently at the `File::create`).
///
/// # Errors
///
/// See [`write_json_to`].
pub fn write_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let path = bench_path(name);
    let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
    write_json_to(&dir, name, json)
}

/// Validates `json` against the v1 schema.
///
/// # Errors
///
/// Returns the first parse or schema violation, human-readable.
pub fn validate_json(json: &str) -> Result<(), String> {
    let doc = schema::parse(json).map_err(|e| e.to_string())?;
    schema::validate_v1(&doc)
}

/// The standard main body of every experiment bin: validates `PP_OBS`,
/// reads the preset, runs `f`, prints the report, and writes the
/// self-validated result-JSON v1 envelope to `BENCH_<name>.json`. Never
/// returns; the process exits with [`EXIT_OK`] or [`EXIT_SCHEMA_ERROR`].
///
/// A failed *write* (e.g. read-only working directory) warns but still
/// exits 0 — the run itself succeeded, and CI treats the artifact as
/// optional in that configuration.
pub fn run_bin(name: &str, f: impl FnOnce(crate::Preset) -> Report) -> ! {
    pp_obs::init_from_env();
    let preset = crate::Preset::from_env();
    let start = Instant::now();
    let mut report = f(preset);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    report.print();
    if report.engine.is_none() {
        // Single-engine experiments run on the tier PP_ENGINE selects;
        // multi-engine sweeps set their own label (e.g. "multi").
        report.engine = Some(crate::EngineKind::from_env().name().to_string());
    }
    let recorder_json = if pp_obs::sink() == pp_obs::Sink::Json {
        Some(pp_obs::dump().to_json())
    } else {
        None
    };
    let json = result_json_v1(
        name,
        &report,
        preset.name(),
        wall_ms,
        recorder_json.as_deref(),
    );
    if let Err(e) = validate_json(&json) {
        eprintln!("error: refusing to write invalid result JSON for `{name}`: {e}");
        std::process::exit(EXIT_SCHEMA_ERROR);
    }
    match write_json(name, &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write BENCH_{name}.json: {err}"),
    }
    pp_obs::flush_to_stderr();
    std::process::exit(EXIT_OK);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_stats::Table;

    fn sample_report() -> Report {
        let mut table = Table::new(["n", "weights", "err"]);
        table.row(["1024", "(1,3.0)", "0.0316"]);
        table.row(["2048", "naïve 🦀", "-1.5e3"]);
        let mut report = Report::new("demo \"quoted\"", table);
        report.note("slope = 1.0\nsecond line");
        report.set_engine("dense");
        report.param("seed", 100);
        report.param("topology", "complete");
        report
    }

    #[test]
    fn envelope_validates_and_escapes() {
        let json = result_json_v1("unit_demo", &sample_report(), "quick", 12.5, None);
        validate_json(&json).expect("writer must emit valid v1");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("demo \\\"quoted\\\""));
        assert!(json.contains("slope = 1.0\\nsecond line"));
        // Typed cells: ints as ints, floats as floats, text quoted.
        assert!(json.contains("[1024, \"(1,3.0)\", 0.0316]"));
        assert!(json.contains("[2048, \"naïve 🦀\", -1500.0]"));
        assert!(json.contains("\"seed\": 100"));
    }

    #[test]
    fn cells_round_trip_through_the_parser() {
        let json = result_json_v1("unit_demo", &sample_report(), "quick", 1.0, None);
        let doc = schema::parse(&json).unwrap();
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[0].as_f64(), Some(1024.0));
        assert_eq!(
            rows[0].as_arr().unwrap()[1].as_str(),
            Some("(1,3.0)"),
            "comma cells stay strings"
        );
        assert_eq!(rows[1].as_arr().unwrap()[1].as_str(), Some("naïve 🦀"));
        assert_eq!(rows[1].as_arr().unwrap()[2].as_f64(), Some(-1500.0));
        assert_eq!(
            doc.get("params").unwrap().get("seed").unwrap().as_f64(),
            Some(100.0)
        );
    }

    #[test]
    fn json_cell_typing_rules() {
        assert_eq!(json_cell("42"), "42");
        assert_eq!(json_cell("-7"), "-7");
        assert_eq!(json_cell("0.5"), "0.5");
        assert_eq!(json_cell("1.5e3"), "1500.0");
        assert_eq!(json_cell("007"), "\"007\"", "leading zeros stay text");
        assert_eq!(json_cell("1_000"), "\"1_000\"");
        assert_eq!(json_cell("NaN"), "\"NaN\"", "non-finite stays text");
        assert_eq!(json_cell("inf"), "\"inf\"");
        assert_eq!(json_cell("3/4"), "\"3/4\"");
        assert_eq!(json_cell(""), "\"\"");
        assert_eq!(json_cell("1.2.3"), "\"1.2.3\"");
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let mut table = Table::new(["payload"]);
        let hostile = "quote:\" backslash:\\ newline:\n tab:\t bell:\u{7} unicode:héllo…🦀";
        table.row([hostile]);
        let mut report = Report::new("hostile", table);
        report.note(hostile);
        let json = result_json_v1("unit_hostile", &report, "quick", 0.0, None);
        validate_json(&json).expect("hostile strings must still validate");
        let doc = schema::parse(&json).unwrap();
        let cell = doc.get("rows").unwrap().as_arr().unwrap()[0]
            .as_arr()
            .unwrap()[0]
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(cell, hostile, "escape/parse must round-trip exactly");
        assert_eq!(
            doc.get("notes").unwrap().as_arr().unwrap()[0].as_str(),
            Some(hostile)
        );
    }

    #[test]
    fn recorder_embeds_as_object() {
        let dump_json =
            "{\"counters\":{\"x\":1},\"histograms\":{},\"events\":[],\"dropped_events\":0}";
        let json = result_json_v1("unit_rec", &sample_report(), "full", 3.0, Some(dump_json));
        validate_json(&json).unwrap();
        let doc = schema::parse(&json).unwrap();
        assert_eq!(
            doc.get("recorder")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("x")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn runner_class_rides_the_envelope() {
        // Single test owns PP_RUNNER_CLASS (sibling tests never set it),
        // so the unset → set → unset sequence is race-free in practice.
        std::env::remove_var("PP_RUNNER_CLASS");
        let json = result_json_v1("unit_class", &sample_report(), "quick", 1.0, None);
        validate_json(&json).unwrap();
        assert!(json.contains("\"runner_class\": null"));

        std::env::set_var("PP_RUNNER_CLASS", "ci-4core");
        let json = result_json_v1("unit_class", &sample_report(), "quick", 1.0, None);
        std::env::remove_var("PP_RUNNER_CLASS");
        validate_json(&json).unwrap();
        let doc = schema::parse(&json).unwrap();
        assert_eq!(
            doc.get("runner_class").unwrap().as_str(),
            Some("ci-4core"),
            "the label must round-trip through the parser"
        );
    }

    #[test]
    fn write_creates_missing_directory() {
        // The satellite fix: PP_BENCH_DIR pointing at a not-yet-existing
        // directory must be created, not silently fail the write. Uses the
        // explicit-directory writer (mutating PP_BENCH_DIR would race
        // sibling tests reading the environment).
        let dir = std::env::temp_dir()
            .join("pp_bench_output_test")
            .join("nested")
            .join("deeper");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!dir.exists());
        let json = result_json_v1("unit_mkdir", &sample_report(), "quick", 1.0, None);
        let path = write_json_to(&dir, "unit_mkdir", &json).unwrap();
        assert!(path.ends_with("BENCH_unit_mkdir.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        validate_json(&body).unwrap();
        std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).unwrap();
    }

    #[test]
    fn empty_table_still_validates() {
        let report = Report::new("empty", Table::new(["only_header"]));
        let json = result_json_v1("unit_empty", &report, "quick", 0.0, None);
        validate_json(&json).expect("zero-row envelope must validate");
    }
}
