//! Experiment harness reproducing every quantitative claim of
//! *Diversity, Fairness, and Sustainability in Population Protocols*.
//!
//! The paper is a theory paper: its evaluation is a set of theorems plus the
//! Fig. 1 phase timeline. Each experiment here regenerates the quantitative
//! *shape* of one claim — scaling exponents, concentration widths,
//! crossovers against baselines — as a plain-text table. The experiment ids
//! match DESIGN.md §4 and EXPERIMENTS.md:
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | `fig1_phases` | Fig. 1 timeline (τ₁, τ₂, τ₃) | [`experiments::fig1`] |
//! | `t1_convergence_n` | Thm 1.3, scaling in `n` | [`experiments::convergence`] |
//! | `t2_convergence_w` | Thm 1.3, scaling in `w` | [`experiments::convergence`] |
//! | `t3_diversity_error` | Eq. (1), `Õ(1/√n)` | [`experiments::diversity`] |
//! | `t4_phase3_error` | Thm 2.13, `n^{3/4} log^{1/4} n` | [`experiments::phase3`] |
//! | `t5_fairness` | Thm 2.12 | [`experiments::fairness`] |
//! | `t6_sustainability` | Def 1.1(3) + robustness | [`experiments::sustainability`] |
//! | `t7_baselines` | consensus kills diversity | [`experiments::baselines`] |
//! | `t8_derandomised` | §1.2 open problem | [`experiments::derandomised`] |
//! | `t9_markov` | §2.4 chain approximation | [`experiments::markov`] |
//! | `t10_topologies` | future work: other graphs | [`experiments::topologies`] |
//! | `t11_lower_bound` | Ω(n log n) broadcast | [`experiments::lower_bound`] |
//! | `t12_uniform_partition` | `w_i = 1` special case | [`experiments::uniform_partition`] |
//! | `t13_stability` | Thm 2.5 stability window | [`experiments::stability`] |
//! | `t14_adversary` | robustness × engine-tier grid | [`experiments::adversary`] |
//! | `t15_sbm_blocks` | diversity within SBM communities | [`experiments::sbm`] |
//! | `ablations` | design-choice knockouts | [`experiments::ablations`] |
//! | `drift_lemmas` | Lemmas 2.9/2.10/4.1 contraction | [`experiments::drift`] |
//! | `throughput` | agent vs dense engine steps/s | [`throughput`] |
//!
//! Every experiment takes a [`Preset`] so the same code runs as a fast smoke
//! (`Preset::Quick`, used by `cargo bench` and tests) or at full scale
//! (`Preset::Full`, used by the `t*` binaries). Each binary also writes its
//! report to `BENCH_<name>.json` via [`output`].
//!
//! Measurements are driven by the engine selected through [`EngineKind`]
//! and built at exactly one dispatch point
//! ([`runner::build_engine`] / [`runner::build_graph_engine`]); every
//! experiment then drives a `Box<dyn pp_engine::Engine>` generically.
//! Complete-graph experiments default to the count-based `pp-dense`
//! engine (orders of magnitude faster at large `n`; see EXPERIMENTS.md
//! for the measured speedup table); `PP_ENGINE` selects `agent`,
//! `packed`, `turbo`, or `sharded` for any experiment, including the
//! adversarial ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod runner;
pub mod schema;
pub mod throughput;

pub use runner::{
    build_engine, build_graph_engine, converged_engine, converged_simulator, convergence_time,
    convergence_time_with, DivEngine, EngineKind, Preset,
};
