//! Engine throughput comparison across the engine tiers: generic agent
//! engine, packed general-graph fast path, turbo counter-based engine,
//! graph-partitioned sharded engine, count-based dense engine.
//!
//! Part 1 runs the Diversification protocol on the complete graph with the
//! generic and dense engines across population sizes. The dense engine's
//! amortised cost per step is `O(k²/(ε·n))`, so its advantage *grows* with
//! `n`; the `n = 10⁸` row is dense-only (10⁸ agent states would need ~1 GB
//! and hours of stepping — the point of the dense engine is that this row
//! completes in seconds).
//!
//! Part 2 measures the general-graph engines: the generic engine exactly
//! as the topology experiments used it (`Box<dyn Topology>` dispatch per
//! partner draw) versus [`PackedSimulator`] (bit-exact fast path) versus
//! [`TurboSimulator`] (counter-based relaxed-equivalence engine, `u8`
//! states) versus [`ShardedSimulator`] (graph-partitioned multi-core) on
//! ring, torus, and random-regular graphs at `n = 10⁵`.
//!
//! Part 3 is the multi-core acceptance row: turbo vs sharded at
//! `n = 10⁶` on the torus, with the sharded/turbo ratio and the core
//! count recorded in the notes (the CI jobs surface it per runner).
//!
//! Part 4 is the adversary fast path: churn-driven runs through the
//! generic `Engine` surface on the packed, turbo, and sharded tiers —
//! the workload the `Engine` refactor moved off the generic engine. The
//! churn overhead should be noise (one reset per `n/10` steps), so these
//! rows certify that adversarial workloads keep each tier's step rate.
//!
//! Part 5 is the recorder-overhead probe: the per-call cost of a
//! *disabled* `obs_count!` macro, reported in the `ns/call` column (its
//! `Msteps/s` cell is `-` — a nanosecond-scale guard branch is not a
//! simulation step rate, and the row is excluded from the regression
//! gates by name).
//!
//! Part 6 is the ensemble tier: a fixed workload of `R = 32` independent
//! replicas at `n = 10⁵` on the torus, run once through the work-stealing
//! scalar path (`replicate` + [`TurboSimulator`], one engine per seed)
//! and once through the lane-parallel path
//! ([`replicate_vec`] + `VecSimulator`, 32
//! seeds per step loop). Both rows report **replica-steps** per second —
//! equal simulated work, so the ratio is the ensemble speedup the vec
//! tier buys.
//!
//! Part 7 is the count-split scaling ladder: one fixed sharded workload
//! (torus at `n = 10⁶`, 8 shards, the default block for that size) run
//! at `P = 1, 2, 4, 8` worker threads through
//! [`ShardedSimulator::run_with_threads`]. The layout is pinned so every
//! row simulates the *identical* trajectory — the count-split scheduler
//! makes granted step counts a function of `(seed, block)` only — and
//! the rows differ purely in wall clock. The notes record the `p2/p1`
//! and `p4/p1` scaling plus the `p1/turbo` ratio (the serial-overhead
//! acceptance: `p1 ≥ 0.95× turbo`).

use crate::experiments::Report;
use crate::runner::{build_graph_engine, standard_weights, EngineKind, Preset};
use pp_adversary::Churn;
use pp_core::{init, Diversification};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::{
    pool, replicate, replicate_vec, PackedSimulator, ShardedSimulator, Simulator, TurboSimulator,
};
use pp_graph::{random_regular, Complete, Cycle, Topology, Torus2d};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One engine measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Time-steps simulated.
    pub steps: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Simulated time-steps per wall-clock second.
    pub fn steps_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.steps as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Shared wall-clock measurement loop: calls `run(batch)` until
/// `budget_secs` elapses, tallying the simulated steps. Every engine
/// measurement in this module funnels through here so methodology changes
/// (batch size, warm-up, clock) apply to all comparisons at once.
fn measure_loop(batch: u64, budget_secs: f64, mut run: impl FnMut(u64)) -> Measurement {
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed().as_secs_f64() < budget_secs {
        run(batch);
        steps += batch;
    }
    Measurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Times the agent-based engine: balanced all-dark start, chunks of `n`
/// steps until `budget_secs` of wall clock is spent.
pub fn measure_agent(n: usize, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights),
        Complete::new(n),
        states,
        seed,
    );
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the dense engine over a fixed workload of `rounds·n` steps from
/// the balanced all-dark start (covering both the all-dark transient and
/// the equilibrium regime).
pub fn measure_dense(
    n: u64,
    seed: u64,
    rounds: u64,
) -> (Measurement, DenseSimulator<Diversification>) {
    let weights = standard_weights();
    let config = CountConfig::all_dark_balanced(n, weights.len());
    let mut sim = DenseSimulator::new(Diversification::new(weights), config.to_classes(), seed);
    let steps = rounds * n;
    let start = Instant::now();
    sim.run(steps);
    (
        Measurement {
            steps,
            seconds: start.elapsed().as_secs_f64(),
        },
        sim,
    )
}

/// Times the generic engine on an arbitrary topology exactly as the
/// topology experiments used it before the fast path existed: boxed
/// `dyn Topology`, one virtual partner draw per interaction.
pub fn measure_agent_graph(
    topology: Box<dyn Topology>,
    seed: u64,
    budget_secs: f64,
) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(Diversification::new(weights), topology, states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the packed fast path on the same workload: monomorphized
/// topology, `u32` packed states, zero `dyn` dispatch per interaction.
pub fn measure_packed_graph<T: Topology>(topology: T, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = PackedSimulator::new(Diversification::new(weights), topology, &states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the relaxed-equivalence turbo engine on the same workload:
/// counter-based per-step randomness, branch-free partner draws and
/// transitions, `u8` state storage (`k = 4` fits a byte).
pub fn measure_turbo_graph<T: Topology>(topology: T, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim =
        TurboSimulator::<_, _, u8>::new(Diversification::new(weights), topology, &states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the graph-partitioned sharded engine on the same workload:
/// default shard/block layout (one shard per core, capped by population),
/// worker threads from the shared pool budget, `u8` state storage.
pub fn measure_sharded_graph<T: Topology>(topology: T, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim =
        ShardedSimulator::<_, _, u8>::new(Diversification::new(weights), topology, &states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// One general-graph engine comparison: generic-dyn vs packed vs turbo vs
/// sharded on the same topology. Returns
/// `(agent, packed, turbo, sharded)`.
#[allow(clippy::type_complexity)]
pub fn measure_graph_quartet<T: Topology + Clone + 'static>(
    topology: T,
    seed: u64,
    budget_secs: f64,
) -> (Measurement, Measurement, Measurement, Measurement) {
    let agent = measure_agent_graph(Box::new(topology.clone()), seed, budget_secs);
    let packed = measure_packed_graph(topology.clone(), seed, budget_secs);
    let turbo = measure_turbo_graph(topology.clone(), seed, budget_secs);
    let sharded = measure_sharded_graph(topology, seed, budget_secs);
    (agent, packed, turbo, sharded)
}

/// Runs the general-graph engine comparison at `n = 10⁵`: ring, torus,
/// and random-regular (CSR), generic-dyn vs packed vs turbo vs sharded.
/// Returns `(name, agent, packed, turbo, sharded)` rows.
#[allow(clippy::type_complexity)]
pub fn run_graph_suite(
    seed: u64,
    budget_secs: f64,
) -> Vec<(String, Measurement, Measurement, Measurement, Measurement)> {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let regular = random_regular(n, 8, &mut rng);
    let mut out = Vec::new();
    let (a, p, t, s) = measure_graph_quartet(Cycle::new(n), seed, budget_secs);
    out.push(("ring".to_string(), a, p, t, s));
    let (a, p, t, s) = measure_graph_quartet(Torus2d::new(250, 400), seed, budget_secs);
    out.push(("torus".to_string(), a, p, t, s));
    // The generic baseline runs the builder representation (`Vec<Vec>`
    // adjacency) t10 used before this fast path existed; the fast tiers
    // run its CSR lowering.
    let agent = measure_agent_graph(Box::new(regular.clone()), seed, budget_secs);
    let csr = regular.to_csr();
    let packed = measure_packed_graph(csr.clone(), seed, budget_secs);
    let turbo = measure_turbo_graph(csr.clone(), seed, budget_secs);
    let sharded = measure_sharded_graph(csr, seed, budget_secs);
    out.push((
        "random-regular(d=8)".to_string(),
        agent,
        packed,
        turbo,
        sharded,
    ));
    out
}

/// The turbo-vs-sharded comparison at `n = 10⁶` on the torus — the scale
/// of the multi-core acceptance target (`sharded ≥ 1.5× turbo on ≥ 2
/// cores`; single-core fallback within 0.9× of turbo). Returns
/// `(turbo, sharded)`.
pub fn run_sharded_scale(seed: u64, budget_secs: f64) -> (Measurement, Measurement) {
    let topology = Torus2d::new(1_000, 1_000);
    let turbo = measure_turbo_graph(topology, seed, budget_secs);
    let sharded = measure_sharded_graph(topology, seed, budget_secs);
    (turbo, sharded)
}

/// Shard count of the Part-7 scaling ladder — the top of its thread
/// range, so the `p8` row runs one thread per shard.
pub const SCALING_SHARDS: usize = 8;

/// Block length of the Part-7 ladder: the default block the sharded
/// tier picks at `n = 10⁶` (`(n/16).clamp(256, 16384)`), pinned here so
/// the ladder's trajectory stays fixed if the default moves.
pub const SCALING_BLOCK: u64 = 16_384;

/// Times the sharded engine on the Part-7 ladder workload (torus at
/// `n = 10⁶`, [`SCALING_SHARDS`] shards, [`SCALING_BLOCK`] block) with
/// an explicit worker-thread count, bypassing the shared pool budget.
/// Every thread count simulates the same trajectory — the count-split
/// schedule is a function of `(seed, block index)` alone — so the rows
/// measure scheduling overhead and parallel speedup, nothing else.
pub fn measure_sharded_scaling(threads: usize, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let topology = Torus2d::new(1_000, 1_000);
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim =
        ShardedSimulator::<_, _, u8>::new(Diversification::new(weights), topology, &states, seed)
            .with_layout(SCALING_SHARDS, SCALING_BLOCK);
    measure_loop(n as u64, budget_secs, |b| sim.run_with_threads(b, threads))
}

/// Times a churn-driven run through the generic `Engine` path: the
/// Diversification protocol on the `n = 10⁵` torus, one uniformly random
/// agent reset per `n/10` steps, on the tier selected by `kind`.
///
/// This is the adversary-on-the-fast-path measurement: the churn loop
/// (`pp_adversary::Churn::run`) is engine-generic, so the only per-tier
/// code is the constructor.
pub fn measure_churn_graph(kind: EngineKind, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let n = 100_000usize;
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = build_graph_engine(kind, &weights, Torus2d::new(250, 400), states, seed);
    let churn = Churn::new(n as u64 / 10, weights.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut steps = 0u64;
    let batch = n as u64; // ten churn events per batch
    while start.elapsed().as_secs_f64() < budget_secs {
        churn.run(&mut *sim, batch, &mut rng, |_, _| {});
        steps += batch;
    }
    Measurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Lanes per [`replicate_vec`] group in the Part-6 ensemble comparison —
/// the top of the 8–32 lane range, so one group covers the whole
/// replica set.
pub const ENSEMBLE_LANES: usize = 32;

/// Times a fixed ensemble workload — `replicas` independent seeds, each
/// simulated for `steps` time-steps at `n = 10⁵` on the torus — through
/// the work-stealing scalar path: one `u8` turbo engine per seed,
/// scheduled by [`replicate`](pp_engine::replicate()). The returned `steps` field counts
/// **replica-steps** (summed over replicas), so rates compare 1:1 with
/// [`measure_replicate_vec`].
pub fn measure_replicate_turbo(replicas: usize, steps: u64, seed: u64) -> Measurement {
    let weights = standard_weights();
    let topology = Torus2d::new(250, 400);
    let states = init::all_dark_balanced(topology.len(), &weights);
    let protocol = Diversification::new(weights);
    let seeds: Vec<u64> = (0..replicas as u64).map(|r| seed.wrapping_add(r)).collect();
    let start = Instant::now();
    let finished = replicate(seeds, |s| {
        let mut sim = TurboSimulator::<_, _, u8>::new(protocol.clone(), topology, &states, s);
        sim.run(steps);
        sim.step_count()
    });
    Measurement {
        steps: finished.iter().sum(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The same ensemble workload through the lane-parallel path:
/// [`replicate_vec`] packs the seeds into [`ENSEMBLE_LANES`]-lane
/// [`VecSimulator`](pp_engine::VecSimulator) groups, one shared schedule
/// walk driving all lanes of a group per step loop. Rates are
/// replica-steps per second, directly comparable with
/// [`measure_replicate_turbo`].
pub fn measure_replicate_vec(replicas: usize, steps: u64, seed: u64) -> Measurement {
    let weights = standard_weights();
    let topology = Torus2d::new(250, 400);
    let states = init::all_dark_balanced(topology.len(), &weights);
    let protocol = Diversification::new(weights);
    let seeds: Vec<u64> = (0..replicas as u64).map(|r| seed.wrapping_add(r)).collect();
    let start = Instant::now();
    let finished = replicate_vec::<_, _, u8, ENSEMBLE_LANES, _>(
        &protocol,
        &topology,
        &states,
        seed,
        &seeds,
        steps,
        |_seed, packed| packed.len() as u64,
    );
    Measurement {
        steps: steps.saturating_mul(finished.len() as u64),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Measures the per-call cost of a **disabled** recorder macro: the
/// `obs_count!` guard with no sink selected (or, without the `obs`
/// feature, compiled out entirely — the loop collapses to nothing and the
/// measured cost is ~0). Engine call sites are per-batch, so multiply by
/// calls-per-step (turbo: `2 / n`) to get the per-step overhead this
/// build pays for instrumentation it is not using.
pub fn measure_obs_probe(iters: u64) -> Measurement {
    let start = Instant::now();
    for i in 0..iters {
        pp_obs::obs_count!("bench.obs_probe", std::hint::black_box(i) & 1);
    }
    Measurement {
        steps: iters,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Runs the engine comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    let sizes: Vec<u64> = preset.pick(
        vec![10_000, 1_000_000, 100_000_000],
        vec![10_000, 1_000_000, 100_000_000],
    );
    let agent_budget = preset.pick(0.4, 2.0);
    let rounds = preset.pick(20u64, 40u64);
    // The agent engine at 10⁸ would need ~1 GB of states and minutes per
    // round; it is measured up to 10⁶ and the comparison row notes why.
    let agent_limit: u64 = 1_000_000;

    let mut table = Table::new([
        "n",
        "engine",
        "steps",
        "wall s",
        "Msteps/s",
        "speedup vs agent",
        "leap batches",
        "exact events",
        "ns/call",
    ]);
    let mut notes: Vec<String> = Vec::new();

    for &n in &sizes {
        let agent = if n <= agent_limit {
            let m = measure_agent(n as usize, seed, agent_budget);
            table.row([
                n.to_string(),
                "agent".to_string(),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "1".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            Some(m)
        } else {
            table.row([
                n.to_string(),
                "agent".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            None
        };

        let (dense, sim) = measure_dense(n, seed, rounds);
        let speedup = agent
            .map(|a| fmt_f64(dense.steps_per_second() / a.steps_per_second()))
            .unwrap_or_else(|| "n/a (agent infeasible)".to_string());
        table.row([
            n.to_string(),
            "dense".to_string(),
            dense.steps.to_string(),
            fmt_f64(dense.seconds),
            fmt_f64(dense.steps_per_second() / 1e6),
            speedup.clone(),
            sim.leap_batches().to_string(),
            sim.exact_events().to_string(),
            "-".to_string(),
        ]);
        if let Some(a) = agent {
            notes.push(format!(
                "n = {n}: dense {:.3e} steps/s vs agent {:.3e} steps/s ({}x)",
                dense.steps_per_second(),
                a.steps_per_second(),
                speedup
            ));
        } else {
            notes.push(format!(
                "n = {n}: dense simulated {} steps ({} parallel rounds) in {:.2} s — \
                 agent engine skipped (needs ~{} GB of per-agent state)",
                dense.steps,
                rounds,
                dense.seconds,
                (n as f64 * 8.0 / 1e9).ceil()
            ));
        }
    }

    // Part 2: the general-graph engines, on the topologies the t10
    // experiments sweep.
    let graph_budget = preset.pick(0.15, 0.6);
    let mut turbo_torus_rate = None;
    for (name, agent, packed, turbo, sharded) in run_graph_suite(seed, graph_budget) {
        if name == "torus" {
            turbo_torus_rate = Some(turbo.steps_per_second());
        }
        table.row([
            "100000".to_string(),
            format!("agent-dyn {name}"),
            agent.steps.to_string(),
            fmt_f64(agent.seconds),
            fmt_f64(agent.steps_per_second() / 1e6),
            "1".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        let speedup = packed.steps_per_second() / agent.steps_per_second();
        table.row([
            "100000".to_string(),
            format!("packed {name}"),
            packed.steps.to_string(),
            fmt_f64(packed.seconds),
            fmt_f64(packed.steps_per_second() / 1e6),
            fmt_f64(speedup),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        let turbo_speedup = turbo.steps_per_second() / agent.steps_per_second();
        let vs_packed = turbo.steps_per_second() / packed.steps_per_second();
        table.row([
            "100000".to_string(),
            format!("turbo {name}"),
            turbo.steps.to_string(),
            fmt_f64(turbo.seconds),
            fmt_f64(turbo.steps_per_second() / 1e6),
            fmt_f64(turbo_speedup),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        let sharded_speedup = sharded.steps_per_second() / agent.steps_per_second();
        let sharded_vs_turbo = sharded.steps_per_second() / turbo.steps_per_second();
        table.row([
            "100000".to_string(),
            format!("sharded {name}"),
            sharded.steps.to_string(),
            fmt_f64(sharded.seconds),
            fmt_f64(sharded.steps_per_second() / 1e6),
            fmt_f64(sharded_speedup),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        notes.push(format!(
            "{name} @ n = 10^5: sharded {:.3e} vs turbo {:.3e} vs packed {:.3e} vs agent-dyn {:.3e} steps/s \
             (sharded/turbo {sharded_vs_turbo:.2}x, turbo/packed {vs_packed:.2}x, packed/agent {speedup:.2}x)",
            sharded.steps_per_second(),
            turbo.steps_per_second(),
            packed.steps_per_second(),
            agent.steps_per_second(),
        ));
    }

    // Part 3: the multi-core acceptance scale — turbo vs sharded at
    // n = 10⁶ on the torus, with however many cores this runner grants.
    let turbo_scale_rate;
    {
        let (turbo, sharded) = run_sharded_scale(seed, preset.pick(0.3, 1.0));
        turbo_scale_rate = turbo.steps_per_second();
        let ratio = sharded.steps_per_second() / turbo.steps_per_second();
        for (engine, m) in [("turbo", &turbo), ("sharded", &sharded)] {
            table.row([
                "1000000".to_string(),
                format!("{engine} torus"),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        notes.push(format!(
            "torus @ n = 10^6: sharded {:.3e} vs turbo {:.3e} steps/s (sharded/turbo {ratio:.2}x \
             on {} available core(s); target ≥ 1.5x on ≥ 2 cores, ≥ 0.9x single-core fallback)",
            sharded.steps_per_second(),
            turbo.steps_per_second(),
            pool::parallelism(),
        ));
    }

    // Part 4: adversarial churn through the generic Engine path, per fast
    // tier — the workload × engine combinations the Engine trait makes a
    // constructor argument.
    {
        let churn_budget = preset.pick(0.15, 0.6);
        let mut rates = Vec::new();
        for kind in [
            EngineKind::Packed,
            EngineKind::Turbo,
            EngineKind::Sharded,
            EngineKind::Vec,
        ] {
            let m = measure_churn_graph(kind, seed, churn_budget);
            table.row([
                "100000".to_string(),
                format!("{}+churn torus", kind.name()),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            rates.push((kind, m.steps_per_second()));
        }
        let rate = |k: EngineKind| rates.iter().find(|(kk, _)| *kk == k).map(|&(_, r)| r);
        if let (Some(p), Some(t), Some(s)) = (
            rate(EngineKind::Packed),
            rate(EngineKind::Turbo),
            rate(EngineKind::Sharded),
        ) {
            notes.push(format!(
                "churn (1 reset per n/10 steps) @ n = 10^5 torus: turbo {t:.3e} vs packed {p:.3e} \
                 vs sharded {s:.3e} steps/s (turbo+churn/packed+churn {:.2}x, sharded+churn/turbo+churn {:.2}x) \
                 — the adversary rides the fast tiers through the generic Engine path",
                t / p,
                s / t,
            ));
        }
    }

    // Part 5: the recorder-overhead probe — what the *disabled*
    // instrumentation path costs this build. Without the `obs` feature the
    // probe loop is compiled out (~0 ns/call); with it, one predictable
    // branch per macro call. Either way the per-step overhead on the turbo
    // torus row (2 calls per 10⁵-step batch) is far below the <1% target;
    // `disabled_recorder_overhead_under_one_percent` asserts it.
    {
        let iters = preset.pick(20_000_000u64, 100_000_000);
        let probe = measure_obs_probe(iters);
        let ns_per_call = probe.seconds * 1e9 / probe.steps as f64;
        // A step rate would be degenerate here (with the `obs` feature
        // off the probe loop compiles out and "steps"/second diverges);
        // the honest unit is ns/call, so the rate cell stays `-` and the
        // gates exclude this row by its engine name.
        table.row([
            "-".to_string(),
            "obs-probe".to_string(),
            probe.steps.to_string(),
            fmt_f64(probe.seconds),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            fmt_f64(ns_per_call),
        ]);
        let implied = turbo_torus_rate
            .map(|r| {
                let step_ns = 1e9 / r;
                let per_step_ns = 2.0 * ns_per_call / 100_000.0;
                format!(
                    "; implied turbo-torus overhead {:.5}% of a {:.2} ns step",
                    100.0 * per_step_ns / step_ns,
                    step_ns
                )
            })
            .unwrap_or_default();
        notes.push(format!(
            "obs: feature {}, sink {}; disabled obs_count! probe {:.4} ns/call over {} calls \
             (engine call sites are per-batch: turbo pays 2 calls per n-step batch){implied}",
            if pp_obs::FEATURE_ENABLED { "on" } else { "off" },
            pp_obs::sink().name(),
            ns_per_call,
            probe.steps,
        ));
    }

    // Part 6: the ensemble tier — a fixed workload of R = 32 replicas at
    // n = 10⁵ on the torus, work-stealing scalar replication vs the
    // lane-parallel vec path. Both rows count replica-steps, so their
    // ratio is the ensemble speedup at equal simulated work.
    {
        let replicas = ENSEMBLE_LANES;
        let per_replica = preset.pick(100_000u64, 2_000_000);
        let scalar = measure_replicate_turbo(replicas, per_replica, seed);
        let vec = measure_replicate_vec(replicas, per_replica, seed);
        let ratio = vec.steps_per_second() / scalar.steps_per_second();
        for (engine, m, speedup) in [
            ("replicate-turbo torus", &scalar, "1".to_string()),
            ("replicate-vec torus", &vec, fmt_f64(ratio)),
        ] {
            table.row([
                "100000".to_string(),
                engine.to_string(),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                speedup,
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        notes.push(format!(
            "ensemble (R = {replicas} replicas × {per_replica} steps) @ n = 10^5 torus: \
             replicate-vec {:.3e} vs replicate-turbo {:.3e} replica-steps/s \
             ({ratio:.2}x, {} lanes/group on {} available core(s))",
            vec.steps_per_second(),
            scalar.steps_per_second(),
            ENSEMBLE_LANES,
            pool::parallelism(),
        ));
    }

    // Part 7: the count-split scaling ladder — the same 8-shard sharded
    // workload at P = 1/2/4/8 worker threads. The pinned layout keeps
    // every row on the identical trajectory; the notes carry the scaling
    // ratios and the p1-vs-turbo serial-overhead acceptance.
    {
        let ladder_budget = preset.pick(0.2, 0.8);
        let mut rates = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let m = measure_sharded_scaling(threads, seed, ladder_budget);
            table.row([
                "1000000".to_string(),
                format!("sharded-p{threads} torus"),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            rates.push((threads, m.steps_per_second()));
        }
        let rate = |p: usize| rates.iter().find(|&&(t, _)| t == p).map(|&(_, r)| r);
        if let (Some(p1), Some(p2), Some(p4), Some(p8)) = (rate(1), rate(2), rate(4), rate(8)) {
            notes.push(format!(
                "count-split ladder @ n = 10^6 torus ({SCALING_SHARDS} shards, block {SCALING_BLOCK}): \
                 p1 {p1:.3e}, p2 {p2:.3e}, p4 {p4:.3e}, p8 {p8:.3e} steps/s \
                 (p2/p1 {:.2}x, p4/p1 {:.2}x, p8/p1 {:.2}x; p1/turbo {:.2}x, target ≥ 0.95x; \
                 {} available core(s) — scaling ratios are only meaningful when cores ≥ P)",
                p2 / p1,
                p4 / p1,
                p8 / p1,
                p1 / turbo_scale_rate,
                pool::parallelism(),
            ));
        }
    }

    let mut report = Report::new(
        "throughput (Diversification; complete graph: agent vs dense; general graphs: agent-dyn vs packed vs turbo vs sharded; +churn rows via the generic Engine path; +ensemble rows: replicate-turbo vs replicate-vec; weights = (1,1,2,4))",
        table,
    );
    for note in notes {
        report.note(note);
    }
    report.set_engine("multi");
    report.param("seed", seed);
    report.param("weights", "(1,1,2,4)");
    report.param("protocol", "diversification");
    if let Some(rate) = turbo_torus_rate {
        // The acceptance-row rate: turbo on the 250×400 torus at n = 10⁵.
        report.set_steps_per_sec(rate);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_engine_dominates_at_scale() {
        // A cut-down version of the benchmark's core claim: at n = 10⁶ the
        // dense engine is at least 100× faster per simulated step.
        let n: u64 = 1_000_000;
        let agent = measure_agent(n as usize, 9, 0.2);
        let (dense, _) = measure_dense(n, 9, 20);
        let speedup = dense.steps_per_second() / agent.steps_per_second();
        assert!(
            speedup >= 100.0,
            "dense speedup only {speedup:.1}x at n = 10^6 \
             (dense {:.3e} vs agent {:.3e} steps/s)",
            dense.steps_per_second(),
            agent.steps_per_second()
        );
    }

    #[test]
    fn engines_make_progress_on_general_graphs() {
        // Release-build ratios on the reference box (recorded in
        // BENCH_throughput.json and EXPERIMENTS.md): packed/agent ring
        // ≈ 2×, torus ≈ 1.6×, random-regular ≈ 2.6×; turbo/packed ring
        // ≈ 0.7×, torus ≈ 2.4×, random-regular ≈ 1.5×. (Packed is pinned
        // to the serial RNG stream by bit-exact equivalence; turbo's
        // counter-based randomness wins exactly where packed was branch-
        // or dispatch-bound, and loses modestly where packed already sits
        // at the memory floor — see EXPERIMENTS.md.)
        //
        // Wall-clock ratios are only meaningful with optimizations on and
        // the machine otherwise idle: the dev profile disables the
        // inlining the fast paths exist to enable, and sibling tests in
        // the parallel harness can deflate a 0.15 s window. So the ratio
        // gate is opt-in — `PP_PERF_ASSERT=1 cargo test --release -p
        // pp-bench engines_make_progress -- --test-threads=1` — with
        // floors below the weakest observed idle-box ratios; the default
        // suite asserts progress only, and the CI throughput job records
        // the full numbers on every run.
        let assert_ratio = !cfg!(debug_assertions) && std::env::var("PP_PERF_ASSERT").is_ok();
        for (name, agent, packed, turbo, sharded) in run_graph_suite(5, 0.15) {
            assert!(agent.steps > 0, "{name}: agent engine made no progress");
            assert!(packed.steps > 0, "{name}: packed engine made no progress");
            assert!(turbo.steps > 0, "{name}: turbo engine made no progress");
            assert!(sharded.steps > 0, "{name}: sharded engine made no progress");
            if assert_ratio {
                let floor = 1.15;
                let speedup = packed.steps_per_second() / agent.steps_per_second();
                assert!(
                    speedup >= floor,
                    "{name}: packed speedup only {speedup:.2}x \
                     (packed {:.3e} vs agent {:.3e} steps/s, floor {floor}x)",
                    packed.steps_per_second(),
                    agent.steps_per_second()
                );
                // Turbo floors per family: torus (branch-bound packed
                // baseline) must show a clear win; ring (memory-floor
                // baseline, recorded at ≈ 0.7×) must not regress far
                // below its measured ratio.
                let turbo_ratio = turbo.steps_per_second() / packed.steps_per_second();
                let turbo_floor = if name.contains("torus") { 2.0 } else { 0.55 };
                assert!(
                    turbo_ratio >= turbo_floor,
                    "{name}: turbo only {turbo_ratio:.2}x of packed \
                     (turbo {:.3e} vs packed {:.3e} steps/s, floor {turbo_floor}x)",
                    turbo.steps_per_second(),
                    packed.steps_per_second()
                );
            }
        }
    }

    #[test]
    fn churn_rides_every_fast_tier() {
        for kind in [
            EngineKind::Packed,
            EngineKind::Turbo,
            EngineKind::Sharded,
            EngineKind::Vec,
        ] {
            let m = measure_churn_graph(kind, 7, 0.1);
            assert!(m.steps > 0, "{kind:?} churn made no progress");
        }
    }

    #[test]
    fn ensemble_vec_beats_work_stealing_replicate() {
        // The Part-6 acceptance claim at reduced scale: the lane-parallel
        // ensemble path must deliver more replica-steps per second than
        // one-engine-per-seed work-stealing replication. Like the other
        // wall-clock gates, the ratio floor is opt-in
        // (`PP_PERF_ASSERT=1 cargo test --release -p pp-bench ensemble_vec
        // -- --test-threads=1`); the default suite asserts progress and
        // equal-work accounting only. The floor is the weakest idle-box
        // ratio observed on the single-core reference runner — the full
        // measured ratio lands in BENCH_throughput.json on every CI run.
        let replicas = ENSEMBLE_LANES;
        // Long enough that stepping dominates the timed region — at
        // 40k steps/replica the ensemble's one-off lane-major packing
        // (3 MiB at n = 10^5) eats the vec side's ~6 ms run and the
        // measured ratio collapses to setup noise.
        let per_replica = 250_000u64;
        let scalar = measure_replicate_turbo(replicas, per_replica, 5);
        let vec = measure_replicate_vec(replicas, per_replica, 5);
        let work = per_replica * replicas as u64;
        assert_eq!(scalar.steps, work, "scalar path lost replica-steps");
        assert_eq!(vec.steps, work, "vec path lost replica-steps");
        if !cfg!(debug_assertions) && std::env::var("PP_PERF_ASSERT").is_ok() {
            let ratio = vec.steps_per_second() / scalar.steps_per_second();
            // Measured on the reference runner: 2.1–2.5x at n = 10^5
            // (best-of-5, 400k steps/replica); single short runs dip to
            // ~2.0x under load, so the gate floor leaves headroom.
            let floor = 1.5;
            assert!(
                ratio >= floor,
                "replicate-vec only {ratio:.2}x of replicate-turbo \
                 (vec {:.3e} vs scalar {:.3e} replica-steps/s, floor {floor}x)",
                vec.steps_per_second(),
                scalar.steps_per_second()
            );
        }
    }

    #[test]
    fn disabled_recorder_overhead_under_one_percent() {
        // The zero-overhead-when-disabled contract (ISSUE 6 acceptance):
        // with no sink selected, the cost the engines pay for their
        // instrumentation must stay under 1% of the turbo step time. Turbo
        // places 2 macro calls per n-step batch, so the per-step cost is
        // 2 × cost(call) / n — measure both sides and compare. Like the
        // other wall-clock gates this is only meaningful with
        // optimizations on; the dev profile asserts progress only.
        let probe = measure_obs_probe(2_000_000);
        assert!(probe.steps > 0);
        if cfg!(debug_assertions) {
            return;
        }
        let ns_per_call = probe.seconds * 1e9 / probe.steps as f64;
        let n = 100_000.0;
        let per_step_ns = 2.0 * ns_per_call / n;
        let turbo = measure_turbo_graph(Torus2d::new(250, 400), 11, 0.05);
        let step_ns = 1e9 / turbo.steps_per_second();
        assert!(
            per_step_ns < 0.01 * step_ns,
            "disabled obs path costs {per_step_ns:.4} ns/step \
             (probe {ns_per_call:.4} ns/call, 2 calls per {n} steps) — \
             over 1% of the {step_ns:.2} ns turbo step"
        );
    }

    #[test]
    fn scaling_ladder_makes_progress_at_every_thread_count() {
        // The Part-7 rows must complete at every P even when the machine
        // has fewer cores — run_with_threads spawns workers regardless of
        // the pool budget. Speedup ratios are CI's job (scaling-smoke);
        // here the gate is progress plus the pinned-layout invariant.
        for threads in [1usize, 2, 8] {
            let m = measure_sharded_scaling(threads, 3, 0.02);
            assert!(m.steps > 0, "p{threads} ladder row made no progress");
        }
    }

    #[test]
    fn hundred_million_agents_in_seconds() {
        let n: u64 = 100_000_000;
        let (m, sim) = measure_dense(n, 4, 20);
        assert!(
            m.seconds < 20.0,
            "n = 10^8 run took {:.1} s (expected seconds, not minutes)",
            m.seconds
        );
        let stats = CountConfig::from_classes(sim.counts()).stats();
        assert!(stats.all_colours_alive());
        assert_eq!(stats.population() as u64, n);
    }
}
