//! Engine throughput comparison across the three tiers: generic agent
//! engine, packed general-graph fast path, count-based dense engine.
//!
//! Part 1 runs the Diversification protocol on the complete graph with the
//! generic and dense engines across population sizes. The dense engine's
//! amortised cost per step is `O(k²/(ε·n))`, so its advantage *grows* with
//! `n`; the `n = 10⁸` row is dense-only (10⁸ agent states would need ~1 GB
//! and hours of stepping — the point of the dense engine is that this row
//! completes in seconds).
//!
//! Part 2 measures the general-graph fast path: the generic engine exactly
//! as the topology experiments used it (`Box<dyn Topology>` dispatch per
//! partner draw) versus [`PackedSimulator`] on ring, torus, and
//! random-regular graphs at `n = 10⁵`.

use crate::experiments::Report;
use crate::runner::{standard_weights, Preset};
use pp_core::{init, Diversification};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::{PackedSimulator, Simulator};
use pp_graph::{random_regular, Complete, Cycle, Topology, Torus2d};
use pp_stats::{table::fmt_f64, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One engine measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Time-steps simulated.
    pub steps: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Simulated time-steps per wall-clock second.
    pub fn steps_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.steps as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Shared wall-clock measurement loop: calls `run(batch)` until
/// `budget_secs` elapses, tallying the simulated steps. Every engine
/// measurement in this module funnels through here so methodology changes
/// (batch size, warm-up, clock) apply to all comparisons at once.
fn measure_loop(batch: u64, budget_secs: f64, mut run: impl FnMut(u64)) -> Measurement {
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed().as_secs_f64() < budget_secs {
        run(batch);
        steps += batch;
    }
    Measurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Times the agent-based engine: balanced all-dark start, chunks of `n`
/// steps until `budget_secs` of wall clock is spent.
pub fn measure_agent(n: usize, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights),
        Complete::new(n),
        states,
        seed,
    );
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the dense engine over a fixed workload of `rounds·n` steps from
/// the balanced all-dark start (covering both the all-dark transient and
/// the equilibrium regime).
pub fn measure_dense(
    n: u64,
    seed: u64,
    rounds: u64,
) -> (Measurement, DenseSimulator<Diversification>) {
    let weights = standard_weights();
    let config = CountConfig::all_dark_balanced(n, weights.len());
    let mut sim = DenseSimulator::new(Diversification::new(weights), config.to_classes(), seed);
    let steps = rounds * n;
    let start = Instant::now();
    sim.run(steps);
    (
        Measurement {
            steps,
            seconds: start.elapsed().as_secs_f64(),
        },
        sim,
    )
}

/// Times the generic engine on an arbitrary topology exactly as the
/// topology experiments used it before the fast path existed: boxed
/// `dyn Topology`, one virtual partner draw per interaction.
pub fn measure_agent_graph(
    topology: Box<dyn Topology>,
    seed: u64,
    budget_secs: f64,
) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(Diversification::new(weights), topology, states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// Times the packed fast path on the same workload: monomorphized
/// topology, `u32` packed states, zero `dyn` dispatch per interaction.
pub fn measure_packed_graph<T: Topology>(topology: T, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let n = topology.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = PackedSimulator::new(Diversification::new(weights), topology, &states, seed);
    measure_loop(n as u64, budget_secs, |b| sim.run(b))
}

/// One general-graph engine comparison: generic-dyn vs packed on the same
/// topology. Returns `(agent, packed)`.
pub fn measure_graph_pair<T: Topology + Clone + 'static>(
    topology: T,
    seed: u64,
    budget_secs: f64,
) -> (Measurement, Measurement) {
    let agent = measure_agent_graph(Box::new(topology.clone()), seed, budget_secs);
    let packed = measure_packed_graph(topology, seed, budget_secs);
    (agent, packed)
}

/// Runs the general-graph fast-path comparison at `n = 10⁵`: ring, torus,
/// and random-regular (CSR), generic-dyn vs packed. Returns
/// `(name, agent, packed)` triples.
pub fn run_graph_suite(seed: u64, budget_secs: f64) -> Vec<(String, Measurement, Measurement)> {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let regular = random_regular(n, 8, &mut rng);
    let mut out = Vec::new();
    let (a, p) = measure_graph_pair(Cycle::new(n), seed, budget_secs);
    out.push(("ring".to_string(), a, p));
    let (a, p) = measure_graph_pair(Torus2d::new(250, 400), seed, budget_secs);
    out.push(("torus".to_string(), a, p));
    // The generic baseline runs the builder representation (`Vec<Vec>`
    // adjacency) t10 used before this fast path existed; packed runs its
    // CSR lowering.
    let agent = measure_agent_graph(Box::new(regular.clone()), seed, budget_secs);
    let packed = measure_packed_graph(regular.to_csr(), seed, budget_secs);
    out.push(("random-regular(d=8)".to_string(), agent, packed));
    out
}

/// Runs the engine comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    let sizes: Vec<u64> = preset.pick(
        vec![10_000, 1_000_000, 100_000_000],
        vec![10_000, 1_000_000, 100_000_000],
    );
    let agent_budget = preset.pick(0.4, 2.0);
    let rounds = preset.pick(20u64, 40u64);
    // The agent engine at 10⁸ would need ~1 GB of states and minutes per
    // round; it is measured up to 10⁶ and the comparison row notes why.
    let agent_limit: u64 = 1_000_000;

    let mut table = Table::new([
        "n",
        "engine",
        "steps",
        "wall s",
        "Msteps/s",
        "speedup vs agent",
        "leap batches",
        "exact events",
    ]);
    let mut notes: Vec<String> = Vec::new();

    for &n in &sizes {
        let agent = if n <= agent_limit {
            let m = measure_agent(n as usize, seed, agent_budget);
            table.row([
                n.to_string(),
                "agent".to_string(),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "1".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            Some(m)
        } else {
            table.row([
                n.to_string(),
                "agent".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            None
        };

        let (dense, sim) = measure_dense(n, seed, rounds);
        let speedup = agent
            .map(|a| fmt_f64(dense.steps_per_second() / a.steps_per_second()))
            .unwrap_or_else(|| "n/a (agent infeasible)".to_string());
        table.row([
            n.to_string(),
            "dense".to_string(),
            dense.steps.to_string(),
            fmt_f64(dense.seconds),
            fmt_f64(dense.steps_per_second() / 1e6),
            speedup.clone(),
            sim.leap_batches().to_string(),
            sim.exact_events().to_string(),
        ]);
        if let Some(a) = agent {
            notes.push(format!(
                "n = {n}: dense {:.3e} steps/s vs agent {:.3e} steps/s ({}x)",
                dense.steps_per_second(),
                a.steps_per_second(),
                speedup
            ));
        } else {
            notes.push(format!(
                "n = {n}: dense simulated {} steps ({} parallel rounds) in {:.2} s — \
                 agent engine skipped (needs ~{} GB of per-agent state)",
                dense.steps,
                rounds,
                dense.seconds,
                (n as f64 * 8.0 / 1e9).ceil()
            ));
        }
    }

    // Part 2: the general-graph fast path, on the topologies the t10
    // experiments sweep.
    let graph_budget = preset.pick(0.15, 0.6);
    for (name, agent, packed) in run_graph_suite(seed, graph_budget) {
        table.row([
            "100000".to_string(),
            format!("agent-dyn {name}"),
            agent.steps.to_string(),
            fmt_f64(agent.seconds),
            fmt_f64(agent.steps_per_second() / 1e6),
            "1".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        let speedup = packed.steps_per_second() / agent.steps_per_second();
        table.row([
            "100000".to_string(),
            format!("packed {name}"),
            packed.steps.to_string(),
            fmt_f64(packed.seconds),
            fmt_f64(packed.steps_per_second() / 1e6),
            fmt_f64(speedup),
            "-".to_string(),
            "-".to_string(),
        ]);
        notes.push(format!(
            "{name} @ n = 10^5: packed {:.3e} steps/s vs agent-dyn {:.3e} steps/s ({speedup:.1}x)",
            packed.steps_per_second(),
            agent.steps_per_second(),
        ));
    }

    let mut report = Report::new(
        "throughput (Diversification; complete graph: agent vs dense; \
         general graphs: agent-dyn vs packed; weights = (1,1,2,4))",
        table,
    );
    for note in notes {
        report.note(note);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_engine_dominates_at_scale() {
        // A cut-down version of the benchmark's core claim: at n = 10⁶ the
        // dense engine is at least 100× faster per simulated step.
        let n: u64 = 1_000_000;
        let agent = measure_agent(n as usize, 9, 0.2);
        let (dense, _) = measure_dense(n, 9, 20);
        let speedup = dense.steps_per_second() / agent.steps_per_second();
        assert!(
            speedup >= 100.0,
            "dense speedup only {speedup:.1}x at n = 10^6 \
             (dense {:.3e} vs agent {:.3e} steps/s)",
            dense.steps_per_second(),
            agent.steps_per_second()
        );
    }

    #[test]
    fn packed_fast_path_beats_generic_on_general_graphs() {
        // Release-build ratios on the reference box (recorded in
        // BENCH_throughput.json and EXPERIMENTS.md): ring ≈ 1.5×, torus
        // ≈ 1.5×, random-regular ≈ 2.7×. Both engines serialize on the
        // identical RNG stream (the price of bit-exact trajectory
        // equivalence) plus the same random state-array accesses, so the
        // packed win is bounded by the dispatch/representation overhead it
        // removes — not a 10×-style algorithmic gap.
        //
        // Wall-clock ratios are only meaningful with optimizations on and
        // the machine otherwise idle: the dev profile disables the
        // inlining the fast path exists to enable, and sibling tests in
        // the parallel harness (work-stealing sweeps saturate every core)
        // can deflate a 0.15 s window. So the ratio gate is opt-in —
        // `PP_PERF_ASSERT=1 cargo test --release -p pp-bench
        // packed_fast_path -- --test-threads=1` — with a
        // floor below the weakest observed idle-box ratio; the default
        // suite asserts progress only, and the CI throughput job records
        // the full numbers on every run.
        let assert_ratio = !cfg!(debug_assertions) && std::env::var("PP_PERF_ASSERT").is_ok();
        for (name, agent, packed) in run_graph_suite(5, 0.15) {
            assert!(agent.steps > 0, "{name}: agent engine made no progress");
            assert!(packed.steps > 0, "{name}: packed engine made no progress");
            if assert_ratio {
                let floor = 1.15;
                let speedup = packed.steps_per_second() / agent.steps_per_second();
                assert!(
                    speedup >= floor,
                    "{name}: packed speedup only {speedup:.2}x \
                     (packed {:.3e} vs agent {:.3e} steps/s, floor {floor}x)",
                    packed.steps_per_second(),
                    agent.steps_per_second()
                );
            }
        }
    }

    #[test]
    fn hundred_million_agents_in_seconds() {
        let n: u64 = 100_000_000;
        let (m, sim) = measure_dense(n, 4, 20);
        assert!(
            m.seconds < 20.0,
            "n = 10^8 run took {:.1} s (expected seconds, not minutes)",
            m.seconds
        );
        let stats = CountConfig::from_classes(sim.counts()).stats();
        assert!(stats.all_colours_alive());
        assert_eq!(stats.population() as u64, n);
    }
}
