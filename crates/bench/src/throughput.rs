//! Engine throughput comparison: agent-based vs count-based (dense).
//!
//! Runs the Diversification protocol on the complete graph with both
//! engines across population sizes and reports simulated time-steps per
//! wall-clock second. The dense engine's amortised cost per step is
//! `O(k²/(ε·n))`, so its advantage *grows* with `n`; the `n = 10⁸` row is
//! dense-only (10⁸ agent states would need ~1 GB and hours of stepping —
//! the point of the dense engine is that this row completes in seconds).

use crate::experiments::Report;
use crate::runner::{standard_weights, Preset};
use pp_core::{init, Diversification};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::Simulator;
use pp_graph::Complete;
use pp_stats::{table::fmt_f64, Table};
use std::time::Instant;

/// One engine measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Time-steps simulated.
    pub steps: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Measurement {
    /// Simulated time-steps per wall-clock second.
    pub fn steps_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.steps as f64 / self.seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Times the agent-based engine: balanced all-dark start, chunks of `n`
/// steps until `budget_secs` of wall clock is spent.
pub fn measure_agent(n: usize, seed: u64, budget_secs: f64) -> Measurement {
    let weights = standard_weights();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights),
        Complete::new(n),
        states,
        seed,
    );
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed().as_secs_f64() < budget_secs {
        sim.run(n as u64);
        steps += n as u64;
    }
    Measurement {
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Times the dense engine over a fixed workload of `rounds·n` steps from
/// the balanced all-dark start (covering both the all-dark transient and
/// the equilibrium regime).
pub fn measure_dense(
    n: u64,
    seed: u64,
    rounds: u64,
) -> (Measurement, DenseSimulator<Diversification>) {
    let weights = standard_weights();
    let config = CountConfig::all_dark_balanced(n, weights.len());
    let mut sim = DenseSimulator::new(Diversification::new(weights), config.to_classes(), seed);
    let steps = rounds * n;
    let start = Instant::now();
    sim.run(steps);
    (
        Measurement {
            steps,
            seconds: start.elapsed().as_secs_f64(),
        },
        sim,
    )
}

/// Runs the engine comparison.
pub fn run(preset: Preset, seed: u64) -> Report {
    let sizes: Vec<u64> = preset.pick(
        vec![10_000, 1_000_000, 100_000_000],
        vec![10_000, 1_000_000, 100_000_000],
    );
    let agent_budget = preset.pick(0.4, 2.0);
    let rounds = preset.pick(20u64, 40u64);
    // The agent engine at 10⁸ would need ~1 GB of states and minutes per
    // round; it is measured up to 10⁶ and the comparison row notes why.
    let agent_limit: u64 = 1_000_000;

    let mut table = Table::new([
        "n",
        "engine",
        "steps",
        "wall s",
        "Msteps/s",
        "speedup vs agent",
        "leap batches",
        "exact events",
    ]);
    let mut notes: Vec<String> = Vec::new();

    for &n in &sizes {
        let agent = if n <= agent_limit {
            let m = measure_agent(n as usize, seed, agent_budget);
            table.row([
                n.to_string(),
                "agent".to_string(),
                m.steps.to_string(),
                fmt_f64(m.seconds),
                fmt_f64(m.steps_per_second() / 1e6),
                "1".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            Some(m)
        } else {
            table.row([
                n.to_string(),
                "agent".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            None
        };

        let (dense, sim) = measure_dense(n, seed, rounds);
        let speedup = agent
            .map(|a| fmt_f64(dense.steps_per_second() / a.steps_per_second()))
            .unwrap_or_else(|| "n/a (agent infeasible)".to_string());
        table.row([
            n.to_string(),
            "dense".to_string(),
            dense.steps.to_string(),
            fmt_f64(dense.seconds),
            fmt_f64(dense.steps_per_second() / 1e6),
            speedup.clone(),
            sim.leap_batches().to_string(),
            sim.exact_events().to_string(),
        ]);
        if let Some(a) = agent {
            notes.push(format!(
                "n = {n}: dense {:.3e} steps/s vs agent {:.3e} steps/s ({}x)",
                dense.steps_per_second(),
                a.steps_per_second(),
                speedup
            ));
        } else {
            notes.push(format!(
                "n = {n}: dense simulated {} steps ({} parallel rounds) in {:.2} s — \
                 agent engine skipped (needs ~{} GB of per-agent state)",
                dense.steps,
                rounds,
                dense.seconds,
                (n as f64 * 8.0 / 1e9).ceil()
            ));
        }
    }

    let mut report = Report::new(
        "throughput (Diversification, complete graph, weights = (1,1,2,4))",
        table,
    );
    for note in notes {
        report.note(note);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_engine_dominates_at_scale() {
        // A cut-down version of the benchmark's core claim: at n = 10⁶ the
        // dense engine is at least 100× faster per simulated step.
        let n: u64 = 1_000_000;
        let agent = measure_agent(n as usize, 9, 0.2);
        let (dense, _) = measure_dense(n, 9, 20);
        let speedup = dense.steps_per_second() / agent.steps_per_second();
        assert!(
            speedup >= 100.0,
            "dense speedup only {speedup:.1}x at n = 10^6 \
             (dense {:.3e} vs agent {:.3e} steps/s)",
            dense.steps_per_second(),
            agent.steps_per_second()
        );
    }

    #[test]
    fn hundred_million_agents_in_seconds() {
        let n: u64 = 100_000_000;
        let (m, sim) = measure_dense(n, 4, 20);
        assert!(
            m.seconds < 20.0,
            "n = 10^8 run took {:.1} s (expected seconds, not minutes)",
            m.seconds
        );
        let stats = CountConfig::from_classes(sim.counts()).stats();
        assert!(stats.all_colours_alive());
        assert_eq!(stats.population() as u64, n);
    }
}
