//! Minimal JSON parser and the result-JSON v1 schema validator.
//!
//! The workspace has no serde (offline build), so `BENCH_*.json` documents
//! are checked with a small hand-rolled recursive-descent parser. Every bin
//! self-validates the envelope it is about to write (exit code 2 on
//! violation), the `validate_bench` bin re-validates uploaded artifacts in
//! CI, and the schema-conformance tests parse every bin's envelope through
//! this module.
//!
//! ## Result-JSON v1
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "t1_convergence_n",          // bin/experiment id (file stem)
//!   "title": "t1: convergence time ...", // human title
//!   "engine": "dense",                   // engine tier, or null for sweeps
//!   "preset": "quick",                   // PP_PRESET
//!   "params": {"seed": 100},             // topology/protocol parameters
//!   "columns": ["n", "steps"],           // table header
//!   "rows": [[1024, 31337.5]],           // typed cells: number or string
//!   "notes": ["fitted slope ..."],       // free-form observations
//!   "wall_ms": 1234.5,                   // wall-clock of the run
//!   "steps_per_sec": null,               // aggregate rate, when measured
//!   "runner_class": null,                // PP_RUNNER_CLASS hardware label
//!   "recorder": null                     // pp-obs dump when PP_OBS=json
//! }
//! ```
//!
//! `runner_class` names the hardware class that produced the artifact
//! (e.g. `"ci-4core"`); step-rate gates tighten their band when baseline
//! and fresh report the same class, and stay loose across classes or
//! when either side is `null` (pre-label artifacts parse as v1 too —
//! the field is optional on read, always written by current bins).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object (sorted keys; duplicates rejected).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Maximum container nesting the recursive-descent parser accepts. The
/// parser recurses once per `[`/`{` level, so without a bound a hostile
/// (or merely corrupt) artifact like `[[[[…` overflows the thread stack
/// and aborts the process instead of exiting 2 with a schema error.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match s.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(self.err(format!("invalid number `{s}`"))),
        }
    }
}

/// Validates a parsed document against the result-JSON v1 schema.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_v1(doc: &Value) -> Result<(), String> {
    let obj = match doc {
        Value::Obj(m) => m,
        _ => return Err("document must be a JSON object".into()),
    };
    match doc.get("schema_version").and_then(Value::as_f64) {
        Some(1.0) => {}
        Some(v) => return Err(format!("schema_version must be 1, got {v}")),
        None => return Err("missing numeric field `schema_version`".into()),
    }
    for field in ["name", "title", "preset"] {
        match doc.get(field) {
            Some(Value::Str(s)) if !s.is_empty() => {}
            Some(Value::Str(_)) => return Err(format!("field `{field}` must be non-empty")),
            _ => return Err(format!("missing string field `{field}`")),
        }
    }
    match doc.get("engine") {
        Some(Value::Str(_)) | Some(Value::Null) => {}
        _ => return Err("field `engine` must be a string or null".into()),
    }
    let params = match doc.get("params") {
        Some(Value::Obj(m)) => m,
        _ => return Err("field `params` must be an object".into()),
    };
    for (k, v) in params {
        if !matches!(v, Value::Num(_) | Value::Str(_)) {
            return Err(format!("params entry `{k}` must be a number or string"));
        }
    }
    let columns = match doc.get("columns") {
        Some(Value::Arr(cols)) if !cols.is_empty() => {
            for (i, c) in cols.iter().enumerate() {
                if !matches!(c, Value::Str(_)) {
                    return Err(format!("columns[{i}] must be a string"));
                }
            }
            cols
        }
        _ => return Err("field `columns` must be a non-empty string array".into()),
    };
    match doc.get("rows") {
        Some(Value::Arr(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                let cells = row
                    .as_arr()
                    .ok_or_else(|| format!("rows[{i}] must be an array"))?;
                if cells.len() != columns.len() {
                    return Err(format!(
                        "rows[{i}] has {} cells but there are {} columns",
                        cells.len(),
                        columns.len()
                    ));
                }
                for (j, cell) in cells.iter().enumerate() {
                    if !matches!(cell, Value::Num(_) | Value::Str(_)) {
                        return Err(format!("rows[{i}][{j}] must be a number or string"));
                    }
                }
            }
        }
        _ => return Err("field `rows` must be an array".into()),
    }
    match doc.get("notes") {
        Some(Value::Arr(notes)) => {
            for (i, n) in notes.iter().enumerate() {
                if !matches!(n, Value::Str(_)) {
                    return Err(format!("notes[{i}] must be a string"));
                }
            }
        }
        _ => return Err("field `notes` must be an array".into()),
    }
    match doc.get("wall_ms").and_then(Value::as_f64) {
        Some(v) if v >= 0.0 => {}
        _ => return Err("field `wall_ms` must be a non-negative number".into()),
    }
    match doc.get("steps_per_sec") {
        Some(Value::Null) => {}
        Some(Value::Num(v)) if *v >= 0.0 => {}
        _ => return Err("field `steps_per_sec` must be a non-negative number or null".into()),
    }
    match doc.get("runner_class") {
        None | Some(Value::Null) => {}
        Some(Value::Str(s)) if !s.is_empty() => {}
        Some(Value::Str(_)) => {
            return Err("field `runner_class` must be non-empty when a string".into())
        }
        _ => return Err("field `runner_class` must be a string or null".into()),
    }
    match doc.get("recorder") {
        Some(Value::Null) | Some(Value::Obj(_)) => {}
        _ => return Err("field `recorder` must be an object or null".into()),
    }
    let known = [
        "schema_version",
        "name",
        "title",
        "engine",
        "preset",
        "params",
        "columns",
        "rows",
        "notes",
        "wall_ms",
        "steps_per_sec",
        "runner_class",
        "recorder",
    ];
    for key in obj.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` (schema drift?)"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_v1() -> String {
        concat!(
            "{\"schema_version\":1,\"name\":\"t0_demo\",\"title\":\"demo\",",
            "\"engine\":null,\"preset\":\"quick\",\"params\":{\"n\":100},",
            "\"columns\":[\"n\",\"err\"],\"rows\":[[100,0.5],[\"big\",1]],",
            "\"notes\":[],\"wall_ms\":1.5,\"steps_per_sec\":null,\"recorder\":null}"
        )
        .to_string()
    }

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(
            parse("[1, \"x\", []]").unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("x".into()),
                Value::Arr(vec![])
            ])
        );
        let obj = parse("{\"a\": {\"b\": 2}}").unwrap();
        assert_eq!(obj.get("a").unwrap().get("b").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
        // Surrogate pair → astral code point.
        assert_eq!(
            parse("\"\\ud83e\\udd80\"").unwrap(),
            Value::Str("🦀".into())
        );
        assert_eq!(parse("\"\\u0001\"").unwrap(), Value::Str("\u{1}".into()));
        assert!(parse("\"\\ud83e\"").is_err(), "lone surrogate must fail");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nulll",
            "01a",
            "\"unterminated",
            "{\"a\":1}{",
            "{\"a\":1,\"a\":2}",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // Regression: 10k-deep nesting used to recurse 10k frames and
        // abort the process (SIGSEGV) instead of returning Err; the depth
        // limit turns it into an ordinary schema error (exit 2 path).
        let deep_arrays = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep_arrays).expect_err("depth limit must reject");
        assert!(err.msg.contains("nesting exceeds"), "got: {err}");

        let deep_objects = "{\"k\":".repeat(10_000) + "1" + &"}".repeat(10_000);
        assert!(parse(&deep_objects).is_err());

        // Just inside the limit still parses: the bound rejects hostile
        // inputs, not real envelopes (recorder dumps nest ~4 deep).
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        parse(&ok).expect("MAX_DEPTH levels must be accepted");
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&over).is_err());
    }

    #[test]
    fn depth_resets_between_siblings() {
        // Sequential (non-nested) containers must not accumulate depth.
        let many_siblings = format!("[{}]", vec!["[[]]"; 500].join(","));
        parse(&many_siblings).expect("sibling containers share no depth");
    }

    #[test]
    fn accepts_minimal_v1() {
        let doc = parse(&minimal_v1()).unwrap();
        validate_v1(&doc).unwrap();
    }

    #[test]
    fn rejects_schema_violations() {
        let violations = [
            (
                "\"schema_version\":1",
                "\"schema_version\":2",
                "schema_version",
            ),
            ("\"name\":\"t0_demo\"", "\"name\":\"\"", "name"),
            ("\"engine\":null", "\"engine\":7", "engine"),
            ("\"params\":{\"n\":100}", "\"params\":[]", "params"),
            ("\"columns\":[\"n\",\"err\"]", "\"columns\":[]", "columns"),
            (
                "\"rows\":[[100,0.5],[\"big\",1]]",
                "\"rows\":[[100]]",
                "rows",
            ),
            ("\"notes\":[]", "\"notes\":[1]", "notes"),
            ("\"wall_ms\":1.5", "\"wall_ms\":\"fast\"", "wall_ms"),
            ("\"recorder\":null", "\"recorder\":[]", "recorder"),
        ];
        for (from, to, what) in violations {
            let doc = parse(&minimal_v1().replace(from, to)).unwrap();
            assert!(validate_v1(&doc).is_err(), "accepted bad {what}");
        }
        // Unknown fields are schema drift.
        let doc = parse(&minimal_v1().replace("\"wall_ms\"", "\"walltime\"")).unwrap();
        assert!(validate_v1(&doc).is_err(), "accepted unknown field");
    }

    #[test]
    fn runner_class_is_optional_string_or_null() {
        // Absent (pre-label artifacts) and null both validate.
        let doc = parse(&minimal_v1()).unwrap();
        validate_v1(&doc).unwrap();
        let with = |v: &str| {
            minimal_v1().replace(
                "\"steps_per_sec\":null",
                &format!("\"steps_per_sec\":null,\"runner_class\":{v}"),
            )
        };
        validate_v1(&parse(&with("null")).unwrap()).unwrap();
        validate_v1(&parse(&with("\"ci-4core\"")).unwrap()).unwrap();
        assert!(validate_v1(&parse(&with("\"\"")).unwrap()).is_err());
        assert!(validate_v1(&parse(&with("7")).unwrap()).is_err());
        assert!(validate_v1(&parse(&with("[]")).unwrap()).is_err());
    }
}
