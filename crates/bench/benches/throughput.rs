//! Criterion micro-benchmarks: interaction throughput per protocol and
//! topology, statistics costs, and Markov-chain solver costs.
//!
//! These are engineering benchmarks (how fast the simulator is), not paper
//! reproductions — those live in the `paper_experiments` bench target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_baselines::{ThreeMajority, TwoChoices, Voter};
use pp_core::{
    init, ConfigStats, DerandomisedDiversification, Diversification, IntWeights, Weights,
};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::{PackedSimulator, Protocol, Simulator};
use pp_graph::{random_regular, Complete, Cycle, Topology, Torus2d};
use pp_markov::{stationary_solve, IdealChain};

const STEPS_PER_ITER: u64 = 10_000;

fn bench_protocol_steps(c: &mut Criterion) {
    let n = 1_024;
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let mut group = c.benchmark_group("protocol_steps");
    group.throughput(Throughput::Elements(STEPS_PER_ITER));

    group.bench_function("diversification/complete-1024", |b| {
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            1,
        );
        b.iter(|| sim.run(STEPS_PER_ITER));
    });

    group.bench_function("derandomised/complete-1024", |b| {
        let protocol = DerandomisedDiversification::new(IntWeights::new(vec![1, 1, 2, 4]).unwrap());
        let states = init::grey_balanced(n, &protocol);
        let mut sim = Simulator::new(protocol, Complete::new(n), states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    });

    group.bench_function("voter/complete-1024", |b| {
        let states = (0..n).map(|u| pp_core::Colour::new(u % 4)).collect();
        let mut sim = Simulator::new(Voter, Complete::new(n), states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    });

    group.bench_function("2-choices/complete-1024", |b| {
        let states = (0..n).map(|u| pp_core::Colour::new(u % 4)).collect();
        let mut sim = Simulator::new(TwoChoices, Complete::new(n), states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    });

    group.bench_function("3-majority/complete-1024", |b| {
        let states = (0..n).map(|u| pp_core::Colour::new(u % 4)).collect();
        let mut sim = Simulator::new(ThreeMajority, Complete::new(n), states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    });

    group.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let weights = Weights::uniform(4);
    let mut group = c.benchmark_group("topology_steps");
    group.throughput(Throughput::Elements(STEPS_PER_ITER));

    fn run_on<T: Topology>(b: &mut criterion::Bencher<'_>, topology: T, weights: &Weights) {
        let states = init::all_dark_balanced(topology.len(), weights);
        let mut sim = Simulator::new(Diversification::new(weights.clone()), topology, states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    }

    group.bench_function("complete-1024", |b| {
        run_on(b, Complete::new(1_024), &weights)
    });
    group.bench_function("cycle-1024", |b| run_on(b, Cycle::new(1_024), &weights));
    group.bench_function("torus-32x32", |b| run_on(b, Torus2d::new(32, 32), &weights));
    group.finish();
}

fn bench_scaling_in_n(c: &mut Criterion) {
    let weights = Weights::uniform(4);
    let mut group = c.benchmark_group("diversification_step_scaling");
    group.throughput(Throughput::Elements(STEPS_PER_ITER));
    for n in [256usize, 1_024, 4_096, 16_384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let states = init::all_dark_balanced(n, &weights);
            let mut sim = Simulator::new(
                Diversification::new(weights.clone()),
                Complete::new(n),
                states,
                1,
            );
            b.iter(|| sim.run(STEPS_PER_ITER));
        });
    }
    group.finish();
}

fn bench_packed_engine(c: &mut Criterion) {
    // The general-graph fast path at n = 10⁵ (the ISSUE-2 acceptance
    // scale): packed monomorphized stepping vs the generic engine behind
    // `Box<dyn Topology>`, exactly as t10 ran before the fast path.
    let n = 100_000;
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let mut group = c.benchmark_group("general_graph_steps");
    group.throughput(Throughput::Elements(STEPS_PER_ITER));

    fn packed_on<T: Topology>(b: &mut criterion::Bencher<'_>, topology: T, weights: &Weights) {
        let states = init::all_dark_balanced(topology.len(), weights);
        let mut sim =
            PackedSimulator::new(Diversification::new(weights.clone()), topology, &states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    }

    fn dyn_on(b: &mut criterion::Bencher<'_>, topology: Box<dyn Topology>, weights: &Weights) {
        let states = init::all_dark_balanced(topology.len(), weights);
        let mut sim = Simulator::new(Diversification::new(weights.clone()), topology, states, 1);
        b.iter(|| sim.run(STEPS_PER_ITER));
    }

    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    // Packed runs the CSR lowering; the generic baseline keeps the
    // `Vec<Vec>` builder representation t10 used before the fast path.
    let regular = random_regular(n, 8, &mut rng);

    group.bench_function("packed/ring-100k", |b| {
        packed_on(b, Cycle::new(n), &weights)
    });
    group.bench_function("agent-dyn/ring-100k", |b| {
        dyn_on(b, Box::new(Cycle::new(n)), &weights)
    });
    group.bench_function("packed/torus-100k", |b| {
        packed_on(b, Torus2d::new(250, 400), &weights)
    });
    group.bench_function("agent-dyn/torus-100k", |b| {
        dyn_on(b, Box::new(Torus2d::new(250, 400)), &weights)
    });
    group.bench_function("packed/regular8-100k", |b| {
        packed_on(b, regular.to_csr(), &weights)
    });
    group.bench_function("agent-dyn/regular8-100k", |b| {
        dyn_on(b, Box::new(regular.clone()), &weights)
    });
    group.finish();
}

fn bench_dense_engine(c: &mut Criterion) {
    // The count-based engine: same protocol, same step semantics, but the
    // per-step cost shrinks as n grows (τ-leap batches cover ~ε·n/k steps).
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let mut group = c.benchmark_group("dense_engine_steps");
    group.throughput(Throughput::Elements(STEPS_PER_ITER));
    for n in [1_024u64, 1_000_000, 100_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut sim = DenseSimulator::new(
                Diversification::new(weights.clone()),
                CountConfig::all_dark_balanced(n, 4).to_classes(),
                1,
            );
            b.iter(|| sim.run(STEPS_PER_ITER));
        });
    }
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let n = 16_384;
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let states = init::all_dark_balanced(n, &weights);
    let mut group = c.benchmark_group("statistics");

    group.bench_function("config_stats/16384", |b| {
        b.iter(|| ConfigStats::from_states(&states, 4));
    });

    let stats = ConfigStats::from_states(&states, 4);
    group.bench_function("phi_psi_sigma/16384", |b| {
        b.iter(|| {
            (
                pp_core::phi(&stats, &weights),
                pp_core::psi(&stats, &weights),
                pp_core::sigma_sq(&stats, &weights),
            )
        });
    });
    group.finish();
}

fn bench_markov(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov");
    for k in [4usize, 16, 64] {
        let weights: Vec<f64> = (0..k).map(|i| 1.0 + (i % 4) as f64).collect();
        let chain = IdealChain::new(&weights, 1_024);
        group.bench_with_input(
            BenchmarkId::new("stationary_solve_2k_states", k),
            &chain,
            |b, chain| b.iter(|| stationary_solve(chain.matrix())),
        );
    }
    group.finish();
}

fn bench_transition_fn(c: &mut Criterion) {
    // The raw transition function, isolated from scheduling.
    use rand::{rngs::StdRng, SeedableRng};
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let protocol = Diversification::new(weights);
    let me = pp_core::AgentState::dark(pp_core::Colour::new(3));
    let other = pp_core::AgentState::dark(pp_core::Colour::new(3));
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("transition_fn/diversification_rule2", |b| {
        b.iter(|| protocol.transition(&me, &[&other], &mut rng));
    });
}

criterion_group!(
    benches,
    bench_protocol_steps,
    bench_topologies,
    bench_scaling_in_n,
    bench_packed_engine,
    bench_dense_engine,
    bench_statistics,
    bench_markov,
    bench_transition_fn
);
criterion_main!(benches);
