//! Regenerates every table/figure of the reproduction in one pass.
//!
//! `cargo bench -p pp-bench --bench paper_experiments` prints the full set
//! of experiment reports (quick preset by default; set `PP_PRESET=full` for
//! the EXPERIMENTS.md scales), so the bench log doubles as the reproduction
//! record. Each experiment id maps to a theorem or figure of the paper —
//! see DESIGN.md §4.

use pp_bench::experiments;
use pp_bench::Preset;
use std::time::Instant;

fn main() {
    let preset = Preset::from_env();
    println!(
        "# paper experiment suite (preset: {:?}) — Diversity, Fairness, and Sustainability in Population Protocols (PODC 2021)\n",
        preset
    );
    let started = Instant::now();

    let timed = &mut |name: &str, f: &mut dyn FnMut() -> experiments::Report| {
        let t0 = Instant::now();
        let report = f();
        report.print();
        println!("  [{name} completed in {:.2?}]\n", t0.elapsed());
    };

    timed("fig1_phases", &mut || experiments::fig1::run(preset, 2024));
    timed("t1_convergence_n", &mut || {
        experiments::convergence::run_n_sweep(preset, 100)
    });
    timed("t2_convergence_w", &mut || {
        experiments::convergence::run_w_sweep(preset, 200)
    });
    timed("t3_diversity_error", &mut || {
        experiments::diversity::run(preset, 300)
    });
    timed("t4_phase3_error", &mut || {
        experiments::phase3::run(preset, 400)
    });
    timed("t5_fairness", &mut || {
        experiments::fairness::run(preset, 500)
    });
    timed("t6_sustainability", &mut || {
        experiments::sustainability::run(preset, 600)
    });
    timed("t7_baselines", &mut || {
        experiments::baselines::run(preset, 700)
    });
    timed("t8_derandomised", &mut || {
        experiments::derandomised::run(preset, 800)
    });
    timed("t9_markov", &mut || experiments::markov::run(preset, 900));
    timed("t10_topologies", &mut || {
        experiments::topologies::run(preset, 1000)
    });
    timed("t11_lower_bound", &mut || {
        experiments::lower_bound::run(preset, 1100)
    });
    timed("t12_uniform_partition", &mut || {
        experiments::uniform_partition::run(preset, 1200)
    });
    timed("t13_stability", &mut || {
        experiments::stability::run(preset, 1500)
    });
    timed("ablations", &mut || {
        experiments::ablations::run(preset, 1300)
    });
    timed("drift_lemmas", &mut || {
        experiments::drift::run(preset, 1400)
    });

    println!("# suite finished in {:.2?}", started.elapsed());
}
