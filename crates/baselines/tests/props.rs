//! Property-based tests for the baseline protocols: structural invariants
//! that must hold for every input state and every seed.

use pp_baselines::{
    AdoptAnyShade, AntiVoter, Averaging, ConstantFlip, MoranProcess, ThreeMajority,
    TrivialProportional, TwoChoices, Voter,
};
use pp_core::{AgentState, Colour, Shade, Weights};
use pp_engine::Protocol;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn colour(max_k: usize) -> impl Strategy<Value = Colour> {
    (0..max_k).prop_map(Colour::new)
}

proptest! {
    #[test]
    fn voter_output_is_observed(me in colour(8), seen in colour(8), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(Voter.transition(&me, &[&seen], &mut rng), seen);
    }

    #[test]
    fn two_choices_output_is_in_closure(
        me in colour(8),
        a in colour(8),
        b in colour(8),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = TwoChoices.transition(&me, &[&a, &b], &mut rng);
        prop_assert!(out == me || out == a || out == b);
        if a == b {
            prop_assert_eq!(out, a);
        } else {
            prop_assert_eq!(out, me);
        }
    }

    #[test]
    fn three_majority_output_is_in_closure(
        me in colour(8),
        a in colour(8),
        b in colour(8),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = ThreeMajority.transition(&me, &[&a, &b], &mut rng);
        prop_assert!(out == me || out == a || out == b);
        // A strict majority is always respected.
        if a == b {
            prop_assert_eq!(out, a);
        }
        if a == me || b == me {
            prop_assert_eq!(out, me);
        }
    }

    #[test]
    fn anti_voter_is_an_involution(seen in colour(2), me in colour(2), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let once = AntiVoter.transition(&me, &[&seen], &mut rng);
        prop_assert_eq!(AntiVoter::opposite(once), seen);
    }

    #[test]
    fn averaging_stays_in_hull(x in -1e6f64..1e6, y in -1e6f64..1e6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = Averaging::noiseless().transition(&x, &[&y], &mut rng);
        let (lo, hi) = (x.min(y), x.max(y));
        prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
    }

    #[test]
    fn noisy_averaging_bounded_by_amplitude(
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
        amp in 0.0f64..10.0,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = Averaging::with_noise(amp).transition(&x, &[&y], &mut rng);
        let mid = (x + y) / 2.0;
        prop_assert!((out - mid).abs() <= amp / 2.0 + 1e-9);
    }

    #[test]
    fn moran_output_is_self_or_observed(
        me in colour(3),
        seen in colour(3),
        seed in 0u64..100,
    ) {
        let p = MoranProcess::new(vec![1.0, 2.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = p.transition(&me, &[&seen], &mut rng);
        prop_assert!(out == me || out == seen);
    }

    #[test]
    fn trivial_output_in_weight_table(me in colour(4), seen in colour(4), seed in 0u64..100) {
        let p = TrivialProportional::new(Weights::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let out = p.transition(&me, &[&seen], &mut rng);
        prop_assert!(out.index() < 4);
    }

    #[test]
    fn ablations_never_change_dark_colour(
        me_colour in colour(2),
        v_colour in colour(2),
        v_dark in any::<bool>(),
        seed in 0u64..100,
    ) {
        // Both ablations keep the sustainability-critical property: a dark
        // agent's colour never changes in one interaction.
        let me = AgentState::dark(me_colour);
        let v = if v_dark {
            AgentState::dark(v_colour)
        } else {
            AgentState::light(v_colour)
        };
        let weights = Weights::new(vec![1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let out1 = AdoptAnyShade::new(weights).transition(&me, &[&v], &mut rng);
        prop_assert_eq!(out1.colour, me.colour);
        let out2 = ConstantFlip::new(0.5).transition(&me, &[&v], &mut rng);
        prop_assert_eq!(out2.colour, me.colour);
    }

    #[test]
    fn constant_flip_light_adopts_only_dark(
        v_colour in colour(2),
        v_dark in any::<bool>(),
        seed in 0u64..100,
    ) {
        let me = AgentState::light(Colour::new(0));
        let v = if v_dark {
            AgentState::dark(v_colour)
        } else {
            AgentState::light(v_colour)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = ConstantFlip::new(0.5).transition(&me, &[&v], &mut rng);
        if v_dark {
            prop_assert_eq!(out, AgentState::dark(v_colour));
        } else {
            prop_assert_eq!(out, me);
        }
        prop_assert!(out.shade == Shade::Dark || out == me);
    }
}

/// Satellite guarantee for the turbo engine's `u8` storage: for every
/// packed protocol in the workspace and every state with `k ≤ 127`
/// colours, the `u32` packed word fits a byte and the u32 ↔ u8 roundtrip
/// is lossless all the way back to the decoded state.
mod u8_roundtrip {
    use super::*;
    use pp_core::Diversification;
    use pp_engine::{PackedProtocol, TurboWord};

    /// Packs with `P`, narrows to `u8`, widens back, unpacks; every hop
    /// must be lossless.
    fn assert_roundtrip<P: PackedProtocol>(protocol: &P, state: &P::State)
    where
        P::State: PartialEq + Clone,
    {
        let wide = protocol.pack(state);
        assert!(
            u8::fits_in(wide),
            "packed word {wide} of {:?} does not fit u8",
            state
        );
        let narrow: u8 = TurboWord::narrow(wide);
        assert_eq!(narrow.widen(), wide, "u8 -> u32 widening changed the word");
        assert_eq!(
            &protocol.unpack(narrow.widen()),
            state,
            "u8 roundtrip changed the decoded state"
        );
    }

    proptest! {
        #[test]
        fn diversification_states_roundtrip(colour in 0usize..127, dark in any::<bool>()) {
            // The protocol value itself does not affect the codec; a small
            // uniform table suffices for constructing it.
            let protocol = Diversification::new(Weights::uniform(127));
            let state = AgentState {
                colour: Colour::new(colour),
                shade: if dark { Shade::Dark } else { Shade::Light },
            };
            assert_roundtrip(&protocol, &state);
        }

        #[test]
        fn voter_states_roundtrip(colour in 0usize..127) {
            assert_roundtrip(&Voter, &Colour::new(colour));
        }

        #[test]
        fn two_choices_states_roundtrip(colour in 0usize..127) {
            assert_roundtrip(&TwoChoices, &Colour::new(colour));
        }

        #[test]
        fn three_majority_states_roundtrip(colour in 0usize..127) {
            assert_roundtrip(&ThreeMajority, &Colour::new(colour));
        }

        #[test]
        fn anti_voter_states_roundtrip(colour in 0usize..2) {
            assert_roundtrip(&AntiVoter, &Colour::new(colour));
        }
    }

    /// The documented boundary: colour 127 dark is the largest
    /// Diversification word that fits a byte; colour 128 does not fit.
    #[test]
    fn boundary_colour_127_fits_128_does_not() {
        assert!(pp_core::packed::fits_u8(127));
        assert!(pp_core::packed::fits_u8(128));
        assert!(!pp_core::packed::fits_u8(129));
        let protocol = Diversification::new(Weights::uniform(4));
        let word = PackedProtocol::pack(&protocol, &AgentState::dark(Colour::new(127)));
        assert_eq!(word, 255);
        assert!(u8::fits_in(word));
        let over = PackedProtocol::pack(&protocol, &AgentState::dark(Colour::new(128)));
        assert!(!u8::fits_in(over));
    }
}
