//! Baseline population protocols the paper compares against or builds on.
//!
//! The paper's central observation is that population-protocol research has
//! focused on **consensus** — driving the population to a single colour —
//! whereas Diversification drives it to a *weighted diverse* configuration.
//! This crate implements the protocols from the related-work section so the
//! experiment harness can show the crossover directly:
//!
//! * [`Voter`] — adopt the observed colour (consensus; kills diversity);
//! * [`TwoChoices`] — adopt a colour seen twice (faster consensus);
//! * [`ThreeMajority`] — majority of self + two samples (faster consensus);
//! * [`AntiVoter`] — adopt the *opposite* of the observed colour (two-colour
//!   equilibrium, the closest classical relative of Diversification);
//! * [`MoranProcess`] — fitness-biased copying (evolutionary fixation);
//! * [`Averaging`] — value averaging / diffusion load balancing, optionally
//!   with bounded communication noise (Mallmann-Trenn et al. 2019);
//! * [`TrivialProportional`] — the strawman from the paper's introduction:
//!   resample your colour `∝ w_i` using *global* knowledge of the weight
//!   table (works only until the environment changes — see experiment
//!   `t6_sustainability` for how it fails to notice removed colours);
//! * [`ablation`] — degraded variants of Diversification that knock out one
//!   design choice each (shade-blind adoption; weight-blind softening).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod averaging;
pub mod consensus;
pub mod moran;
pub mod trivial;

pub use ablation::{AdoptAnyShade, ConstantFlip};
pub use averaging::Averaging;
pub use consensus::{AntiVoter, ThreeMajority, TwoChoices, Voter};
pub use moran::MoranProcess;
pub use trivial::TrivialProportional;
