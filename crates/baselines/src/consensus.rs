//! Consensus dynamics: Voter, 2-Choices, 3-Majority, Anti-Voter.
//!
//! Each protocol also implements [`PackedProtocol`] (packing a [`Colour`]
//! as its raw index), so the baselines run on `pp_engine`'s monomorphized
//! fast path with trajectories identical to the generic engine under a
//! shared seed.

use pp_core::Colour;
use pp_engine::{PackedProtocol, Protocol};
use rand::{Rng, RngExt};

/// The Voter model: the scheduled agent adopts the observed colour.
///
/// The simplest consensus protocol; every colour but one eventually vanishes
/// (in `Θ(n²)` expected steps on the complete graph for constant k), which
/// is exactly the failure mode Diversification is designed to avoid.
///
/// # Examples
///
/// ```
/// use pp_baselines::Voter;
/// use pp_core::Colour;
/// use pp_engine::Protocol;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let me = Colour::new(0);
/// let seen = Colour::new(3);
/// assert_eq!(Protocol::transition(&Voter, &me, &[&seen], &mut rng), seen);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Voter;

impl Protocol for Voter {
    type State = Colour;

    fn transition(&self, _me: &Colour, observed: &[&Colour], _rng: &mut dyn Rng) -> Colour {
        *observed[0]
    }

    fn name(&self) -> String {
        "voter".to_string()
    }
}

impl PackedProtocol for Voter {
    type State = Colour;

    fn pack(&self, s: &Colour) -> u32 {
        s.index() as u32
    }

    fn unpack(&self, p: u32) -> Colour {
        Colour::new(p as usize)
    }

    #[inline]
    fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
        observed[0]
    }

    fn outcomes(&self, _me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        Some(vec![(observed[0], 1.0)])
    }

    fn name(&self) -> String {
        Protocol::name(self)
    }
}

/// The 2-Choices dynamics: sample two agents; adopt their colour only if
/// they agree.
///
/// A drift-amplifying consensus protocol: majorities grow quadratically
/// faster than under Voter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TwoChoices;

impl Protocol for TwoChoices {
    type State = Colour;

    fn observations(&self) -> usize {
        2
    }

    fn transition(&self, me: &Colour, observed: &[&Colour], _rng: &mut dyn Rng) -> Colour {
        if observed[0] == observed[1] {
            *observed[0]
        } else {
            *me
        }
    }

    fn name(&self) -> String {
        "2-choices".to_string()
    }
}

impl PackedProtocol for TwoChoices {
    type State = Colour;

    const OBSERVATIONS: usize = 2;

    fn pack(&self, s: &Colour) -> u32 {
        s.index() as u32
    }

    fn unpack(&self, p: u32) -> Colour {
        Colour::new(p as usize)
    }

    #[inline]
    fn transition<R: Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
        if observed[0] == observed[1] {
            observed[0]
        } else {
            me
        }
    }

    fn outcomes(&self, me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        let next = if observed[0] == observed[1] {
            observed[0]
        } else {
            me
        };
        Some(vec![(next, 1.0)])
    }

    fn name(&self) -> String {
        Protocol::name(self)
    }
}

/// The 3-Majority dynamics: among `{self, sample₁, sample₂}`, adopt the
/// majority colour; if all three differ, adopt one of them uniformly at
/// random.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreeMajority;

impl Protocol for ThreeMajority {
    type State = Colour;

    fn observations(&self) -> usize {
        2
    }

    fn transition(&self, me: &Colour, observed: &[&Colour], rng: &mut dyn Rng) -> Colour {
        let (a, b) = (*observed[0], *observed[1]);
        if a == b {
            return a;
        }
        if a == *me || b == *me {
            return *me;
        }
        // All three distinct: uniform choice among them.
        match rng.random_range(0..3) {
            0 => *me,
            1 => a,
            _ => b,
        }
    }

    fn name(&self) -> String {
        "3-majority".to_string()
    }
}

impl PackedProtocol for ThreeMajority {
    type State = Colour;

    const OBSERVATIONS: usize = 2;

    fn pack(&self, s: &Colour) -> u32 {
        s.index() as u32
    }

    fn unpack(&self, p: u32) -> Colour {
        Colour::new(p as usize)
    }

    #[inline]
    fn transition<R: Rng>(&self, me: u32, observed: &[u32], rng: &mut R) -> u32 {
        let (a, b) = (observed[0], observed[1]);
        if a == b {
            return a;
        }
        if a == me || b == me {
            return me;
        }
        // Same tiebreak draw as the generic rule.
        match rng.random_range(0..3) {
            0 => me,
            1 => a,
            _ => b,
        }
    }

    /// Turbo tiebreak from the engine-supplied entropy word: a
    /// multiply-shift three-way draw (bias `3/2³²`) instead of a Lemire
    /// `random_range(0..3)`, so the batch pass never hits a rejection
    /// loop. Distributionally identical to within the stated bias.
    #[inline]
    fn transition_turbo<R: Rng>(&self, me: u32, observed: &[u32], aux: u64, _rng: &mut R) -> u32 {
        let (a, b) = (observed[0], observed[1]);
        if a == b {
            return a;
        }
        if a == me || b == me {
            return me;
        }
        match ((aux & 0xFFFF_FFFF) * 3) >> 32 {
            0 => me,
            1 => a,
            _ => b,
        }
    }

    fn outcomes(&self, me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        let (a, b) = (observed[0], observed[1]);
        Some(if a == b {
            vec![(a, 1.0)]
        } else if a == me || b == me {
            vec![(me, 1.0)]
        } else {
            // All three distinct: the uniform tiebreak.
            let third = 1.0 / 3.0;
            vec![(me, third), (a, third), (b, third)]
        })
    }

    fn name(&self) -> String {
        Protocol::name(self)
    }
}

/// The Anti-Voter model on two colours: adopt the **opposite** of the
/// observed colour.
///
/// The classical protocol closest in spirit to Diversification: it keeps
/// both colours alive forever and converges to a half/half equilibrium, but
/// only works for `k = 2` and cannot encode weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AntiVoter;

impl AntiVoter {
    /// The opposite of a binary colour.
    ///
    /// # Panics
    ///
    /// Panics if the colour index is not 0 or 1.
    pub fn opposite(colour: Colour) -> Colour {
        match colour.index() {
            0 => Colour::new(1),
            1 => Colour::new(0),
            i => panic!("anti-voter is a two-colour protocol, got colour {i}"),
        }
    }
}

impl Protocol for AntiVoter {
    type State = Colour;

    fn transition(&self, _me: &Colour, observed: &[&Colour], _rng: &mut dyn Rng) -> Colour {
        Self::opposite(*observed[0])
    }

    fn name(&self) -> String {
        "anti-voter".to_string()
    }
}

impl PackedProtocol for AntiVoter {
    type State = Colour;

    fn pack(&self, s: &Colour) -> u32 {
        s.index() as u32
    }

    fn unpack(&self, p: u32) -> Colour {
        Colour::new(p as usize)
    }

    #[inline]
    fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
        match observed[0] {
            0 => 1,
            1 => 0,
            i => panic!("anti-voter is a two-colour protocol, got colour {i}"),
        }
    }

    fn outcomes(&self, _me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        match observed[0] {
            0 => Some(vec![(1, 1.0)]),
            1 => Some(vec![(0, 1.0)]),
            i => panic!("anti-voter is a two-colour protocol, got colour {i}"),
        }
    }

    fn name(&self) -> String {
        Protocol::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{PackedSimulator, Simulator};
    use pp_graph::{Complete, Torus2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn colours(n: usize, k: usize) -> Vec<Colour> {
        (0..n).map(|u| Colour::new(u % k)).collect()
    }

    #[test]
    fn voter_reaches_consensus() {
        let n = 64;
        let mut sim = Simulator::new(Voter, Complete::new(n), colours(n, 4), 3);
        let hit = sim.run_until(2_000_000, 64, |pop, _| {
            let first = pop[0];
            pop.count_matching(|&c| c == first) == pop.len()
        });
        assert!(hit.is_some(), "voter failed to reach consensus");
    }

    #[test]
    fn two_choices_needs_agreement() {
        let me = Colour::new(0);
        let (a, b) = (Colour::new(1), Colour::new(2));
        assert_eq!(
            Protocol::transition(&TwoChoices, &me, &[&a, &b], &mut rng()),
            me
        );
        assert_eq!(
            Protocol::transition(&TwoChoices, &me, &[&a, &a], &mut rng()),
            a
        );
        assert_eq!(TwoChoices.observations(), 2);
    }

    #[test]
    fn three_majority_rules() {
        let me = Colour::new(0);
        let (a, b) = (Colour::new(1), Colour::new(1));
        // Pair majority among samples.
        assert_eq!(
            Protocol::transition(&ThreeMajority, &me, &[&a, &b], &mut rng()),
            a
        );
        // Self + one sample majority.
        let same = Colour::new(0);
        assert_eq!(
            Protocol::transition(&ThreeMajority, &me, &[&same, &Colour::new(2)], &mut rng()),
            me
        );
        // All distinct: result is one of the three.
        let mut r = rng();
        for _ in 0..50 {
            let out = Protocol::transition(
                &ThreeMajority,
                &me,
                &[&Colour::new(1), &Colour::new(2)],
                &mut r,
            );
            assert!(out.index() <= 2);
        }
    }

    #[test]
    fn three_majority_uniform_tiebreak() {
        let me = Colour::new(0);
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let out = Protocol::transition(
                &ThreeMajority,
                &me,
                &[&Colour::new(1), &Colour::new(2)],
                &mut r,
            );
            counts[out.index()] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "{frac}");
        }
    }

    #[test]
    fn two_choices_reaches_consensus_fast() {
        let n = 128;
        let mut sim = Simulator::new(TwoChoices, Complete::new(n), colours(n, 2), 11);
        let hit = sim.run_until(500_000, 128, |pop, _| {
            let first = pop[0];
            pop.count_matching(|&c| c == first) == pop.len()
        });
        assert!(hit.is_some());
    }

    #[test]
    fn anti_voter_flips() {
        assert_eq!(AntiVoter::opposite(Colour::new(0)), Colour::new(1));
        assert_eq!(AntiVoter::opposite(Colour::new(1)), Colour::new(0));
        let mut r = rng();
        assert_eq!(
            Protocol::transition(&AntiVoter, &Colour::new(0), &[&Colour::new(0)], &mut r),
            Colour::new(1)
        );
    }

    #[test]
    fn anti_voter_keeps_both_colours() {
        let n = 50;
        let mut sim = Simulator::new(AntiVoter, Complete::new(n), colours(n, 2), 5);
        for _ in 0..40 {
            sim.run(500);
            let ones = sim.population().count_matching(|&c| c == Colour::new(1));
            assert!(ones > 0 && ones < n, "anti-voter hit consensus: {ones}");
        }
    }

    #[test]
    #[should_panic(expected = "two-colour")]
    fn anti_voter_rejects_third_colour() {
        AntiVoter::opposite(Colour::new(2));
    }

    /// Every packed baseline reproduces its generic trajectory exactly
    /// under a shared seed — including 3-Majority's probabilistic tiebreak
    /// (m = 2 with a conditional third draw).
    #[test]
    fn packed_baselines_match_generic_trajectories() {
        fn check<P>(protocol: P, k: usize, seed: u64)
        where
            P: Protocol<State = Colour> + PackedProtocol<State = Colour> + Clone,
        {
            let n = 64;
            let init = colours(n, k);
            let topology = Torus2d::new(8, 8);
            let mut fast = PackedSimulator::new(protocol.clone(), topology, &init, seed);
            let mut reference = Simulator::new(protocol, topology, init, seed);
            fast.run(20_000);
            reference.run(20_000);
            assert_eq!(fast.states_unpacked(), reference.population().states());
        }
        check(Voter, 4, 21);
        check(TwoChoices, 4, 22);
        check(ThreeMajority, 4, 23);
        check(AntiVoter, 2, 24);
    }
}
