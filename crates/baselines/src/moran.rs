//! The Moran process (related work [18, 23] of the paper).

use pp_core::Colour;
use pp_engine::Protocol;
use rand::{Rng, RngExt};

/// A fitness-weighted Moran-style copying dynamics, adapted to the
/// one-way population-protocol model: the scheduled agent observes a random
/// neighbour and adopts its colour with probability proportional to that
/// colour's **fitness** (normalised by the maximum fitness).
///
/// Like Voter it is a consensus/fixation dynamics — diversity dies — but
/// fitter colours fix with higher probability, which is the evolutionary
/// phenomenon the classical Moran process models. Contrast with
/// Diversification, where weights shape a *sustained* split rather than
/// biasing which single colour survives.
///
/// # Examples
///
/// ```
/// use pp_baselines::MoranProcess;
/// use pp_engine::Protocol;
///
/// let p = MoranProcess::new(vec![1.0, 2.0]).unwrap();
/// assert_eq!(p.name(), "moran");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MoranProcess {
    fitness: Vec<f64>,
    max_fitness: f64,
}

/// Error returned for invalid fitness tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FitnessError;

impl std::fmt::Display for FitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fitness table must be non-empty with positive finite entries"
        )
    }
}

impl std::error::Error for FitnessError {}

impl MoranProcess {
    /// Creates the process with one fitness value per colour.
    ///
    /// # Errors
    ///
    /// Returns [`FitnessError`] if the table is empty or any fitness is
    /// non-positive or non-finite.
    pub fn new(fitness: Vec<f64>) -> Result<Self, FitnessError> {
        if fitness.is_empty() || fitness.iter().any(|&f| !f.is_finite() || f <= 0.0) {
            return Err(FitnessError);
        }
        let max_fitness = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(MoranProcess {
            fitness,
            max_fitness,
        })
    }

    /// Fitness of colour `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fitness(&self, i: usize) -> f64 {
        self.fitness[i]
    }
}

impl Protocol for MoranProcess {
    type State = Colour;

    fn transition(&self, me: &Colour, observed: &[&Colour], rng: &mut dyn Rng) -> Colour {
        let seen = *observed[0];
        let accept = self.fitness[seen.index()] / self.max_fitness;
        if rng.random_bool(accept) {
            seen
        } else {
            *me
        }
    }

    fn name(&self) -> String {
        "moran".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::Simulator;
    use pp_graph::Complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_fitness_colour_always_accepted() {
        let p = MoranProcess::new(vec![1.0, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(
                p.transition(&Colour::new(0), &[&Colour::new(1)], &mut rng),
                Colour::new(1)
            );
        }
    }

    #[test]
    fn weak_colour_accepted_proportionally() {
        let p = MoranProcess::new(vec![1.0, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 40_000;
        let adopted = (0..trials)
            .filter(|_| {
                p.transition(&Colour::new(1), &[&Colour::new(0)], &mut rng) == Colour::new(0)
            })
            .count();
        let rate = adopted as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "{rate}");
    }

    #[test]
    fn fitter_colour_usually_fixes() {
        // Colour 1 is 3x fitter; over many runs it should fix far more often.
        let mut wins = 0;
        for seed in 0..20u64 {
            let p = MoranProcess::new(vec![1.0, 3.0]).unwrap();
            let n = 40;
            let states: Vec<Colour> = (0..n).map(|u| Colour::new(u % 2)).collect();
            let mut sim = Simulator::new(p, Complete::new(n), states, seed);
            let hit = sim.run_until(5_000_000, 40, |pop, _| {
                let first = pop[0];
                pop.count_matching(|&c| c == first) == pop.len()
            });
            assert!(hit.is_some(), "no fixation at seed {seed}");
            if sim.population()[0] == Colour::new(1) {
                wins += 1;
            }
        }
        assert!(wins >= 14, "fit colour fixed only {wins}/20 times");
    }

    #[test]
    fn rejects_bad_fitness() {
        assert!(MoranProcess::new(vec![]).is_err());
        assert!(MoranProcess::new(vec![0.0]).is_err());
        assert!(MoranProcess::new(vec![f64::NAN]).is_err());
        let err = MoranProcess::new(vec![-1.0]).unwrap_err();
        assert!(format!("{err}").contains("positive"));
    }
}
