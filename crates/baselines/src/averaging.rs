//! Value-averaging dynamics (diffusion load balancing; noisy averaging).

use pp_engine::Protocol;
use rand::{Rng, RngExt};

/// One-way averaging: the scheduled agent moves its value to the midpoint of
/// its own and the observed value, optionally perturbed by bounded uniform
/// communication noise (the "noidy conmunixatipn" model of Mallmann-Trenn,
/// Maus, Pajak 2019, with uniform instead of arbitrary bounded noise).
///
/// The related-work contrast: averaging converges to a single shared value
/// (consensus on the mean) — the opposite of sustained diversity.
///
/// # Examples
///
/// ```
/// use pp_baselines::Averaging;
/// use pp_engine::Protocol;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let p = Averaging::noiseless();
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(p.transition(&2.0, &[&4.0], &mut rng), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Averaging {
    noise_amplitude: f64,
}

impl Averaging {
    /// Exact averaging (no communication noise).
    pub fn noiseless() -> Self {
        Averaging {
            noise_amplitude: 0.0,
        }
    }

    /// Averaging where the value read from the observed agent is corrupted
    /// by an independent uniform perturbation in `[-amplitude, amplitude]`.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or non-finite.
    pub fn with_noise(amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "noise amplitude must be a non-negative finite number"
        );
        Averaging {
            noise_amplitude: amplitude,
        }
    }

    /// The configured noise amplitude.
    pub fn noise_amplitude(&self) -> f64 {
        self.noise_amplitude
    }
}

impl Protocol for Averaging {
    type State = f64;

    fn transition(&self, me: &f64, observed: &[&f64], rng: &mut dyn Rng) -> f64 {
        let heard = if self.noise_amplitude > 0.0 {
            observed[0] + rng.random_range(-self.noise_amplitude..=self.noise_amplitude)
        } else {
            *observed[0]
        };
        (me + heard) / 2.0
    }

    fn name(&self) -> String {
        if self.noise_amplitude > 0.0 {
            format!("averaging(noise={})", self.noise_amplitude)
        } else {
            "averaging".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::Simulator;
    use pp_graph::Complete;
    use rand::SeedableRng;

    #[test]
    fn noiseless_midpoint() {
        let p = Averaging::noiseless();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(p.transition(&10.0, &[&0.0], &mut rng), 5.0);
    }

    #[test]
    fn converges_to_near_common_value() {
        let n = 64;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut sim = Simulator::new(Averaging::noiseless(), Complete::new(n), values, 3);
        sim.run(200_000);
        let states = sim.population().states();
        let min = states.iter().copied().fold(f64::INFINITY, f64::min);
        let max = states.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min < 1.0, "spread {} too wide", max - min);
    }

    #[test]
    fn one_way_averaging_drifts_but_stays_in_range() {
        // One-way averaging does not conserve the sum exactly, but values
        // stay within the convex hull of the initial values.
        let n = 32;
        let values: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let mut sim = Simulator::new(Averaging::noiseless(), Complete::new(n), values, 9);
        sim.run(50_000);
        for &v in sim.population().states() {
            assert!((0.0..=4.0).contains(&v));
        }
    }

    #[test]
    fn noise_keeps_values_dispersed() {
        let n = 64;
        let values = vec![0.0; n];
        let mut sim = Simulator::new(Averaging::with_noise(1.0), Complete::new(n), values, 5);
        sim.run(100_000);
        let states = sim.population().states();
        let mean = states.iter().sum::<f64>() / n as f64;
        let var = states.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(var > 1e-4, "noise failed to keep dispersion: var = {var}");
    }

    #[test]
    fn names_distinguish_noise() {
        assert_eq!(Averaging::noiseless().name(), "averaging");
        assert!(Averaging::with_noise(0.5).name().contains("0.5"));
        assert_eq!(Averaging::with_noise(0.5).noise_amplitude(), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_noise() {
        Averaging::with_noise(-1.0);
    }
}
