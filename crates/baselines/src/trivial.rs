//! The strawman from the paper's introduction: global proportional sampling.

use pp_core::{Colour, Weights};
use pp_engine::Protocol;
use rand::{Rng, RngExt};

/// The "trivial" diversification protocol the introduction argues against:
/// on every activation the agent ignores what it observes and resamples its
/// colour with probability proportional to the weights.
///
/// It trivially achieves the right *marginal* distribution, but:
///
/// 1. it requires **global knowledge** of all colours and weights (here:
///    the protocol object carries the whole table — the very thing a real
///    agent cannot store); and
/// 2. it is **not robust**: if the environment retires a colour (recolours
///    all its supporters), this protocol keeps resampling the dead colour
///    forever, because no local observation informs the agents. Experiment
///    `t6_sustainability` demonstrates exactly this failure against
///    Diversification's recovery.
///
/// # Examples
///
/// ```
/// use pp_baselines::TrivialProportional;
/// use pp_core::Weights;
/// use pp_engine::Protocol;
///
/// let p = TrivialProportional::new(Weights::new(vec![1.0, 3.0])?);
/// assert_eq!(p.name(), "trivial-proportional");
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrivialProportional {
    weights: Weights,
}

impl TrivialProportional {
    /// Creates the protocol with full knowledge of the weight table.
    pub fn new(weights: Weights) -> Self {
        TrivialProportional { weights }
    }

    /// The globally-known weight table.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Samples a colour with probability `w_i / w`.
    pub fn sample_colour(&self, rng: &mut dyn Rng) -> Colour {
        let target: f64 = rng.random_range(0.0..self.weights.total());
        let mut acc = 0.0;
        for (i, w) in self.weights.iter() {
            acc += w;
            if target < acc {
                return Colour::new(i);
            }
        }
        Colour::new(self.weights.len() - 1)
    }
}

impl Protocol for TrivialProportional {
    type State = Colour;

    fn transition(&self, _me: &Colour, _observed: &[&Colour], rng: &mut dyn Rng) -> Colour {
        self.sample_colour(rng)
    }

    fn name(&self) -> String {
        "trivial-proportional".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_proportionally() {
        let p = TrivialProportional::new(Weights::new(vec![1.0, 3.0]).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let mut heavy = 0u32;
        for _ in 0..trials {
            if p.sample_colour(&mut rng) == Colour::new(1) {
                heavy += 1;
            }
        }
        let frac = heavy as f64 / trials as f64;
        assert!((frac - 0.75).abs() < 0.01, "{frac}");
    }

    #[test]
    fn ignores_observation() {
        let p = TrivialProportional::new(Weights::uniform(2));
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let out1 = p.transition(&Colour::new(0), &[&Colour::new(1)], &mut a);
        let out2 = p.transition(&Colour::new(1), &[&Colour::new(0)], &mut b);
        assert_eq!(out1, out2, "output depends only on the RNG stream");
    }

    #[test]
    fn resamples_dead_colours() {
        // The non-robustness the intro describes: even if colour 0 is dead
        // in the population, agents keep choosing it.
        let p = TrivialProportional::new(Weights::uniform(2));
        let mut rng = StdRng::seed_from_u64(4);
        let saw_dead = (0..100)
            .any(|_| p.transition(&Colour::new(1), &[&Colour::new(1)], &mut rng) == Colour::new(0));
        assert!(saw_dead);
    }

    #[test]
    fn single_colour_always_sampled() {
        let p = TrivialProportional::new(Weights::uniform(1));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(p.sample_colour(&mut rng), Colour::new(0));
        }
    }
}
