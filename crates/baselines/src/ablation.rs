//! Ablations of the Diversification protocol: each variant removes one of
//! the two design choices the paper's intuition section singles out, so the
//! ablation benches can show what every ingredient buys.

use pp_core::{AgentState, Shade, Weights};
use pp_engine::Protocol;
use rand::{Rng, RngExt};

/// Ablation 1 — **shade-blind adoption**: rule 1 of Eq. (2) is weakened so a
/// light agent adopts the colour of *any* observed agent (dark or light),
/// darkening in the process. Rule 2 is unchanged.
///
/// The paper's rule 1 only copies **dark** colours — the weight-calibrated
/// signal the proof's adoption-rate computation relies on. Empirically the
/// equilibrium turns out to be robust to this relaxation (light agents are a
/// thin `1/(1+w)` slice whose colour mix tracks the dark mix), which the
/// `ablations` experiment reports honestly: the decisive ingredient is the
/// weight-inverse softening, not dark-only adoption.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptAnyShade {
    weights: Weights,
}

impl AdoptAnyShade {
    /// Creates the ablated protocol.
    pub fn new(weights: Weights) -> Self {
        AdoptAnyShade { weights }
    }

    /// The weight table.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }
}

impl Protocol for AdoptAnyShade {
    type State = AgentState;

    fn transition(
        &self,
        me: &AgentState,
        observed: &[&AgentState],
        rng: &mut dyn Rng,
    ) -> AgentState {
        let v = observed[0];
        match (me.shade, v.shade) {
            (Shade::Light, _) => AgentState::dark(v.colour),
            (Shade::Dark, Shade::Dark) if me.colour == v.colour => {
                let w_i = self.weights.get(me.colour.index());
                if rng.random_bool(1.0 / w_i) {
                    AgentState::light(me.colour)
                } else {
                    *me
                }
            }
            _ => *me,
        }
    }

    fn name(&self) -> String {
        "ablation-adopt-any-shade".to_string()
    }
}

/// Ablation 2 — **weight-blind softening**: rule 2 of Eq. (2) softens with a
/// fixed probability `p` instead of `1/w_i`. Rule 1 is unchanged.
///
/// The weight-inverse softening rate is what encodes the weights into the
/// equilibrium (`C_i ≈ w_i n / w`); with a constant rate the equilibrium
/// collapses to the uniform partition regardless of the weights —
/// experiment `ablation_flip` shows the heavy colour losing its extra share.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantFlip {
    flip_probability: f64,
}

impl ConstantFlip {
    /// Creates the ablated protocol with softening probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn new(flip_probability: f64) -> Self {
        assert!(
            flip_probability > 0.0 && flip_probability <= 1.0,
            "flip probability must be in (0, 1], got {flip_probability}"
        );
        ConstantFlip { flip_probability }
    }

    /// The constant softening probability.
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }
}

impl Protocol for ConstantFlip {
    type State = AgentState;

    fn transition(
        &self,
        me: &AgentState,
        observed: &[&AgentState],
        rng: &mut dyn Rng,
    ) -> AgentState {
        let v = observed[0];
        match (me.shade, v.shade) {
            (Shade::Light, Shade::Dark) => AgentState::dark(v.colour),
            (Shade::Dark, Shade::Dark) if me.colour == v.colour => {
                if rng.random_bool(self.flip_probability) {
                    AgentState::light(me.colour)
                } else {
                    *me
                }
            }
            _ => *me,
        }
    }

    fn name(&self) -> String {
        format!("ablation-constant-flip({})", self.flip_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, Colour, ConfigStats};
    use pp_engine::Simulator;
    use pp_graph::Complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn adopt_any_shade_copies_light() {
        let p = AdoptAnyShade::new(Weights::uniform(2));
        let me = AgentState::light(Colour::new(0));
        let v = AgentState::light(Colour::new(1));
        let out = p.transition(&me, &[&v], &mut rng());
        assert_eq!(out, AgentState::dark(Colour::new(1)));
    }

    #[test]
    fn adopt_any_shade_keeps_rule2() {
        let p = AdoptAnyShade::new(Weights::new(vec![1.0, 1.0]).unwrap());
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::dark(Colour::new(0));
        assert_eq!(
            p.transition(&me, &[&v], &mut rng()),
            AgentState::light(Colour::new(0))
        );
    }

    #[test]
    fn adopt_any_shade_still_sustainable() {
        // Rule 2 is intact, so the last dark agent of a colour survives.
        let weights = Weights::uniform(3);
        let n = 60;
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(AdoptAnyShade::new(weights), Complete::new(n), states, 5);
        for _ in 0..30 {
            sim.run(300);
            let stats = ConfigStats::from_states(sim.population().states(), 3);
            assert!(stats.all_colours_alive());
        }
    }

    #[test]
    fn constant_flip_ignores_weights() {
        let p = ConstantFlip::new(1.0);
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::dark(Colour::new(0));
        // Always softens regardless of any weight table.
        assert_eq!(
            p.transition(&me, &[&v], &mut rng()),
            AgentState::light(Colour::new(0))
        );
    }

    #[test]
    fn constant_flip_equalises_weighted_colours() {
        // Weighted start (w = (1, 3)) but weight-blind dynamics: the heavy
        // colour drifts back toward 1/2 rather than 3/4.
        let weights = Weights::new(vec![1.0, 3.0]).unwrap();
        let n = 400;
        let states = init::all_dark_proportional(n, &weights);
        let mut sim = Simulator::new(ConstantFlip::new(0.5), Complete::new(n), states, 11);
        sim.run(300_000);
        let stats = ConfigStats::from_states(sim.population().states(), 2);
        let heavy = stats.colour_fraction(1);
        assert!(
            (heavy - 0.5).abs() < 0.15,
            "weight-blind equilibrium should be uniform, got {heavy}"
        );
    }

    #[test]
    fn accessors_and_names() {
        assert!(AdoptAnyShade::new(Weights::uniform(2))
            .name()
            .contains("shade"));
        let cf = ConstantFlip::new(0.25);
        assert_eq!(cf.flip_probability(), 0.25);
        assert!(cf.name().contains("0.25"));
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn rejects_zero_probability() {
        ConstantFlip::new(0.0);
    }
}
