//! Parallel independent-seed replication — work-stealing scalar runs
//! ([`replicate`]) and the lane-packed ensemble front-end
//! ([`replicate_vec`]).

use crate::pool;
use crate::{PackedProtocol, TurboWord, VecSimulator};
use pp_graph::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(seed)` for every seed, in parallel across available cores, and
/// returns the results in seed order.
///
/// The paper's guarantees are "with high probability"; experiments check
/// them by replicating a measurement over independent seeds and reporting
/// the spread. `f` must be deterministic given its seed for the results to
/// be reproducible.
///
/// Work is distributed by an atomic claim index rather than contiguous
/// chunks: each worker repeatedly claims the next unclaimed seed. When
/// per-seed costs are heterogeneous — a cycle run takes far longer than a
/// complete-graph run in the topology sweeps — chunking leaves threads idle
/// behind the slowest chunk, while stealing keeps all cores busy until the
/// queue drains. Results are still returned in seed order.
///
/// Worker threads come from the crate-wide [`pool`] budget and the calling
/// thread claims seeds alongside them, so nested parallelism — a
/// [`ShardedSimulator`](crate::ShardedSimulator) run inside a seed
/// closure, or a `replicate` inside a `sweep_grid` cell — degrades to
/// inline execution instead of oversubscribing the machine.
///
/// # Examples
///
/// ```
/// use pp_engine::replicate;
///
/// let squares = replicate(0..5, |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn replicate<R, F>(seeds: impl IntoIterator<Item = u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let lease = pool::lease(seeds.len().saturating_sub(1).min(pool::parallelism() - 1));
    if lease.workers() == 0 {
        return seeds.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (f, seeds_ref, next_ref) = (&f, &seeds[..], &next);
    let claim_loop = move || {
        let mut local = Vec::new();
        loop {
            let i = next_ref.fetch_add(1, Ordering::Relaxed);
            let Some(&seed) = seeds_ref.get(i) else {
                return local;
            };
            pp_obs::obs_count!("pool.replicate_claims", 1);
            local.push((i, f(seed)));
        }
    };
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lease.workers())
            .map(|_| scope.spawn(claim_loop))
            .collect();
        // The caller works the same claim queue instead of idling.
        indexed.extend(claim_loop());
        for h in handles {
            indexed.extend(h.join().expect("replicate worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs an ensemble of independent-seed replicas through the
/// lane-parallel [`VecSimulator`], `L` seeds per step loop, and returns
/// `extract(seed, lane_states_packed)` for every seed, in seed order.
///
/// Seeds are packed into groups of `L` lanes; a remainder group (seed
/// count not divisible by `L`) falls back to one-lane runs through the
/// *same* engine. Every replica's trajectory is the pure function
/// `F(master_seed, seed)` — independent of grouping, lane slot, and `L`
/// (see the [`vec`](crate::vec) module docs) — so the results are
/// byte-identical to running each seed alone, and a seed list produces
/// the same ensemble whether it splits into full groups or not.
///
/// All groups share `master_seed` (it keys each group's schedule walk),
/// so replicas *within one group* are conditionally independent given
/// their shared schedule; harnesses that treat replicas as fully
/// independent samples should spread statistically-paired seeds across
/// groups, or derive one master per group themselves and call
/// [`VecSimulator`] directly.
///
/// Groups are distributed across cores by [`replicate`]'s work-stealing
/// claim loop, so the two parallelism axes — SIMD lanes within a group,
/// cores across groups — compose.
///
/// # Examples
///
/// ```
/// use pp_engine::{replicate_vec, PackedProtocol};
/// use pp_graph::Complete;
/// use rand::Rng;
///
/// #[derive(Debug, Clone)]
/// struct PackedVoter;
///
/// impl PackedProtocol for PackedVoter {
///     type State = u8;
///     fn pack(&self, s: &u8) -> u32 {
///         *s as u32
///     }
///     fn unpack(&self, p: u32) -> u8 {
///         p as u8
///     }
///     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
///         observed[0]
///     }
///     fn name(&self) -> String {
///         "packed-voter".into()
///     }
/// }
///
/// let init: Vec<u8> = (0..8).collect();
/// // Five seeds through 4-lane groups: one full group + a remainder.
/// let seeds: Vec<u64> = (0..5).collect();
/// let winners = replicate_vec::<_, _, u8, 4, _>(
///     &PackedVoter,
///     &Complete::new(8),
///     &init,
///     7,
///     &seeds,
///     50_000,
///     |_seed, states| states[0],
/// );
/// assert_eq!(winners.len(), 5);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn replicate_vec<P, T, W, const L: usize, R>(
    protocol: &P,
    topology: &T,
    initial: &[P::State],
    master_seed: u64,
    seeds: &[u64],
    steps: u64,
    extract: impl Fn(u64, &[u32]) -> R + Sync,
) -> Vec<R>
where
    P: PackedProtocol + Clone + Sync,
    P::State: Sync,
    T: Topology + Clone + Sync,
    W: TurboWord,
    R: Send,
{
    if seeds.is_empty() {
        return Vec::new();
    }
    let packed: Vec<u32> = initial.iter().map(|s| protocol.pack(s)).collect();
    let groups: Vec<&[u64]> = seeds.chunks(L).collect();
    let extract = &extract;
    let packed = &packed;
    let per_group: Vec<Vec<R>> = replicate(0..groups.len() as u64, |g| {
        let chunk = groups[g as usize];
        pp_obs::obs_count!("vec.ensemble_groups", 1);
        pp_obs::obs_value!("vec.lane_occupancy", chunk.len() as u64);
        if let Ok(lane_seeds) = <[u64; L]>::try_from(chunk) {
            // Full group: L replicas per step loop.
            let mut sim = VecSimulator::<P, T, W, L>::from_packed(
                protocol.clone(),
                topology.clone(),
                packed.clone(),
                master_seed,
                lane_seeds,
            );
            sim.run(steps);
            (0..L)
                .zip(chunk)
                .map(|(l, &seed)| extract(seed, &sim.lane_states_packed(l)))
                .collect()
        } else {
            // Remainder: the same engine at one lane per seed, same
            // master — byte-identical to the seed's full-group trajectory.
            chunk
                .iter()
                .map(|&seed| {
                    let mut sim = VecSimulator::<P, T, W, 1>::from_packed(
                        protocol.clone(),
                        topology.clone(),
                        packed.clone(),
                        master_seed,
                        [seed],
                    );
                    sim.run(steps);
                    extract(seed, &sim.lane_states_packed(0))
                })
                .collect()
        }
    });
    per_group.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_seed_order() {
        let out = replicate(0..100, |s| s * 2);
        assert_eq!(out, (0..100).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = replicate(std::iter::empty(), |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_seed() {
        assert_eq!(replicate([42], |s| s + 1), vec![43]);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = replicate(0..64, |s| {
            counter.fetch_add(1, Ordering::SeqCst);
            s
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn non_contiguous_seeds() {
        let seeds = [5u64, 1, 9, 9, 2];
        let out = replicate(seeds, |s| s);
        assert_eq!(out, seeds);
    }

    #[test]
    fn nested_replicate_degrades_to_inline() {
        // An inner replicate inside a seed closure must not multiply
        // thread counts: whatever the outer call leased, inner calls see a
        // reduced budget and still return correct, ordered results.
        let out = replicate(0..8, |s| {
            let inner = replicate(0..4, move |t| s * 10 + t);
            assert_eq!(inner, (0..4).map(|t| s * 10 + t).collect::<Vec<_>>());
            s
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    /// Voter dynamics for the ensemble front-end tests.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: rand::Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Satellite contract: every seed count — divisible by L or not —
    /// produces byte-identical per-seed results vs sequential one-lane
    /// runs, in seed order.
    #[test]
    fn replicate_vec_remainders_match_sequential_scalar() {
        const L: usize = 8;
        let topo = pp_graph::Torus2d::new(5, 8);
        let init: Vec<u32> = (0..40).map(|u| u % 5).collect();
        let master = 77;
        let steps = 4_000;
        for count in [1usize, L - 1, L + 1, 2 * L + 3] {
            let seeds: Vec<u64> = (0..count as u64).map(|s| 1_000 + 3 * s).collect();
            let ensemble = replicate_vec::<_, _, u8, L, _>(
                &Copy1,
                &topo,
                &init,
                master,
                &seeds,
                steps,
                |seed, states| (seed, states.to_vec()),
            );
            assert_eq!(ensemble.len(), count, "count {count}");
            for (i, &seed) in seeds.iter().enumerate() {
                let mut scalar =
                    crate::VecSimulator::<_, _, u8, 1>::new(Copy1, topo, &init, master, [seed]);
                scalar.run(steps);
                assert_eq!(
                    ensemble[i],
                    (seed, scalar.lane_states_packed(0)),
                    "count {count}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn replicate_vec_empty_seed_list() {
        let init: Vec<u32> = (0..4).collect();
        let out: Vec<u32> = replicate_vec::<_, _, u32, 4, _>(
            &Copy1,
            &pp_graph::Complete::new(4),
            &init,
            0,
            &[],
            100,
            |_, states| states[0],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn heterogeneous_costs_keep_seed_order() {
        // Early seeds are made far more expensive than late ones, so under
        // work-stealing the *completion* order scrambles; the returned
        // order must still match the seed order.
        let out = replicate(0..32, |s| {
            let spins = if s < 4 { 200_000 } else { 10 };
            let mut acc = s;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (s, acc)
        });
        for (i, &(s, _)) in out.iter().enumerate() {
            assert_eq!(s, i as u64);
        }
    }
}
