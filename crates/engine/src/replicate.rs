//! Parallel independent-seed replication.

/// Runs `f(seed)` for every seed, in parallel across available cores, and
/// returns the results in seed order.
///
/// The paper's guarantees are "with high probability"; experiments check
/// them by replicating a measurement over independent seeds and reporting
/// the spread. `f` must be deterministic given its seed for the results to
/// be reproducible.
///
/// # Examples
///
/// ```
/// use pp_engine::replicate;
///
/// let squares = replicate(0..5, |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn replicate<R, F>(seeds: impl IntoIterator<Item = u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(seeds.len());
    if threads == 1 {
        return seeds.into_iter().map(f).collect();
    }
    let chunk = seeds.len().div_ceil(threads);
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|chunk_seeds| {
                scope.spawn(move || chunk_seeds.iter().map(|&s| f(s)).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("replicate worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_seed_order() {
        let out = replicate(0..100, |s| s * 2);
        assert_eq!(out, (0..100).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = replicate(std::iter::empty(), |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_seed() {
        assert_eq!(replicate([42], |s| s + 1), vec![43]);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = replicate(0..64, |s| {
            counter.fetch_add(1, Ordering::SeqCst);
            s
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn non_contiguous_seeds() {
        let seeds = [5u64, 1, 9, 9, 2];
        let out = replicate(seeds, |s| s);
        assert_eq!(out, seeds);
    }
}
