//! Parallel independent-seed replication.

use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(seed)` for every seed, in parallel across available cores, and
/// returns the results in seed order.
///
/// The paper's guarantees are "with high probability"; experiments check
/// them by replicating a measurement over independent seeds and reporting
/// the spread. `f` must be deterministic given its seed for the results to
/// be reproducible.
///
/// Work is distributed by an atomic claim index rather than contiguous
/// chunks: each worker repeatedly claims the next unclaimed seed. When
/// per-seed costs are heterogeneous — a cycle run takes far longer than a
/// complete-graph run in the topology sweeps — chunking leaves threads idle
/// behind the slowest chunk, while stealing keeps all cores busy until the
/// queue drains. Results are still returned in seed order.
///
/// Worker threads come from the crate-wide [`pool`] budget and the calling
/// thread claims seeds alongside them, so nested parallelism — a
/// [`ShardedSimulator`](crate::ShardedSimulator) run inside a seed
/// closure, or a `replicate` inside a `sweep_grid` cell — degrades to
/// inline execution instead of oversubscribing the machine.
///
/// # Examples
///
/// ```
/// use pp_engine::replicate;
///
/// let squares = replicate(0..5, |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn replicate<R, F>(seeds: impl IntoIterator<Item = u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = seeds.into_iter().collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let lease = pool::lease(seeds.len().saturating_sub(1).min(pool::parallelism() - 1));
    if lease.workers() == 0 {
        return seeds.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (f, seeds_ref, next_ref) = (&f, &seeds[..], &next);
    let claim_loop = move || {
        let mut local = Vec::new();
        loop {
            let i = next_ref.fetch_add(1, Ordering::Relaxed);
            let Some(&seed) = seeds_ref.get(i) else {
                return local;
            };
            pp_obs::obs_count!("pool.replicate_claims", 1);
            local.push((i, f(seed)));
        }
    };
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(seeds.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lease.workers())
            .map(|_| scope.spawn(claim_loop))
            .collect();
        // The caller works the same claim queue instead of idling.
        indexed.extend(claim_loop());
        for h in handles {
            indexed.extend(h.join().expect("replicate worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_seed_order() {
        let out = replicate(0..100, |s| s * 2);
        assert_eq!(out, (0..100).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = replicate(std::iter::empty(), |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_seed() {
        assert_eq!(replicate([42], |s| s + 1), vec![43]);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = replicate(0..64, |s| {
            counter.fetch_add(1, Ordering::SeqCst);
            s
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn non_contiguous_seeds() {
        let seeds = [5u64, 1, 9, 9, 2];
        let out = replicate(seeds, |s| s);
        assert_eq!(out, seeds);
    }

    #[test]
    fn nested_replicate_degrades_to_inline() {
        // An inner replicate inside a seed closure must not multiply
        // thread counts: whatever the outer call leased, inner calls see a
        // reduced budget and still return correct, ordered results.
        let out = replicate(0..8, |s| {
            let inner = replicate(0..4, move |t| s * 10 + t);
            assert_eq!(inner, (0..4).map(|t| s * 10 + t).collect::<Vec<_>>());
            s
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn heterogeneous_costs_keep_seed_order() {
        // Early seeds are made far more expensive than late ones, so under
        // work-stealing the *completion* order scrambles; the returned
        // order must still match the seed order.
        let out = replicate(0..32, |s| {
            let spins = if s < 4 { 200_000 } else { 10 };
            let mut acc = s;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (s, acc)
        });
        for (i, &(s, _)) in out.iter().enumerate() {
            assert_eq!(s, i as u64);
        }
    }
}
