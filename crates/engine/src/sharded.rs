//! The graph-partitioned multi-core engine.
//!
//! Every engine tier so far runs one simulation on one thread;
//! [`replicate`](crate::replicate()) only parallelises *across* seeds. This
//! module parallelises a **single run**: the node set is split into
//! shards by a [`Partition`] (contiguous ranges for geometric numberings,
//! index-striped for the complete graph — each topology picks via
//! [`Topology::preferred_partition`]), and the shards step concurrently.
//!
//! # Scheduling contract: the count-split
//!
//! Uniform scheduling decomposes **exactly**. In a block of `B`
//! time-steps, the number of steps scheduled on each shard is jointly
//! multinomial over the shard sizes, and conditioned on those counts the
//! scheduled agents are uniform *within* each shard. The engine samples
//! that decomposition directly instead of scanning a shared schedule:
//!
//! 1. Per block, the per-shard granted counts `c_0..c_{S−1}` are drawn
//!    from one dedicated counter stream (`CounterRng::for_shard(seed,
//!    u64::MAX, block)` — the tag is reserved; shard ids fit `u32`) as a
//!    chain of conditional binomials over the partition's shard sizes,
//!    `c_s ~ Binomial(B − Σc_<s, size_s / rem_nodes)`. The chain's joint
//!    law is exactly the multinomial the old per-step uniform draw
//!    induced.
//! 2. Each shard runs its granted count alone: one agent draw (uniform
//!    over its own members) plus `m` partner draws per step, all from its
//!    private stream keyed `(seed, shard, block)`
//!    ([`CounterRng::for_shard`]).
//!
//! No shard touches another's randomness and no per-step global hash
//! work remains, so scheduled-step throughput scales with the worker
//! count while the trajectory stays a pure function of
//! `(protocol, topology, initial states, seed, shards, block, read
//! mode)` — **independent of how many threads execute it**. A shard
//! paused mid-block realigns in `O(1)`: executing the block sub-range
//! `[q0, q1)` means running granted steps `j ∈ [⌊c·q0/B⌋, ⌊c·q1/B⌋)`,
//! and the stream skips to position `j0·(m+1)` with one multiply-add
//! ([`CounterRng::advance_by`]).
//!
//! # Cross-shard reads: two modes
//!
//! Shards only ever *write* their own members, so the within-block
//! interleaving of shard-local interactions is unobservable. What needs a
//! policy is a scheduled agent *reading* a partner another shard owns
//! (the owner may be mid-write). [`ReadMode`] picks it:
//!
//! - [`Defer`](ReadMode::Defer) (default on contiguous partitions): the
//!   interaction is queued — `(merge key, agent, partners, entropy)` —
//!   and applied between blocks in one deterministic merge, ordered by
//!   `(granted index, shard)`, a round-robin interleave of the shard
//!   sub-sequences. The relaxation is a bounded *reordering*: every
//!   deferred interaction lands within its own block, i.e. delayed by
//!   less than `B` steps — less than `B/n` parallel rounds. With the
//!   default block (`B ≤ n/16`) that is a ≤ 1/16-round perturbation
//!   carried by the cut fraction ([`Partition::cross_edge_fraction`]) of
//!   interactions; on rings and tori the cut is `O(shards/√n)` and the
//!   bias sits orders of magnitude below the statistical harness's
//!   resolution. Interaction counts are exact: every granted step
//!   executes exactly once, local or merged.
//! - [`Snapshot`](ReadMode::Snapshot) (default on strided partitions —
//!   expanders and the complete graph, where the cut approaches
//!   `(S−1)/S` and deferring would serialise most interactions through
//!   the merge): remote partner reads come from a **block-start
//!   snapshot** of the global state, local reads stay live, and every
//!   interaction applies immediately — no queue, no merge. A remote read
//!   is then at most one block stale, a staleness bias of
//!   `O(B/n × cut-fraction)` parallel rounds (≤ 1/16 round at the
//!   default block even at full cut), verified against the bit-exact
//!   engines by the second `EquivalenceSuite` battery in
//!   `tests/sharded_equivalence.rs`. The gather costs `O(n)` per block —
//!   16 words per step at the default block length.
//!
//! Both modes are statistical-tier relaxations with the same trajectory
//! determinism: `(seed, shards, block, read mode)` fixes the run bit for
//! bit regardless of thread count.
//!
//! # Threads
//!
//! `run` leases workers from the crate-wide [`pool`] budget — nested use
//! (a sharded run inside `replicate`) degrades to single-threaded inline
//! execution instead of oversubscribing. Workers are spawned **once per
//! `run` call** and stay parked on channels across all of the run's
//! blocks; shard state moves to a worker and back each block (two pointer
//! moves), and the boundary work (the merge, or the next block's
//! snapshot gather) runs on the calling thread while workers wait.

use crate::packed::MAX_PACKED_OBSERVATIONS;
use crate::pool;
use crate::{PackedProtocol, Population, TurboWord};
use pp_graph::{Partition, PartitionKind, Topology};
use rand::rngs::{CounterRng, GOLDEN};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// The stream tag of the per-block count-split draw
/// (`CounterRng::for_shard(seed, SPLIT_STREAM, block)`). Reserved: real
/// shard ids are bounded by the `u32` node-id budget.
const SPLIT_STREAM: u64 = u64::MAX;

/// How a scheduled agent reads partners owned by another shard. Part of
/// the trajectory key (and of the snapshot aux payload): two runs agree
/// bit for bit only when their read modes match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Queue the interaction and apply it in the deterministic
    /// block-boundary merge (bounded reordering; exact interaction
    /// counts). Default for contiguous partitions, whose cut is small.
    Defer,
    /// Read remote partners from a block-start snapshot of the global
    /// state and apply the interaction immediately (bounded staleness;
    /// no merge). Default for strided partitions — high-cut families
    /// where deferring would serialise most interactions.
    Snapshot,
}

impl ReadMode {
    /// The mode each partition layout defaults to.
    pub fn default_for(kind: PartitionKind) -> Self {
        match kind {
            PartitionKind::Contiguous => ReadMode::Defer,
            PartitionKind::Strided => ReadMode::Snapshot,
        }
    }

    /// The mode's snapshot-aux encoding (`Defer` = 0, `Snapshot` = 1).
    pub fn aux_word(self) -> u64 {
        match self {
            ReadMode::Defer => 0,
            ReadMode::Snapshot => 1,
        }
    }

    /// Decodes [`aux_word`](Self::aux_word); `None` for unknown codes.
    pub fn from_aux_word(w: u64) -> Option<Self> {
        match w {
            0 => Some(ReadMode::Defer),
            1 => Some(ReadMode::Snapshot),
            _ => None,
        }
    }
}

/// A cross-shard interaction awaiting the block-boundary merge
/// (`Defer` mode only).
#[derive(Debug, Clone, Copy)]
struct Deferred {
    /// Merge order: `(granted index << 32) | shard` — the round-robin
    /// interleave of the shard sub-sequences. Unique: each shard has one
    /// interaction per granted index.
    key: u64,
    /// Scheduled agent (global id).
    agent: u32,
    /// Observed partners (global ids); first `OBSERVATIONS` entries used.
    partners: [u32; MAX_PACKED_OBSERVATIONS],
    /// The step's last partner word: transition `aux` entropy, and the
    /// parking spot of the step's fallback RNG stream.
    entropy: u64,
}

/// One shard's state: the packed words of its members (in
/// [`Partition::local_index`] order) plus its pending boundary queue.
#[derive(Debug)]
struct Shard<W> {
    states: Vec<W>,
    queue: Vec<Deferred>,
}

// Manual impl: `W` need not be `Default` for an empty shard to exist
// (`std::mem::take` uses this as the hole left while a shard visits a
// worker thread).
impl<W> Default for Shard<W> {
    fn default() -> Self {
        Shard {
            states: Vec::new(),
            queue: Vec::new(),
        }
    }
}

/// A finished shard travelling back from a worker to the caller.
type ShardReturn<W> = (usize, Shard<W>);

/// One block's work order for one worker thread.
struct Job<W> {
    block_index: u64,
    block_start: u64,
    from: u64,
    to: u64,
    counts: Arc<Vec<u64>>,
    snap: Option<Arc<Vec<u32>>>,
    batch: Vec<(usize, Shard<W>)>,
}

/// The graph-partitioned parallel simulator.
///
/// Same state encoding as [`TurboSimulator`](crate::TurboSimulator) —
/// counter-based randomness, packed `u32` protocol words in [`TurboWord`]
/// storage — but scheduling is decomposed per shard by an exact
/// multinomial count-split and shard blocks run in parallel, with
/// cross-shard reads resolved per [`ReadMode`] (see the module docs for
/// the exact contract). Statistical-tier engine: verified against the
/// bit-exact engines by the `pp-stats` equivalence harness
/// (`tests/sharded_equivalence.rs`).
///
/// # Examples
///
/// ```
/// use pp_engine::{PackedProtocol, ShardedSimulator};
/// use pp_graph::Cycle;
/// use rand::Rng;
///
/// #[derive(Debug)]
/// struct PackedVoter;
///
/// impl PackedProtocol for PackedVoter {
///     type State = u8;
///     fn pack(&self, s: &u8) -> u32 {
///         *s as u32
///     }
///     fn unpack(&self, p: u32) -> u8 {
///         p as u8
///     }
///     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
///         observed[0]
///     }
///     fn name(&self) -> String {
///         "packed-voter".into()
///     }
/// }
///
/// let states: Vec<u8> = (0..64).collect();
/// let mut sim = ShardedSimulator::<_, _, u8>::new(PackedVoter, Cycle::new(64), &states, 7)
///     .with_layout(4, 32);
/// sim.run(10_000);
/// assert_eq!(sim.step_count(), 10_000);
/// ```
#[derive(Debug)]
pub struct ShardedSimulator<P: PackedProtocol, T: Topology, W: TurboWord = u32> {
    protocol: P,
    topology: T,
    partition: Partition,
    shards: Vec<Shard<W>>,
    step: u64,
    seed: u64,
    block: u64,
    read_mode: ReadMode,
    /// Block-start snapshot of the packed global state (`Snapshot` mode,
    /// multi-shard blocks only). Lives from the block's first segment to
    /// its boundary so mid-block pauses resume against the same copy.
    block_snap: Option<Arc<Vec<u32>>>,
    last_threads: usize,
    double_count_boundary: bool,
    split_off_by_one: bool,
}

/// Shard count `run` plans for by default: one per available core, but at
/// least `MIN_NODES_PER_SHARD` nodes per shard — below that the per-block
/// split and boundary overheads outweigh any parallel win.
fn auto_shards(n: usize) -> usize {
    const MIN_NODES_PER_SHARD: usize = 4096;
    pool::parallelism().min(n / MIN_NODES_PER_SHARD).max(1)
}

/// Default block length: short enough that the boundary-reordering (or
/// snapshot-staleness) window stays well under a parallel round, long
/// enough to amortise the per-block hand-off (two channel moves per
/// shard) and boundary work.
fn auto_block(n: usize) -> u64 {
    (n as u64 / 16).clamp(256, 16384)
}

impl<P: PackedProtocol, T: Topology, W: TurboWord> ShardedSimulator<P, T, W> {
    /// Creates a simulator at time-step 0 with the topology's preferred
    /// partition layout, one shard per available core (capped so shards
    /// stay large enough to be worth a thread), the default block
    /// length, and the layout's default [`ReadMode`]. Override with
    /// [`with_layout`](Self::with_layout) /
    /// [`with_read_mode`](Self::with_read_mode).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`from_packed`](Self::from_packed).
    pub fn new(protocol: P, topology: T, initial_states: &[P::State], seed: u64) -> Self {
        let packed = initial_states.iter().map(|s| protocol.pack(s)).collect();
        Self::from_packed(protocol, topology, packed, seed)
    }

    /// Creates a simulator from already-packed (`u32`) states, narrowing
    /// them into `W` storage.
    ///
    /// # Panics
    ///
    /// Panics if the number of states does not match the topology size,
    /// the population is smaller than 2, `P::OBSERVATIONS` is 0 or above
    /// [`MAX_PACKED_OBSERVATIONS`], the topology exceeds `u32::MAX` nodes,
    /// or any packed state overflows the storage word `W`.
    pub fn from_packed(protocol: P, topology: T, states: Vec<u32>, seed: u64) -> Self {
        let n = states.len();
        assert_eq!(
            n,
            topology.len(),
            "population size {n} != topology size {}",
            topology.len()
        );
        assert!(n >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(n).is_ok(),
            "sharded queues store node ids as u32; {n} agents is too many"
        );
        assert!(
            (1..=MAX_PACKED_OBSERVATIONS).contains(&P::OBSERVATIONS),
            "packed protocol must observe 1..={MAX_PACKED_OBSERVATIONS} agents, got {}",
            P::OBSERVATIONS
        );
        let kind = topology.preferred_partition();
        let partition = Partition::new(n, auto_shards(n), kind);
        let mut sim = ShardedSimulator {
            protocol,
            topology,
            partition,
            shards: Vec::new(),
            step: 0,
            seed,
            block: auto_block(n),
            read_mode: ReadMode::default_for(kind),
            block_snap: None,
            last_threads: 1,
            double_count_boundary: false,
            split_off_by_one: false,
        };
        sim.scatter(states);
        sim
    }

    /// Overrides the shard count and block length (in time-steps). The
    /// partition layout stays the topology's preferred kind; the
    /// trajectory is a function of both parameters (and the seed and
    /// read mode), so comparisons must fix them.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds the population, or if `block`
    /// is 0 or above `u32::MAX` (merge keys pack the granted index into
    /// 32 bits).
    pub fn with_layout(mut self, shards: usize, block: u64) -> Self {
        assert!(block > 0, "block length must be positive");
        assert!(
            block <= u32::MAX as u64,
            "block length {block} overflows merge keys"
        );
        assert_eq!(self.step, 0, "layout must be chosen before stepping");
        let states = self.states_packed();
        self.partition = Partition::new(
            self.partition.len(),
            shards,
            self.topology.preferred_partition(),
        );
        self.block = block;
        self.scatter(states);
        self
    }

    /// Overrides the cross-shard [`ReadMode`] (the constructor picks the
    /// partition layout's default). Trajectory-relevant.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already stepped.
    pub fn with_read_mode(mut self, mode: ReadMode) -> Self {
        assert_eq!(self.step, 0, "read mode must be chosen before stepping");
        self.read_mode = mode;
        self
    }

    /// Distributes packed global states into per-shard local arrays.
    fn scatter(&mut self, states: Vec<u32>) {
        let partition = &self.partition;
        let mut shards: Vec<Shard<W>> = (0..partition.shards())
            .map(|s| Shard {
                states: Vec::with_capacity(partition.size(s)),
                queue: Vec::new(),
            })
            .collect();
        for (u, p) in states.into_iter().enumerate() {
            shards[partition.shard_of(u)].states.push(W::narrow(p));
        }
        self.shards = shards;
        self.block_snap = None;
    }

    /// Test-and-verification hook: when enabled, every boundary
    /// interaction is applied **twice** in the reconciliation merge — the
    /// canonical double-count bug of parallel simulators. Only observable
    /// in [`Defer`](ReadMode::Defer) mode (the merge is the code it
    /// corrupts). The statistical equivalence harness must reject a
    /// simulator with this flag set (`tests/sharded_equivalence.rs`
    /// demonstrates rejection at `p < 10⁻⁶`), which is the evidence that
    /// the harness would catch a real reconciliation bug.
    #[doc(hidden)]
    pub fn inject_boundary_double_count(&mut self, enabled: bool) {
        self.double_count_boundary = enabled;
    }

    /// Test-and-verification hook: when enabled, every block's count
    /// split moves one granted step from the highest-indexed non-empty
    /// shard to shard 0 — the canonical off-by-one of a work-splitting
    /// scheduler (totals still sum to the block, so step accounting
    /// cannot catch it). The statistical equivalence harness must reject
    /// a simulator with this flag set at `p < 10⁻⁶`
    /// (`tests/sharded_equivalence.rs`).
    #[doc(hidden)]
    pub fn inject_split_off_by_one(&mut self, enabled: bool) {
        self.split_off_by_one = enabled;
    }

    /// Runs `steps` time-steps, taking worker threads from the shared
    /// [`pool`] budget (single-threaded inline when none are free — same
    /// trajectory either way).
    pub fn run(&mut self, steps: u64) {
        let want = self.partition.shards().min(pool::parallelism()) - 1;
        let lease = pool::lease(want);
        let threads = lease.workers() + 1;
        self.run_with_threads(steps, threads);
    }

    /// [`run`](Self::run) with an explicit thread count, bypassing the
    /// shared pool budget — for benchmarks and for tests of the
    /// thread-count-independence contract. Capped at the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_with_threads(&mut self, steps: u64, threads: usize) {
        assert!(threads >= 1, "need at least the calling thread");
        let threads = threads.min(self.partition.shards());
        self.last_threads = threads;
        let deadline = self.step + steps;
        if threads == 1 {
            self.run_inline(deadline);
        } else {
            self.run_threaded(deadline, threads);
        }
    }

    /// The bounds of the segment starting at `step`: the enclosing
    /// block's `(index, start)` and the segment end (block end or
    /// deadline, whichever is first).
    fn segment_bounds(&self, deadline: u64) -> (u64, u64, u64) {
        let block_index = self.step / self.block;
        let block_start = block_index * self.block;
        let seg_end = deadline.min(block_start + self.block);
        (block_index, block_start, seg_end)
    }

    /// Fresh-block boundary work shared by the inline and threaded
    /// drivers: tallies the block, and in `Snapshot` mode captures the
    /// block-start state copy remote reads will serve from.
    fn begin_block(&mut self) {
        pp_obs::obs_count!("sharded.split_blocks", 1);
        if self.read_mode == ReadMode::Snapshot && self.partition.shards() > 1 {
            pp_obs::obs_count!("sharded.snapshot_blocks", 1);
            self.block_snap = Some(Arc::new(gather(&self.partition, &self.shards)));
        }
    }

    fn run_inline(&mut self, deadline: u64) {
        while self.step < deadline {
            let (block_index, block_start, seg_end) = self.segment_bounds(deadline);
            let counts = split_counts(
                self.seed,
                block_index,
                &self.partition,
                self.block,
                self.split_off_by_one,
            );
            if self.step == block_start {
                self.begin_block();
            }
            let snap = self.block_snap.clone();
            let ctx = SegmentCtx {
                partition: &self.partition,
                seed: self.seed,
                block_index,
                block_start,
                block: self.block,
                from: self.step,
                to: seg_end,
                counts: &counts,
                snap: snap.as_ref().map(|a| a.as_slice()),
            };
            for (s, shard) in self.shards.iter_mut().enumerate() {
                process_segment(
                    &self.protocol,
                    &self.topology,
                    s,
                    shard,
                    self.read_mode,
                    &ctx,
                );
            }
            self.step = seg_end;
            if self.step == block_start + self.block {
                match self.read_mode {
                    ReadMode::Defer => reconcile(
                        &self.protocol,
                        &self.partition,
                        &mut self.shards,
                        self.double_count_boundary,
                    ),
                    ReadMode::Snapshot => self.block_snap = None,
                }
            }
        }
    }

    fn run_threaded(&mut self, deadline: u64, threads: usize) {
        // Split borrows so worker closures can hold the protocol,
        // topology, and partition immutably while the caller moves shard
        // state in and out of the channels.
        let ShardedSimulator {
            protocol,
            topology,
            partition,
            shards,
            step,
            seed,
            block,
            read_mode,
            block_snap,
            double_count_boundary,
            split_off_by_one,
            ..
        } = self;
        let (protocol, topology, partition) = (&*protocol, &*topology, &*partition);
        let (seed, block, read_mode) = (*seed, *block, *read_mode);
        let split_off_by_one = *split_off_by_one;
        let nshards = partition.shards();
        std::thread::scope(|scope| {
            let (done_tx, done_rx): (Sender<ShardReturn<W>>, Receiver<ShardReturn<W>>) = channel();
            let mut job_txs: Vec<Sender<Job<W>>> = Vec::with_capacity(threads - 1);
            for _ in 1..threads {
                let (job_tx, job_rx): (Sender<Job<W>>, Receiver<Job<W>>) = channel();
                job_txs.push(job_tx);
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let Job {
                            block_index,
                            block_start,
                            from,
                            to,
                            counts,
                            snap,
                            batch,
                        } = job;
                        let ctx = SegmentCtx {
                            partition,
                            seed,
                            block_index,
                            block_start,
                            block,
                            from,
                            to,
                            counts: &counts,
                            snap: snap.as_ref().map(|a| a.as_slice()),
                        };
                        for (s, mut shard) in batch {
                            process_segment(protocol, topology, s, &mut shard, read_mode, &ctx);
                            done_tx
                                .send((s, shard))
                                .expect("sharded caller hung up mid-run");
                        }
                    }
                });
            }
            // Workers hold the only remaining senders: if one panics and
            // drops its clone while the caller waits in `done_rx.recv()`,
            // the channel must close so the caller fails fast instead of
            // deadlocking on a result that will never arrive.
            drop(done_tx);
            while *step < deadline {
                let block_index = *step / block;
                let block_start = block_index * block;
                let seg_end = deadline.min(block_start + block);
                let counts = Arc::new(split_counts(
                    seed,
                    block_index,
                    partition,
                    block,
                    split_off_by_one,
                ));
                if *step == block_start {
                    pp_obs::obs_count!("sharded.split_blocks", 1);
                    if read_mode == ReadMode::Snapshot {
                        pp_obs::obs_count!("sharded.snapshot_blocks", 1);
                        *block_snap = Some(Arc::new(gather(partition, shards)));
                    }
                }
                let snap = block_snap.clone();
                // Shards are dealt round-robin over threads; thread 0 is
                // the caller. Hand remote batches out first so workers
                // start while the caller does its own share.
                let mut sent = 0usize;
                for (k, job_tx) in job_txs.iter().enumerate() {
                    let batch: Vec<(usize, Shard<W>)> = ((k + 1)..nshards)
                        .step_by(threads)
                        .map(|s| (s, std::mem::take(&mut shards[s])))
                        .collect();
                    sent += batch.len();
                    job_tx
                        .send(Job {
                            block_index,
                            block_start,
                            from: *step,
                            to: seg_end,
                            counts: counts.clone(),
                            snap: snap.clone(),
                            batch,
                        })
                        .expect("sharded worker died");
                }
                let ctx = SegmentCtx {
                    partition,
                    seed,
                    block_index,
                    block_start,
                    block,
                    from: *step,
                    to: seg_end,
                    counts: &counts,
                    snap: snap.as_ref().map(|a| a.as_slice()),
                };
                for s in (0..nshards).step_by(threads) {
                    process_segment(protocol, topology, s, &mut shards[s], read_mode, &ctx);
                }
                for _ in 0..sent {
                    let (s, shard) = done_rx.recv().expect("sharded worker died");
                    shards[s] = shard;
                }
                *step = seg_end;
                if *step == block_start + block {
                    match read_mode {
                        ReadMode::Defer => {
                            reconcile(protocol, partition, shards, *double_count_boundary)
                        }
                        ReadMode::Snapshot => *block_snap = None,
                    }
                }
            }
            drop(job_txs); // workers drain and exit; scope joins them
        });
    }

    /// Runs until `pred(packed_states, step)` holds, checking every
    /// `check_every` steps (and once before the first step), for at most
    /// `max_steps` steps. Returns the step count at which the predicate
    /// first held, or `None` on timeout.
    ///
    /// The observed states are gathered in global agent order; boundary
    /// interactions of a `Defer`-mode block still in flight are pending
    /// until the block completes (module docs).
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        mut pred: impl FnMut(&[u32], u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step + max_steps;
        if pred(&self.states_packed(), self.step) {
            return Some(self.step);
        }
        while self.step < deadline {
            let burst = check_every.min(deadline - self.step);
            self.run(burst);
            if pred(&self.states_packed(), self.step) {
                return Some(self.step);
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, packed_states)`
    /// before the first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_observed(&mut self, steps: u64, every: u64, mut observer: impl FnMut(u64, &[u32])) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step, &self.states_packed());
        let deadline = self.step + steps;
        while self.step < deadline {
            let burst = every.min(deadline - self.step);
            self.run(burst);
            observer(self.step, &self.states_packed());
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.partition.len()
    }

    /// Returns `true` if there are no agents (impossible by construction,
    /// provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.partition.len() == 0
    }

    /// Number of time-steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The node partition driving shard decomposition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Block length in time-steps (the count-split and boundary
    /// resolution both work in blocks).
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The cross-shard read mode in force (trajectory-relevant).
    pub fn read_mode(&self) -> ReadMode {
        self.read_mode
    }

    /// Threads used by the most recent `run` call (1 until the first run,
    /// or whenever the shared pool had no free workers).
    pub fn last_threads(&self) -> usize {
        self.last_threads
    }

    /// The population widened to packed `u32` form, in global agent
    /// order.
    pub fn states_packed(&self) -> Vec<u32> {
        gather(&self.partition, &self.shards)
    }

    /// Decodes the full population into generic states.
    pub fn states_unpacked(&self) -> Vec<P::State> {
        self.states_packed()
            .into_iter()
            .map(|p| self.protocol.unpack(p))
            .collect()
    }

    /// Decodes the population into a generic-engine [`Population`], for
    /// checkers written against the reference types.
    pub fn population(&self) -> Population<P::State> {
        Population::new(self.states_unpacked())
    }

    /// Decoded state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn state(&self, u: usize) -> P::State {
        let w = self.shards[self.partition.shard_of(u)].states[self.partition.local_index(u)];
        self.protocol.unpack(w.widen())
    }

    /// Overwrites the state of agent `u` — the hook adversarial processes
    /// use to apply structural changes between time-steps. Mid-block in
    /// `Snapshot` mode the live block snapshot is patched too, so remote
    /// readers of the rest of the block see the adversary's write.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or the packed state overflows `W`.
    pub fn set_state(&mut self, u: usize, state: &P::State) {
        let w = W::narrow(self.protocol.pack(state));
        self.shards[self.partition.shard_of(u)].states[self.partition.local_index(u)] = w;
        if let Some(snap) = self.block_snap.as_mut() {
            Arc::make_mut(snap)[u] = w.widen();
        }
    }

    /// Replaces the whole packed population, resizing the topology (via
    /// [`Topology::resized`]) and rebuilding the shard partition when the
    /// length changes — the bulk-rewrite path of the
    /// [`Engine`](crate::Engine) structural-mutation surface. `O(n)`:
    /// structural changes gather, rewrite, and re-scatter the shards.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 states are given, a state overflows `W`, or
    /// the length changed and the topology family has no canonical resize.
    pub fn replace_packed_states(&mut self, states: Vec<u32>) {
        let n = states.len();
        assert!(n >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(n).is_ok(),
            "sharded queues store node ids as u32; {n} agents is too many"
        );
        if n != self.partition.len() {
            self.topology = crate::engine::resize_topology(&self.topology, n);
            self.partition = Partition::new(n, auto_shards(n), self.topology.preferred_partition());
            self.block = auto_block(n);
        }
        // Mid-block in `Snapshot` mode the bulk rewrite replaces the live
        // block snapshot wholesale (same visibility rule as `set_state`).
        let snap = (self.block_snap.is_some() && n == self.partition.len())
            .then(|| Arc::new(states.clone()));
        self.scatter(states);
        self.block_snap = snap;
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Runs forward to the next block boundary (a no-op when already on
    /// one) and returns the boundary clock. Between boundaries shards
    /// hold deferred cross-shard interactions (or a live block snapshot)
    /// that only reaching the boundary resolves; the boundary is
    /// therefore the tier's quiescent point — the only clock at which
    /// `(states, step, seed, layout, read mode)` is the *complete*
    /// simulation state (the split counts re-derive from the block index
    /// alone). The snapshot surface drains through this before capturing.
    pub(crate) fn drain_to_block_boundary(&mut self) -> u64 {
        let into_block = self.step % self.block;
        if into_block != 0 {
            self.run(self.block - into_block);
        }
        debug_assert!(self.shards.iter().all(|s| s.queue.is_empty()));
        debug_assert!(self.block_snap.is_none());
        self.step
    }

    /// Rebuilds the full resume state from a snapshot: partition layout
    /// (shard count, block length, and read mode are part of the
    /// trajectory), packed states, clock, and seed. The caller has
    /// validated that `step` is a block multiple and every state word
    /// fits `W`. Nothing of the count-split stream needs restoring: at a
    /// boundary the next block's counts derive from `(seed, block
    /// index)` alone.
    pub(crate) fn restore_raw(
        &mut self,
        states: Vec<u32>,
        step: u64,
        seed: u64,
        shards: usize,
        block: u64,
        read_mode: ReadMode,
    ) {
        self.partition = Partition::new(states.len(), shards, self.topology.preferred_partition());
        self.block = block;
        self.read_mode = read_mode;
        self.scatter(states);
        self.step = step;
        self.seed = seed;
    }
}

/// Draws the per-shard granted counts for one block: a conditional-
/// binomial chain over the shard sizes whose joint law is exactly the
/// multinomial `Multinomial(block; size_0/n, …)`. Consumes only the
/// dedicated [`SPLIT_STREAM`] — a single-shard partition consumes no
/// randomness at all (its count is the whole block with certainty).
fn split_counts(
    seed: u64,
    block_index: u64,
    partition: &Partition,
    block: u64,
    inject_off_by_one: bool,
) -> Vec<u64> {
    let nshards = partition.shards();
    let mut counts = vec![0u64; nshards];
    let mut rem_steps = block;
    let mut rem_nodes = partition.len() as u64;
    if nshards > 1 {
        let mut rng = CounterRng::for_shard(seed, SPLIT_STREAM, block_index);
        for (s, slot) in counts.iter_mut().enumerate().take(nshards - 1) {
            let size = partition.size(s) as u64;
            let c = rand::distr::binomial(&mut rng, rem_steps, size as f64 / rem_nodes as f64);
            *slot = c;
            rem_steps -= c;
            rem_nodes -= size;
        }
    }
    counts[nshards - 1] = rem_steps;
    if inject_off_by_one && nshards > 1 {
        // Injected bug (see `inject_split_off_by_one`): one step migrates
        // to shard 0; the sum — and therefore all step accounting — is
        // unchanged.
        if let Some(donor) = (1..nshards).rev().find(|&s| counts[s] > 0) {
            counts[donor] -= 1;
            counts[0] += 1;
        } else {
            // All mass already sits in shard 0 (so `counts[0] == block`).
            counts[0] -= 1;
            counts[1] += 1;
        }
    }
    counts
}

/// Widens every shard's states back into one global packed array.
fn gather<W: TurboWord>(partition: &Partition, shards: &[Shard<W>]) -> Vec<u32> {
    let mut out = vec![0u32; partition.len()];
    for (s, shard) in shards.iter().enumerate() {
        for (j, w) in shard.states.iter().enumerate() {
            out[partition.global_index(s, j)] = w.widen();
        }
    }
    out
}

/// The per-segment constants shared by every shard of one block segment.
struct SegmentCtx<'a> {
    partition: &'a Partition,
    seed: u64,
    block_index: u64,
    block_start: u64,
    /// Full block length `B` (the segment may cover only part of it).
    block: u64,
    from: u64,
    to: u64,
    /// The block's granted counts, one per shard.
    counts: &'a [u64],
    /// Block-start global state (`Snapshot` mode, multi-shard only).
    snap: Option<&'a [u32]>,
}

/// Advances shard `s` over its granted share of the block sub-range
/// `[from, to)`: draws each granted step's agent from the shard's own
/// members and resolves cross-shard partner reads per the read mode.
fn process_segment<P: PackedProtocol, T: Topology, W: TurboWord>(
    protocol: &P,
    topology: &T,
    s: usize,
    shard: &mut Shard<W>,
    read_mode: ReadMode,
    ctx: &SegmentCtx<'_>,
) {
    // Monomorphize the hot loop over the partition layout and read mode
    // so the per-partner ownership test and local-index map compile to
    // two compares (contiguous), one remainder (strided), or nothing at
    // all (single shard — the one-core fallback, which must stay within a
    // few percent of the turbo engine).
    if ctx.partition.shards() == 1 {
        exec_segment::<P, T, W, false, true, false>(protocol, topology, s, shard, ctx)
    } else {
        match (ctx.partition.kind(), read_mode) {
            (PartitionKind::Contiguous, ReadMode::Defer) => {
                exec_segment::<P, T, W, false, false, false>(protocol, topology, s, shard, ctx)
            }
            (PartitionKind::Contiguous, ReadMode::Snapshot) => {
                exec_segment::<P, T, W, false, false, true>(protocol, topology, s, shard, ctx)
            }
            (PartitionKind::Strided, ReadMode::Defer) => {
                exec_segment::<P, T, W, true, false, false>(protocol, topology, s, shard, ctx)
            }
            (PartitionKind::Strided, ReadMode::Snapshot) => {
                exec_segment::<P, T, W, true, false, true>(protocol, topology, s, shard, ctx)
            }
        }
    }
}

/// The granted-step hot loop; `STRIDED`/`SINGLE`/`SNAPSHOT` select the
/// ownership arithmetic and read policy at compile time (`SINGLE`:
/// everything is owned and local — the checks vanish). `inline(never)`
/// for the same reason as the turbo batch loop: called with whole block
/// segments (call overhead is nil) and keeping it a standalone
/// entry-aligned symbol makes its code layout independent of the caller.
#[inline(never)]
fn exec_segment<
    P: PackedProtocol,
    T: Topology,
    W: TurboWord,
    const STRIDED: bool,
    const SINGLE: bool,
    const SNAPSHOT: bool,
>(
    protocol: &P,
    topology: &T,
    s: usize,
    shard: &mut Shard<W>,
    ctx: &SegmentCtx<'_>,
) {
    let partition = ctx.partition;
    let m = P::OBSERVATIONS;
    let nshards = partition.shards();
    let size = partition.size(s) as u64;
    let (lo, hi) = if STRIDED || SINGLE {
        (0, 0)
    } else {
        let r = partition.range(s);
        (r.start, r.end)
    };
    let owns = |u: usize| {
        if SINGLE {
            true
        } else if STRIDED {
            u % nshards == s
        } else {
            u >= lo && u < hi
        }
    };
    let local_of = |u: usize| {
        if SINGLE {
            u
        } else if STRIDED {
            u / nshards
        } else {
            u - lo
        }
    };
    let global_of = |j: usize| {
        if SINGLE {
            j
        } else if STRIDED {
            j * nshards + s
        } else {
            lo + j
        }
    };

    // The granted sub-range: granted steps are spread evenly across the
    // block, so the sub-range [q0, q1) of block positions maps to the
    // closed-form index window below (u128: c·q can overflow u64). A
    // mid-block resume realigns the stream in O(1) — each granted step
    // consumes exactly 1 agent draw + m partner draws.
    let c = ctx.counts[s];
    let q0 = ctx.from - ctx.block_start;
    let q1 = ctx.to - ctx.block_start;
    let j0 = ((c as u128 * q0 as u128) / ctx.block as u128) as u64;
    let j1 = ((c as u128 * q1 as u128) / ctx.block as u128) as u64;
    let mut stream = CounterRng::for_shard(ctx.seed, s as u64, ctx.block_index);
    if j0 > 0 {
        stream.advance_by(j0 * (m as u64 + 1));
    }

    // Per-segment tallies, flushed to the recorder once at segment end so
    // the hot loop never touches shared state. With the `obs` feature off
    // `record` is a constant `false` and the tallies are dead code.
    let record = pp_obs::enabled();
    let (mut tally_applied, mut tally_deferred, mut tally_snap_reads) = (0u64, 0u64, 0u64);

    let snap: &[u32] = if SNAPSHOT {
        ctx.snap
            .expect("snapshot read mode requires a block-start snapshot")
    } else {
        &[]
    };
    let states = shard.states.as_mut_slice();
    for j in j0..j1 {
        // Agent draw: multiply-shift over the shard's own members (bias
        // size/2^64) — the count-split already decided *how many* steps
        // land here, this decides *which* member acts.
        let w = rand::Rng::next_u64(&mut stream);
        let lu = ((w as u128 * size as u128) >> 64) as usize;
        let u = global_of(lu);
        let mut partners = [0u32; MAX_PACKED_OBSERVATIONS];
        let mut observed = [0u32; MAX_PACKED_OBSERVATIONS];
        let mut last = 0u64;
        let mut local = true;
        for slot in 0..m {
            last = rand::Rng::next_u64(&mut stream);
            let v = topology.sample_partner_turbo(u, last);
            if SINGLE {
                observed[slot] = states[v].widen();
            } else if SNAPSHOT {
                observed[slot] = if owns(v) {
                    states[local_of(v)].widen()
                } else {
                    if record {
                        tally_snap_reads += 1;
                    }
                    snap[v]
                };
            } else {
                partners[slot] = v as u32;
                if owns(v) {
                    observed[slot] = states[local_of(v)].widen();
                } else {
                    local = false;
                }
            }
        }
        if SINGLE || SNAPSHOT || local {
            let me = states[lu].widen();
            // Transition entropy rides the last partner word, exactly as
            // in the turbo engine; the fallback stream is parked one hash
            // away.
            let mut rng = CounterRng::from_state(last ^ GOLDEN);
            let next = protocol.transition_turbo(me, &observed[..m], last, &mut rng);
            states[lu] = W::narrow(next);
            if record {
                tally_applied += 1;
            }
        } else {
            shard.queue.push(Deferred {
                key: (j << 32) | s as u64,
                agent: u as u32,
                partners,
                entropy: last,
            });
            if record {
                tally_deferred += 1;
            }
        }
    }
    if record {
        pp_obs::counter_add("sharded.granted", j1 - j0);
        pp_obs::counter_add("sharded.local_applied", tally_applied);
        if SNAPSHOT {
            pp_obs::counter_add("sharded.snapshot_reads", tally_snap_reads);
        }
        if !(SINGLE || SNAPSHOT) {
            pp_obs::counter_add("sharded.deferred", tally_deferred);
        }
        // Per-shard load: the granted-step distribution across segments
        // is the imbalance a bad split would show up in.
        pp_obs::record_value("sharded.segment_granted_steps", j1 - j0);
    }
}

/// Applies every queued boundary interaction of the just-finished block
/// (`Defer` mode) in merge-key order — the round-robin interleave of the
/// shard sub-sequences. Keys are unique across shards (one interaction
/// per shard per granted index), so the merged order — and therefore the
/// trajectory — is deterministic regardless of which thread ran which
/// shard.
fn reconcile<P: PackedProtocol, W: TurboWord>(
    protocol: &P,
    partition: &Partition,
    shards: &mut [Shard<W>],
    double_count: bool,
) {
    let m = P::OBSERVATIONS;
    let total: usize = shards.iter().map(|sh| sh.queue.len()).sum();
    pp_obs::obs_count!("sharded.reconcile_blocks", 1);
    pp_obs::obs_value!("sharded.merge_batch", total);
    if total == 0 {
        return;
    }
    pp_obs::obs_count!("sharded.merged", total);
    let mut merged: Vec<Deferred> = Vec::with_capacity(total);
    for sh in shards.iter_mut() {
        merged.append(&mut sh.queue);
    }
    merged.sort_unstable_by_key(|d| d.key);
    let read = |shards: &[Shard<W>], u: usize| -> u32 {
        shards[partition.shard_of(u)].states[partition.local_index(u)].widen()
    };
    for d in &merged {
        let mut observed = [0u32; MAX_PACKED_OBSERVATIONS];
        for (slot, &v) in observed.iter_mut().zip(&d.partners).take(m) {
            *slot = read(shards, v as usize);
        }
        let me = read(shards, d.agent as usize);
        let mut rng = CounterRng::from_state(d.entropy ^ GOLDEN);
        let mut next = protocol.transition_turbo(me, &observed[..m], d.entropy, &mut rng);
        if double_count {
            // Injected bug (see `inject_boundary_double_count`): the
            // interaction fires a second time.
            next = protocol.transition_turbo(next, &observed[..m], d.entropy, &mut rng);
        }
        let u = d.agent as usize;
        shards[partition.shard_of(u)].states[partition.local_index(u)] = W::narrow(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{Complete, Cycle, Torus2d};
    use rand::Rng;

    /// Voter dynamics over raw u32 labels.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Two-sample protocol exercising the m = 2 arm.
    #[derive(Debug, Clone)]
    struct MaxOfTwo;

    impl PackedProtocol for MaxOfTwo {
        type State = u32;

        const OBSERVATIONS: usize = 2;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            me.max(observed[0]).max(observed[1])
        }

        fn name(&self) -> String {
            "max2".into()
        }
    }

    fn sim(seed: u64, shards: usize, block: u64) -> ShardedSimulator<Copy1, Cycle, u32> {
        let init: Vec<u32> = (0..96).collect();
        ShardedSimulator::new(Copy1, Cycle::new(96), &init, seed).with_layout(shards, block)
    }

    fn strided_sim(seed: u64, shards: usize, block: u64) -> ShardedSimulator<Copy1, Complete, u32> {
        let init: Vec<u32> = (0..96).collect();
        ShardedSimulator::new(Copy1, Complete::new(96), &init, seed).with_layout(shards, block)
    }

    #[test]
    fn split_counts_sum_to_block_and_cover_every_shard() {
        let s = sim(17, 4, 64);
        for block_index in 0..200 {
            let counts = split_counts(17, block_index, s.partition(), 64, false);
            assert_eq!(counts.len(), 4);
            assert_eq!(counts.iter().sum::<u64>(), 64, "block {block_index}");
        }
    }

    #[test]
    fn split_counts_marginal_matches_the_binomial_mean() {
        // Shard 0 of a 4-way split of 96 nodes holds 24, so its count is
        // Binomial(B, 1/4): check the empirical mean over many blocks
        // against a 6-sigma band (deterministic seeds — never flaky).
        let s = sim(23, 4, 256);
        let blocks = 4_000u64;
        let total: u64 = (0..blocks)
            .map(|b| split_counts(23, b, s.partition(), 256, false)[0])
            .sum();
        let mean = total as f64 / blocks as f64;
        let expect = 256.0 * 0.25;
        let sigma = (256.0 * 0.25 * 0.75 / blocks as f64).sqrt();
        assert!(
            (mean - expect).abs() < 6.0 * sigma,
            "shard-0 marginal mean {mean} vs binomial mean {expect}"
        );
    }

    #[test]
    fn split_off_by_one_injection_preserves_sums_but_moves_mass() {
        let s = sim(3, 4, 64);
        let mut moved = 0u64;
        for b in 0..100 {
            let clean = split_counts(3, b, s.partition(), 64, false);
            let bugged = split_counts(3, b, s.partition(), 64, true);
            assert_eq!(bugged.iter().sum::<u64>(), 64);
            assert_eq!(bugged[0], clean[0] + 1);
            moved += 1;
        }
        assert_eq!(moved, 100);
    }

    #[test]
    fn read_mode_defaults_follow_the_partition_layout() {
        assert_eq!(sim(0, 4, 32).read_mode(), ReadMode::Defer);
        assert_eq!(strided_sim(0, 4, 32).read_mode(), ReadMode::Snapshot);
        assert_eq!(
            strided_sim(0, 4, 32)
                .with_read_mode(ReadMode::Defer)
                .read_mode(),
            ReadMode::Defer
        );
    }

    #[test]
    fn deterministic_given_seed_and_split_runs_agree() {
        let mut a = sim(9, 4, 32);
        let mut b = sim(9, 4, 32);
        a.run(10_000);
        // Different burst splits, including mid-block pauses: identical
        // trajectory (pending queues and stream realignment carry over).
        b.run(37);
        b.run(63);
        b.run(4_900);
        b.run(5_000);
        assert_eq!(a.states_packed(), b.states_packed());
        assert_eq!(b.step_count(), 10_000);
        let mut c = sim(10, 4, 32);
        c.run(10_000);
        assert_ne!(a.states_packed(), c.states_packed());
    }

    #[test]
    fn snapshot_mode_split_runs_agree_mid_block() {
        // The same burst-split invariance on the snapshot-read path: the
        // block-start snapshot must survive mid-block pauses.
        let mut a = strided_sim(9, 4, 32);
        let mut b = strided_sim(9, 4, 32);
        assert_eq!(a.read_mode(), ReadMode::Snapshot);
        a.run(10_000);
        b.run(37);
        b.run(63);
        b.run(4_900);
        b.run(5_000);
        assert_eq!(a.states_packed(), b.states_packed());
    }

    #[test]
    fn trajectory_is_thread_count_independent() {
        let mut reference = sim(3, 8, 32);
        reference.run_with_threads(8_000, 1);
        for threads in [2usize, 3, 4, 8] {
            let mut parallel = sim(3, 8, 32);
            parallel.run_with_threads(8_000, threads);
            assert_eq!(
                parallel.states_packed(),
                reference.states_packed(),
                "{threads} threads diverged from sequential"
            );
            assert_eq!(parallel.last_threads(), threads.min(8));
        }
    }

    #[test]
    fn trajectory_is_thread_count_independent_in_snapshot_mode() {
        let mut reference = strided_sim(3, 8, 32);
        reference.run_with_threads(8_000, 1);
        for threads in [2usize, 4, 8] {
            let mut parallel = strided_sim(3, 8, 32);
            parallel.run_with_threads(8_000, threads);
            assert_eq!(
                parallel.states_packed(),
                reference.states_packed(),
                "{threads} threads diverged from sequential (snapshot mode)"
            );
        }
    }

    #[test]
    fn read_mode_is_trajectory_relevant() {
        let mut defer = strided_sim(7, 4, 32).with_read_mode(ReadMode::Defer);
        let mut snap = strided_sim(7, 4, 32).with_read_mode(ReadMode::Snapshot);
        defer.run(5_000);
        snap.run(5_000);
        // Equally valid trajectories of the same process, but different
        // resolutions of cross-shard reads.
        assert_ne!(defer.states_packed(), snap.states_packed());
    }

    #[test]
    fn layout_is_trajectory_relevant_but_both_converge() {
        // Different shard counts give different (equally valid)
        // trajectories of the same process.
        let mut a = sim(5, 2, 32);
        let mut b = sim(5, 4, 32);
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.step_count(), b.step_count());
    }

    #[test]
    fn u8_storage_matches_u32_storage_exactly() {
        let init: Vec<u32> = (0..64).map(|u| u % 200).collect();
        let mut wide = ShardedSimulator::<_, _, u32>::new(Copy1, Torus2d::new(8, 8), &init, 4)
            .with_layout(4, 16);
        let mut narrow = ShardedSimulator::<_, _, u8>::new(Copy1, Torus2d::new(8, 8), &init, 4)
            .with_layout(4, 16);
        for _ in 0..5 {
            wide.run(3_000);
            narrow.run(3_000);
            assert_eq!(wide.states_packed(), narrow.states_packed());
        }
    }

    #[test]
    fn voter_reaches_consensus_on_strided_complete() {
        // The complete graph partitions strided and defaults to snapshot
        // reads; consensus must still arrive through block-stale reads.
        let init: Vec<u32> = (0..32).collect();
        let mut sim = ShardedSimulator::<_, _, u32>::new(Copy1, Complete::new(32), &init, 5)
            .with_layout(4, 16);
        assert_eq!(
            sim.partition().kind(),
            pp_graph::PartitionKind::Strided,
            "complete graph should prefer striding"
        );
        assert_eq!(sim.read_mode(), ReadMode::Snapshot);
        let hit = sim.run_until(2_000_000, 64, |states, _| {
            states.iter().all(|&s| s == states[0])
        });
        assert!(hit.is_some(), "voter consensus not reached");
    }

    #[test]
    fn voter_reaches_consensus_on_strided_complete_with_deferred_reads() {
        // The merge path must stay correct when forced onto a high-cut
        // family.
        let init: Vec<u32> = (0..32).collect();
        let mut sim = ShardedSimulator::<_, _, u32>::new(Copy1, Complete::new(32), &init, 5)
            .with_layout(4, 16)
            .with_read_mode(ReadMode::Defer);
        let hit = sim.run_until(2_000_000, 64, |states, _| {
            states.iter().all(|&s| s == states[0])
        });
        assert!(hit.is_some(), "voter consensus not reached via the merge");
    }

    #[test]
    fn max_of_two_floods_the_torus() {
        let init: Vec<u32> = (0..48).collect();
        let mut sim = ShardedSimulator::<_, _, u32>::new(MaxOfTwo, Torus2d::new(6, 8), &init, 2)
            .with_layout(3, 16);
        let hit = sim.run_until(1_000_000, 48, |states, _| states.iter().all(|&s| s == 47));
        assert!(hit.is_some(), "maximum did not flood the torus");
    }

    #[test]
    fn exhausted_pool_never_oversubscribes() {
        // With the worker budget leased away, `run` must not push the
        // combined thread usage past the machine budget — the nested-use
        // guarantee (e.g. a sharded run inside `replicate`). Tokens are
        // conserved, so the bound holds no matter how sibling tests
        // interleave on the shared global pool; on a quiet pool the hog
        // takes everything and the run degrades to 1 thread.
        let hog = crate::pool::lease(usize::MAX);
        let mut s = sim(1, 4, 32);
        s.run(2_000);
        assert!(
            hog.workers() + s.last_threads() <= crate::pool::parallelism(),
            "hog {} + run {} threads exceed budget {}",
            hog.workers(),
            s.last_threads(),
            crate::pool::parallelism()
        );
        drop(hog);
        // Identical trajectory regardless of the degraded threading.
        let mut reference = sim(1, 4, 32);
        reference.run_with_threads(2_000, 1);
        assert_eq!(s.states_packed(), reference.states_packed());
    }

    /// Voter that panics when a marked agent is scheduled — drives the
    /// worker-panic path.
    #[derive(Debug, Clone)]
    struct PanicOn(u32);

    impl PackedProtocol for PanicOn {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            assert!(me != self.0, "marked agent scheduled");
            observed[0]
        }

        fn name(&self) -> String {
            "panic-on".into()
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // Agent 30 lives in shard 1 (96 nodes / 4 contiguous shards),
        // which two-thread dealing assigns to the spawned worker; its
        // panic must surface to the caller (the closed done-channel fails
        // fast) rather than hanging the run.
        let init: Vec<u32> = (0..96).collect();
        let mut sim = ShardedSimulator::<_, _, u32>::new(PanicOn(30), Cycle::new(96), &init, 3)
            .with_layout(4, 32);
        sim.run_with_threads(100_000, 2);
    }

    #[test]
    fn sharded_inside_replicate_is_deterministic() {
        let runs = crate::replicate(0..4, |seed| {
            let mut s = sim(seed, 4, 32);
            s.run(3_000);
            (s.last_threads(), s.states_packed())
        });
        for (seed, (threads, states)) in runs.into_iter().enumerate() {
            assert!(threads <= crate::pool::parallelism());
            let mut reference = sim(seed as u64, 4, 32);
            reference.run_with_threads(3_000, 1);
            assert_eq!(states, reference.states_packed(), "seed {seed}");
        }
    }

    #[test]
    fn observer_and_accessors() {
        let init: Vec<u32> = vec![5, 6, 7, 8];
        let mut sim =
            ShardedSimulator::<_, _, u32>::new(Copy1, Cycle::new(4), &init, 1).with_layout(2, 8);
        assert_eq!(sim.len(), 4);
        assert!(!sim.is_empty());
        assert_eq!(sim.seed(), 1);
        assert_eq!(sim.block(), 8);
        assert_eq!(sim.read_mode(), ReadMode::Defer);
        assert_eq!(sim.partition().shards(), 2);
        assert_eq!(sim.state(2), 7);
        sim.set_state(2, &9);
        assert_eq!(sim.states_packed(), vec![5, 6, 9, 8]);
        assert_eq!(sim.states_unpacked(), vec![5, 6, 9, 8]);
        assert_eq!(sim.population().states(), &[5, 6, 9, 8]);
        assert_eq!(PackedProtocol::name(sim.protocol()), "copy");
        assert_eq!(sim.topology().len(), 4);
        let mut seen = Vec::new();
        sim.run_observed(10, 4, |t, _| seen.push(t));
        assert_eq!(seen, vec![0, 4, 8, 10]);
        assert_eq!(sim.step_count(), 10);
    }

    #[test]
    fn set_state_mid_block_is_visible_to_snapshot_reads() {
        // Pause a snapshot-mode run mid-block, overwrite an agent, and
        // finish: the trajectory must equal a run whose live snapshot
        // carried the patch — exercised indirectly by checking the split
        // runs still agree when both apply the same mid-block write.
        let mut a = strided_sim(13, 4, 32);
        let mut b = strided_sim(13, 4, 32);
        a.run(16);
        b.run(7);
        b.run(9);
        a.set_state(5, &1000);
        b.set_state(5, &1000);
        a.run(16 + 3_200);
        b.run(16 + 3_200);
        assert_eq!(a.states_packed(), b.states_packed());
    }

    #[test]
    fn default_layout_scales_with_machine() {
        let init: Vec<u32> = (0..8192).collect();
        let sim = ShardedSimulator::<_, _, u32>::new(Copy1, Cycle::new(8192), &init, 0);
        assert!(sim.partition().shards() >= 1);
        assert!(sim.partition().shards() <= crate::pool::parallelism().max(1));
        assert!(sim.block() >= 256);
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn rejects_size_mismatch() {
        ShardedSimulator::<_, _, u32>::new(Copy1, Cycle::new(4), &[1u32, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "block length must be positive")]
    fn rejects_zero_block() {
        let init: Vec<u32> = (0..8).collect();
        let _ =
            ShardedSimulator::<_, _, u32>::new(Copy1, Cycle::new(8), &init, 0).with_layout(2, 0);
    }

    #[test]
    #[should_panic(expected = "empty shards")]
    fn rejects_more_shards_than_agents() {
        let init: Vec<u32> = (0..4).collect();
        let _ =
            ShardedSimulator::<_, _, u32>::new(Copy1, Cycle::new(4), &init, 0).with_layout(5, 8);
    }

    #[test]
    #[should_panic(expected = "overflows u8")]
    fn u8_storage_rejects_wide_states() {
        ShardedSimulator::<_, _, u8>::new(Copy1, Cycle::new(3), &[1u32, 300, 2], 0);
    }
}
