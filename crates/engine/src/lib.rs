//! Population-protocol simulation engine.
//!
//! This crate is the substrate every protocol in the workspace runs on. It
//! implements the paper's interaction model exactly: at each discrete
//! **time-step** a uniformly random agent `u` is scheduled, observes the
//! state of one (or, for multi-sample baselines like 2-Choices, several)
//! uniformly random interaction partner(s), and updates its own state
//! according to the protocol's transition rule. Only the scheduled agent
//! changes state — a property several of the paper's arguments (notably
//! sustainability) rely on.
//!
//! * [`Protocol`] — the transition rule, implemented by `pp-core`
//!   (Diversification) and `pp-baselines` (Voter, 2-Choices, …).
//! * [`Population`] — the vector of agent states.
//! * [`Simulator`] — the sequential uniform random scheduler, seeded and
//!   fully deterministic given `(protocol, topology, initial states, seed)`.
//! * [`PackedProtocol`] + [`PackedSimulator`] — the monomorphized
//!   packed-state fast path: `u32` SoA states, zero `dyn` dispatch per
//!   interaction, trajectory-identical to [`Simulator`] under a shared
//!   seed.
//! * [`TurboSimulator`] — the counter-based relaxed-equivalence turbo
//!   engine: per-step `CounterRng` streams resolved in prefetchable
//!   batches, optional `u8` state storage ([`TurboWord`]); same process
//!   distribution as the exact engines, verified statistically by the
//!   `pp-stats` harness instead of draw-for-draw.
//! * [`VecSimulator`] — the lane-parallel ensemble engine: `L` replicas
//!   of one `(topology, protocol)` stepped in lockstep over lane-major
//!   SoA state, with a shared schedule walk and per-lane partner/aux
//!   streams; one lane is bit-exact vs [`TurboSimulator`] under a shared
//!   seed.
//! * [`replicate()`](replicate()) — parallel independent-seed replication for w.h.p.-style
//!   statements, scheduled by work-stealing.
//! * [`replicate_vec()`](replicate_vec()) — the ensemble front-end: packs a seed list
//!   into `L`-lane [`VecSimulator`] groups (scalar fallback for
//!   remainders) and stays byte-identical per seed.
//! * [`sweep_grid()`](sweep_grid()) — (job × seed) grids through one shared
//!   work-stealing pool.
//! * [`rounds`] — conversions between time-steps and "parallel rounds"
//!   (`1 round = n steps`).
//!
//! # Examples
//!
//! ```
//! use pp_engine::{Population, Protocol, Simulator};
//! use pp_graph::Complete;
//! use rand::Rng;
//!
//! /// A toy protocol: adopt whatever the observed agent holds.
//! #[derive(Debug)]
//! struct Copycat;
//!
//! impl Protocol for Copycat {
//!     type State = u8;
//!     fn transition(&self, _me: &u8, observed: &[&u8], _rng: &mut dyn Rng) -> u8 {
//!         *observed[0]
//!     }
//!     fn name(&self) -> String {
//!         "copycat".into()
//!     }
//! }
//!
//! let states = vec![0u8, 1, 1, 1];
//! let mut sim = Simulator::new(Copycat, Complete::new(4), states, 42);
//! sim.run(1_000);
//! // Copycat is the Voter model; by now it has almost surely hit consensus.
//! let c = sim.population().count_matching(|&s| s == 1);
//! assert!(c == 0 || c == 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod packed;
pub mod pool;
pub mod population;
pub mod protocol;
pub mod replicate;
pub mod rounds;
pub mod sharded;
pub mod simulator;
pub mod snapshot;
pub mod sweep;
pub mod turbo;
pub mod vec;

pub use engine::Engine;
pub use packed::{PackedProtocol, PackedSimulator, MAX_PACKED_OBSERVATIONS};
pub use population::Population;
pub use protocol::Protocol;
pub use replicate::{replicate, replicate_vec};
pub use sharded::{ReadMode, ShardedSimulator};
pub use simulator::Simulator;
pub use snapshot::{EngineSnapshot, SnapshotError};
pub use sweep::sweep_grid;
pub use turbo::{TurboSimulator, TurboWord};
pub use vec::VecSimulator;
