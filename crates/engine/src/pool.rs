//! The shared worker budget behind every parallel helper in this crate.
//!
//! [`replicate`](crate::replicate()) (seed ensembles), `sweep_grid` (job ×
//! seed grids, built on `replicate`) and
//! [`ShardedSimulator`](crate::ShardedSimulator) (graph-partitioned
//! single runs) all want "as many threads as the machine has". Before
//! this module each helper asked `available_parallelism` independently,
//! so *nested* use — a sharded run inside a `replicate` closure, or a
//! `replicate` inside a `sweep_grid` cell — multiplied the thread counts
//! and oversubscribed the box.
//!
//! The fix is one process-wide pool of **worker tokens**, sized to
//! `available_parallelism() − 1` (the caller's own thread is the `+ 1`;
//! override with `PP_POOL_THREADS` for experiments). Every parallel
//! helper [`lease`]s extra workers before spawning, spawns at most what
//! the lease granted, and returns the tokens when the lease drops. A
//! nested helper finds the tokens already taken and falls back to running
//! inline on its caller's thread — which is always correct, because every
//! parallel algorithm in this crate is deterministic and
//! thread-count-independent by construction.
//!
//! Threads themselves are scoped (`std::thread::scope`), not persistent:
//! the crate is `forbid(unsafe_code)`, and lending the non-`'static`
//! closures of `replicate`/`ShardedSimulator::run` to a persistent
//! thread is exactly the lifetime erasure that safe Rust rules out. What
//! is hoisted and shared instead is (a) this budget, and (b) the spawn
//! *frequency*: `ShardedSimulator` spawns once per `run()` call and keeps
//! its workers parked on channels across every block of the run, and
//! `replicate` spawns once per ensemble — never once per seed or per
//! block.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn budget() -> &'static AtomicUsize {
    static TOKENS: OnceLock<AtomicUsize> = OnceLock::new();
    TOKENS.get_or_init(|| AtomicUsize::new(parallelism().saturating_sub(1)))
}

/// The machine parallelism this pool budgets for: `PP_POOL_THREADS` if
/// set, else `std::thread::available_parallelism()`.
///
/// # Panics
///
/// Panics if `PP_POOL_THREADS` is set to anything other than a positive
/// integer — the same fail-fast convention as `PP_PRESET`/`PP_ENGINE`/
/// `PP_OBS`, instead of silently falling back to the machine default.
pub fn parallelism() -> usize {
    static PAR: OnceLock<usize> = OnceLock::new();
    *PAR.get_or_init(|| match std::env::var("PP_POOL_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(p) if p >= 1 => p,
            _ => panic!("PP_POOL_THREADS must be a positive integer thread count, got `{v}`"),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    })
}

/// A grant of extra worker threads from the shared budget; tokens return
/// to the pool when the lease drops.
#[derive(Debug)]
pub struct Lease {
    granted: usize,
}

impl Lease {
    /// Number of *extra* worker threads this lease allows the holder to
    /// spawn (the holder's own thread comes on top). May be 0 — the
    /// single-threaded fallback.
    pub fn workers(&self) -> usize {
        self.granted
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.granted > 0 {
            budget().fetch_add(self.granted, Ordering::AcqRel);
        }
    }
}

/// Takes up to `want` extra worker tokens from the shared budget.
///
/// Never blocks: if fewer tokens are free (typically because an outer
/// parallel helper holds them), the lease is smaller — down to zero, the
/// run-inline fallback. Helpers should size `want` as
/// `desired_threads − 1`.
pub fn lease(want: usize) -> Lease {
    let tokens = budget();
    let mut free = tokens.load(Ordering::Acquire);
    loop {
        let take = free.min(want);
        if take == 0 {
            if want > 0 {
                // A helper asked for workers and got none: the nested
                // run-inline degradation the recorder makes visible.
                pp_obs::obs_count!("pool.lease_inline", 1);
            }
            return Lease { granted: 0 };
        }
        match tokens.compare_exchange_weak(free, free - take, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                pp_obs::obs_count!("pool.lease_acquired", 1);
                pp_obs::obs_value!("pool.lease_workers", take);
                return Lease { granted: take };
            }
            Err(now) => free = now,
        }
    }
}

/// Currently un-leased worker tokens; diagnostic only (the value can be
/// stale by the time the caller acts on it — use [`lease`] to claim).
pub fn available_workers() -> usize {
    budget().load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The budget is process-global, and sibling tests (replicate,
    // sharded) lease from it concurrently under the parallel test
    // harness; assertions here only use tokens this test itself holds.

    #[test]
    fn lease_grants_at_most_want() {
        // Only the self-held invariant is race-free on the shared global
        // counter; `available_workers()` before/after comparisons would
        // observe tokens sibling tests lease and return concurrently.
        let a = lease(1);
        assert!(a.workers() <= 1);
    }

    #[test]
    fn concurrent_leases_never_oversubscribe() {
        // Tokens are conserved, so however sibling tests interleave, two
        // max-want leases held together can never exceed the budget.
        let a = lease(usize::MAX);
        let b = lease(usize::MAX);
        assert!(
            a.workers() + b.workers() <= parallelism().saturating_sub(1),
            "leases {} + {} exceed budget {}",
            a.workers(),
            b.workers(),
            parallelism().saturating_sub(1)
        );
        drop(b);
        drop(a);
    }

    #[test]
    fn parallelism_is_positive() {
        assert!(parallelism() >= 1);
    }
}
