//! The monomorphized packed-state fast path.
//!
//! [`Simulator`](crate::Simulator) is the generic reference engine: boxed
//! states, object-safe `&mut dyn Rng` transitions, and (as the experiment
//! harness uses it) `Box<dyn Topology>` dispatch on every partner draw. That
//! flexibility costs a virtual call or two per simulated interaction —
//! which is the entire budget at hundreds of millions of steps.
//!
//! This module removes every per-interaction indirection while keeping the
//! dynamics *bit-for-bit identical*:
//!
//! * [`PackedProtocol`] encodes an agent state into a `u32` (for
//!   Diversification: `colour << 1 | shade`), stored in one flat SoA
//!   `Vec<u32>` — half the memory traffic of the 8-byte `AgentState`;
//! * transitions are generic over `R: Rng`, so the whole step inlines into
//!   a straight-line loop with zero dynamic dispatch;
//! * partner draws go through
//!   [`Topology::sample_partner_mono`],
//!   the monomorphized twin of `sample_partner`.
//!
//! Because every RNG draw happens in the same order with the same spans as
//! in the generic engine, a [`PackedSimulator`] and a [`Simulator`](crate::Simulator) given
//! the same seed produce **exactly the same trajectory** — enforced by
//! equivalence tests in `pp-core`, `pp-baselines`, and `tests/`.

use crate::turbo::TurboWord;
use crate::Population;
use pp_graph::Topology;
use rand::rngs::{CounterRng, StdRng, GOLDEN};
use rand::{RngExt, SeedableRng};

/// Most observations any packed protocol may request per activation; keeps
/// the per-step observation buffer on the stack.
pub const MAX_PACKED_OBSERVATIONS: usize = 8;

/// A protocol with a compact `u32` state encoding and a monomorphized
/// transition rule.
///
/// Mirrors [`Protocol`](crate::Protocol) — same scheduling model, same
/// one-way semantics — but trades object safety for inlining: `transition`
/// is generic over the RNG, so `PackedSimulator` compiles to a
/// dispatch-free loop. Implementations must consume randomness **exactly**
/// like their generic counterpart (same draws, same order, same spans) so
/// shared-seed trajectories match the reference engine; the workspace
/// verifies this with equivalence tests for every packed protocol.
///
/// # Examples
///
/// ```
/// use pp_engine::{PackedProtocol, PackedSimulator};
/// use pp_graph::Cycle;
/// use rand::Rng;
///
/// /// Voter dynamics over `u8` colour labels.
/// #[derive(Debug)]
/// struct PackedVoter;
///
/// impl PackedProtocol for PackedVoter {
///     type State = u8;
///     fn pack(&self, s: &u8) -> u32 {
///         *s as u32
///     }
///     fn unpack(&self, p: u32) -> u8 {
///         p as u8
///     }
///     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
///         observed[0]
///     }
///     fn name(&self) -> String {
///         "packed-voter".into()
///     }
/// }
///
/// let states: Vec<u8> = (0..8).collect();
/// let mut sim = PackedSimulator::new(PackedVoter, Cycle::new(8), &states, 7);
/// sim.run(1_000);
/// assert_eq!(sim.step_count(), 1_000);
/// ```
pub trait PackedProtocol: Send + Sync {
    /// The generic-engine state this packing corresponds to.
    type State: Clone + std::fmt::Debug;

    /// Number of partners observed per activation (compile-time constant so
    /// the engine's arity branch folds away). Must be in
    /// `1..=`[`MAX_PACKED_OBSERVATIONS`].
    const OBSERVATIONS: usize = 1;

    /// Encodes a state into its packed form.
    fn pack(&self, state: &Self::State) -> u32;

    /// Decodes a packed state. Must be the inverse of
    /// [`pack`](PackedProtocol::pack).
    fn unpack(&self, packed: u32) -> Self::State;

    /// Computes the scheduled agent's next packed state.
    ///
    /// `observed` has exactly [`OBSERVATIONS`](PackedProtocol::OBSERVATIONS)
    /// entries.
    fn transition<R: rand::Rng>(&self, me: u32, observed: &[u32], rng: &mut R) -> u32;

    /// The transition rule as the relaxed-equivalence turbo engine calls it.
    ///
    /// Must produce the same **distribution** over next states as
    /// [`transition`](PackedProtocol::transition) given uniform
    /// randomness, but — unlike `transition`, which must consume
    /// randomness draw-for-draw like the generic engine — it may spend its
    /// entropy however it likes. `aux` is a per-step entropy word whose
    /// **low 32 bits** are uniform and independent of the step's
    /// scheduling/partner indices (to the engine-documented `O(d/2³²)`);
    /// overrides use it to make probabilistic rules branch-free — compare
    /// against an integer threshold instead of conditionally drawing, at
    /// a bias of `O(2⁻³²)` that is far below the statistical harness's
    /// resolution. Protocols that need more entropy than one word can
    /// fall back to `rng`, an independent counter stream for this step.
    ///
    /// The default ignores `aux` and delegates to `transition`; override
    /// only as a measured optimisation. The `pp-stats` equivalence harness
    /// verifies the distributional claim for every override.
    #[inline]
    fn transition_turbo<R: rand::Rng>(
        &self,
        me: u32,
        observed: &[u32],
        aux: u64,
        rng: &mut R,
    ) -> u32 {
        let _ = aux;
        self.transition(me, observed, rng)
    }

    /// The transition rule as the lane-parallel ensemble engine calls it:
    /// `L` independent replicas transition at once, directly in the
    /// engine's storage width `W`.
    ///
    /// `me[l]` is lane `l`'s scheduled-agent word (updated in place),
    /// `observed[j][l]` its `j`-th observed word, and `aux[l]` its
    /// per-step entropy word — each lane's `aux` carries the same
    /// guarantees as [`transition_turbo`](Self::transition_turbo)'s, and
    /// lanes' words come from independent counter streams.
    ///
    /// The word type is the engine's [`TurboWord`] so an override's mask
    /// arithmetic runs at storage width — at `W = u8` all 32 lanes of a
    /// group fit one 32-byte vector register, where widening to `u32`
    /// first would spread them over four and put a scalar widen/narrow
    /// pass on the row load/store path.
    ///
    /// The default widens lane by lane and applies `transition_turbo`
    /// (with each lane's fallback stream parked one hash away, exactly
    /// like the turbo engine), so `L = 1` reproduces the turbo
    /// transition bit for bit for every protocol. Override only when the
    /// per-lane rule is branch-free mask arithmetic the compiler can
    /// keep in vector registers — the `pp-stats` equivalence harness
    /// verifies every override distributionally, per lane.
    #[inline]
    fn transition_vec<W: TurboWord, const L: usize>(
        &self,
        me: &mut [W; L],
        observed: &[[W; L]],
        aux: &[u64; L],
    ) {
        let m = observed.len();
        debug_assert!(m <= MAX_PACKED_OBSERVATIONS);
        let mut lane_obs = [0u32; MAX_PACKED_OBSERVATIONS];
        for l in 0..L {
            for (slot, row) in lane_obs.iter_mut().zip(observed) {
                *slot = row[l].widen();
            }
            let mut rng = CounterRng::from_state(aux[l] ^ GOLDEN);
            me[l] =
                W::narrow(self.transition_turbo(me[l].widen(), &lane_obs[..m], aux[l], &mut rng));
        }
    }

    /// The exact outcome distribution of one activation, for the bounded
    /// model checker (`pp-check`): given the scheduled agent's packed word
    /// and its observed packed word(s), the full list of
    /// `(next packed word, probability)` pairs with probabilities summing
    /// to 1.
    ///
    /// This is the protocol's transition rule as *data* instead of as a
    /// sampling procedure — the explorer enumerates every reachable
    /// configuration and follows every outcome with positive probability,
    /// which a `transition` call (one sample per invocation) cannot
    /// provide. Implementations must describe exactly the distribution
    /// `transition` samples from; the checker cross-validates this by
    /// single-stepping every engine tier at explored configurations and
    /// asserting the result lands in the declared support.
    ///
    /// The default returns `None`, and the checker treats that as a
    /// **fail-closed** condition: a protocol without an exact rate table
    /// cannot be model-checked and is reported as unverifiable rather
    /// than silently skipped.
    fn outcomes(&self, me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        let _ = (me, observed);
        None
    }

    /// Short protocol name for experiment tables.
    fn name(&self) -> String;
}

/// The packed, fully monomorphized batch-stepping simulator.
///
/// Runs the same sequential uniform scheduler as
/// [`Simulator`](crate::Simulator) — schedule a uniform agent, draw
/// neighbour(s), transition — over a flat `Vec<u32>` state array, with the
/// protocol, topology, and RNG all statically dispatched. Given the same
/// `(protocol, topology, initial states, seed)` it reproduces the generic
/// engine's trajectory exactly.
#[derive(Debug)]
pub struct PackedSimulator<P: PackedProtocol, T: Topology> {
    protocol: P,
    topology: T,
    states: Vec<u32>,
    rng: StdRng,
    step: u64,
    seed: u64,
}

impl<P: PackedProtocol, T: Topology> PackedSimulator<P, T> {
    /// Creates a simulator at time-step 0, packing the given initial
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if the number of initial states does not match the topology
    /// size, the population is smaller than 2, or `P::OBSERVATIONS` is 0 or
    /// above [`MAX_PACKED_OBSERVATIONS`].
    pub fn new(protocol: P, topology: T, initial_states: &[P::State], seed: u64) -> Self {
        let packed = initial_states.iter().map(|s| protocol.pack(s)).collect();
        Self::from_packed(protocol, topology, packed, seed)
    }

    /// Creates a simulator from already-packed states.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_packed(protocol: P, topology: T, states: Vec<u32>, seed: u64) -> Self {
        assert_eq!(
            states.len(),
            topology.len(),
            "population size {} != topology size {}",
            states.len(),
            topology.len()
        );
        assert!(states.len() >= 2, "population needs at least 2 agents");
        assert!(
            (1..=MAX_PACKED_OBSERVATIONS).contains(&P::OBSERVATIONS),
            "packed protocol must observe 1..={MAX_PACKED_OBSERVATIONS} agents, got {}",
            P::OBSERVATIONS
        );
        PackedSimulator {
            protocol,
            topology,
            states,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            seed,
        }
    }

    /// Executes one time-step: schedule, observe, transition.
    #[inline]
    pub fn step(&mut self) {
        let n = self.states.len();
        // `random_index` draws the same Lemire stream as the reference
        // engine's `random_range(0..n)`, monomorphized.
        let u = self.rng.random_index(n);
        let next = match P::OBSERVATIONS {
            1 => {
                let v = self.topology.sample_partner_mono(u, &mut self.rng);
                self.protocol
                    .transition(self.states[u], &[self.states[v]], &mut self.rng)
            }
            2 => {
                let v = self.topology.sample_partner_mono(u, &mut self.rng);
                let w = self.topology.sample_partner_mono(u, &mut self.rng);
                self.protocol.transition(
                    self.states[u],
                    &[self.states[v], self.states[w]],
                    &mut self.rng,
                )
            }
            m => {
                let mut observed = [0u32; MAX_PACKED_OBSERVATIONS];
                for slot in observed.iter_mut().take(m) {
                    let v = self.topology.sample_partner_mono(u, &mut self.rng);
                    *slot = self.states[v];
                }
                self.protocol
                    .transition(self.states[u], &observed[..m], &mut self.rng)
            }
        };
        self.states[u] = next;
        self.step += 1;
    }

    /// Runs `steps` time-steps as one tight batch loop.
    pub fn run(&mut self, steps: u64) {
        // Recorded per batch, not per step: one branch per `run` call.
        pp_obs::obs_count!("packed.steps", steps);
        pp_obs::obs_count!("packed.batches", 1);
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until `pred(packed_states, step)` holds, checking every
    /// `check_every` steps (and once before the first step), for at most
    /// `max_steps` steps. Returns the step count at which the predicate
    /// first held, or `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        mut pred: impl FnMut(&[u32], u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step + max_steps;
        if pred(&self.states, self.step) {
            return Some(self.step);
        }
        while self.step < deadline {
            let burst = check_every.min(deadline - self.step);
            self.run(burst);
            if pred(&self.states, self.step) {
                return Some(self.step);
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, packed_states)`
    /// before the first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_observed(&mut self, steps: u64, every: u64, mut observer: impl FnMut(u64, &[u32])) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step, &self.states);
        let deadline = self.step + steps;
        while self.step < deadline {
            let burst = every.min(deadline - self.step);
            self.run(burst);
            observer(self.step, &self.states);
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if there are no agents (impossible by construction,
    /// provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of time-steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The packed states, indexed by agent id.
    pub fn states_packed(&self) -> &[u32] {
        &self.states
    }

    /// Decodes the full population into generic states.
    pub fn states_unpacked(&self) -> Vec<P::State> {
        self.states
            .iter()
            .map(|&p| self.protocol.unpack(p))
            .collect()
    }

    /// Decodes the population into a generic-engine [`Population`], for
    /// checkers written against the reference types.
    pub fn population(&self) -> Population<P::State> {
        Population::new(self.states_unpacked())
    }

    /// Decoded state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn state(&self, u: usize) -> P::State {
        self.protocol.unpack(self.states[u])
    }

    /// Overwrites the state of agent `u` — the hook adversarial processes
    /// (churn, shocks) use to apply structural changes between time-steps.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn set_state(&mut self, u: usize, state: &P::State) {
        self.states[u] = self.protocol.pack(state);
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Replaces the whole packed population, resizing the topology (via
    /// [`Topology::resized`]) when the length changes — the bulk-rewrite
    /// path of the [`Engine`](crate::Engine) structural-mutation surface.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 states are given, or the length changed and
    /// the topology family has no canonical resize.
    pub fn replace_packed_states(&mut self, states: Vec<u32>) {
        assert!(states.len() >= 2, "population needs at least 2 agents");
        if states.len() != self.states.len() {
            self.topology = crate::engine::resize_topology(&self.topology, states.len());
        }
        self.states = states;
    }

    /// Consumes the simulator, returning the packed state vector.
    pub fn into_packed_states(self) -> Vec<u32> {
        self.states
    }

    /// The sequential generator's full state, for the snapshot surface.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rewinds the non-population resume state — clock, seed, generator
    /// position — to a snapshot's values (see
    /// [`Simulator::restore_raw`](crate::Simulator)).
    pub(crate) fn restore_raw(&mut self, step: u64, seed: u64, rng_state: [u64; 4]) {
        self.step = step;
        self.seed = seed;
        self.rng = StdRng::from_state(rng_state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Protocol, Simulator};
    use pp_graph::{Complete, Cycle, Torus2d};
    use rand::Rng;

    /// Voter dynamics over raw u32 labels, in both engines' vocabularies.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl Protocol for Copy1 {
        type State = u32;

        fn transition(&self, _me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
            *observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: rand::Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Two-sample protocol exercising the m = 2 arm.
    #[derive(Debug, Clone)]
    struct MaxOfTwo;

    impl Protocol for MaxOfTwo {
        type State = u32;

        fn observations(&self) -> usize {
            2
        }

        fn transition(&self, me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
            (*me).max(*observed[0]).max(*observed[1])
        }

        fn name(&self) -> String {
            "max2".into()
        }
    }

    impl PackedProtocol for MaxOfTwo {
        type State = u32;

        const OBSERVATIONS: usize = 2;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: rand::Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            me.max(observed[0]).max(observed[1])
        }

        fn name(&self) -> String {
            "max2".into()
        }
    }

    #[test]
    fn matches_generic_engine_exactly_m1() {
        let init: Vec<u32> = (0..64).collect();
        for seed in 0..8 {
            let mut fast = PackedSimulator::new(Copy1, Cycle::new(64), &init, seed);
            let mut reference = Simulator::new(Copy1, Cycle::new(64), init.clone(), seed);
            fast.run(5_000);
            reference.run(5_000);
            assert_eq!(
                fast.states_unpacked(),
                reference.population().states(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_generic_engine_exactly_m2() {
        let init: Vec<u32> = (0..48).collect();
        for seed in [1u64, 9, 33] {
            let mut fast = PackedSimulator::new(MaxOfTwo, Torus2d::new(6, 8), &init, seed);
            let mut reference = Simulator::new(MaxOfTwo, Torus2d::new(6, 8), init.clone(), seed);
            fast.run(3_000);
            reference.run(3_000);
            assert_eq!(
                fast.states_unpacked(),
                reference.population().states(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn run_until_and_observed_mirror_reference() {
        let init: Vec<u32> = (0..16).collect();
        let mut sim = PackedSimulator::new(Copy1, Complete::new(16), &init, 3);
        let hit = sim.run_until(200_000, 16, |states, _| {
            states.iter().all(|&s| s == states[0])
        });
        assert!(hit.is_some(), "voter consensus not reached");

        let mut sim = PackedSimulator::new(Copy1, Complete::new(16), &init, 3);
        let mut seen = Vec::new();
        sim.run_observed(10, 4, |t, _| seen.push(t));
        assert_eq!(seen, vec![0, 4, 8, 10]);
    }

    #[test]
    fn accessors_and_mutation() {
        let init: Vec<u32> = vec![5, 6, 7];
        let mut sim = PackedSimulator::new(Copy1, Cycle::new(3), &init, 1);
        assert_eq!(sim.len(), 3);
        assert!(!sim.is_empty());
        assert_eq!(sim.seed(), 1);
        assert_eq!(sim.state(2), 7);
        sim.set_state(2, &9);
        assert_eq!(sim.states_packed()[2], 9);
        assert_eq!(sim.population().states(), &[5, 6, 9]);
        assert_eq!(PackedProtocol::name(sim.protocol()), "copy");
        assert_eq!(sim.topology().len(), 3);
        assert_eq!(sim.into_packed_states(), vec![5, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn rejects_size_mismatch() {
        PackedSimulator::new(Copy1, Cycle::new(4), &[1u32, 2, 3], 0);
    }
}
