//! Conversions between time-steps and parallel rounds.
//!
//! The paper's scheduler activates a single agent per **time-step**; much of
//! the population-protocol literature instead reports **parallel rounds**,
//! where one round corresponds to `n` activations. These helpers convert
//! between the two conventions so experiment tables can report both.

/// Number of time-steps corresponding to `rounds` parallel rounds for a
/// population of `n` agents.
///
/// # Examples
///
/// ```
/// use pp_engine::rounds::steps_for_rounds;
///
/// assert_eq!(steps_for_rounds(100, 3.0), 300);
/// assert_eq!(steps_for_rounds(100, 0.5), 50);
/// ```
///
/// # Panics
///
/// Panics if `rounds` is negative or non-finite.
pub fn steps_for_rounds(n: usize, rounds: f64) -> u64 {
    assert!(
        rounds.is_finite() && rounds >= 0.0,
        "rounds must be a non-negative finite number, got {rounds}"
    );
    (rounds * n as f64).round() as u64
}

/// Number of parallel rounds corresponding to `steps` time-steps.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn rounds_for_steps(n: usize, steps: u64) -> f64 {
    assert!(n > 0, "population must be non-empty");
    steps as f64 / n as f64
}

/// `n · ln n`, the natural scaling unit of the paper's convergence bounds
/// (Theorem 1.3 gives `O(w² n log n)` steps).
///
/// # Panics
///
/// Panics if `n < 2` (the logarithm would be non-positive).
pub fn n_log_n(n: usize) -> f64 {
    assert!(n >= 2, "n log n needs n >= 2, got {n}");
    let nf = n as f64;
    nf * nf.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = 128;
        let steps = steps_for_rounds(n, 2.5);
        assert_eq!(steps, 320);
        assert!((rounds_for_steps(n, steps) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_rounds() {
        assert_eq!(steps_for_rounds(10, 0.0), 0);
    }

    #[test]
    fn n_log_n_values() {
        assert!((n_log_n(2) - 2.0 * 2f64.ln()).abs() < 1e-12);
        assert!(n_log_n(1000) > 1000.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rounds() {
        steps_for_rounds(10, -1.0);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn n_log_n_rejects_small() {
        n_log_n(1);
    }
}
