//! The vector of agent states.

use std::collections::HashMap;
use std::hash::Hash;

/// The states of all agents, indexed by agent id `0..len()`.
///
/// A thin, invariant-free wrapper over `Vec<S>` with counting helpers used
/// by property checkers. Mutation is public on purpose: the adversary crate
/// implements the paper's structural changes (add agents, inject colours,
/// recolour) by editing the population directly between time-steps.
///
/// # Examples
///
/// ```
/// use pp_engine::Population;
///
/// let pop = Population::new(vec!['a', 'b', 'a']);
/// assert_eq!(pop.len(), 3);
/// assert_eq!(pop.count_matching(|&c| c == 'a'), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population<S> {
    states: Vec<S>,
}

impl<S> Population<S> {
    /// Wraps a vector of initial states.
    pub fn new(states: Vec<S>) -> Self {
        Population { states }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if there are no agents.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn state(&self, u: usize) -> &S {
        &self.states[u]
    }

    /// Overwrites the state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn set_state(&mut self, u: usize, state: S) {
        self.states[u] = state;
    }

    /// Appends a new agent and returns its id.
    pub fn push(&mut self, state: S) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Removes agent `u`, moving the last agent into its slot (`O(1)`), and
    /// returns the removed state. Agent ids above `u` are renumbered; used
    /// by the adversary crate, which treats ids as anonymous.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn swap_remove(&mut self, u: usize) -> S {
        self.states.swap_remove(u)
    }

    /// All states, in agent order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to all states (adversary hook).
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Iterator over `(agent_id, state)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &S)> {
        self.states.iter().enumerate()
    }

    /// Consumes the population, returning the state vector.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Number of agents whose state satisfies `pred`.
    pub fn count_matching(&self, pred: impl Fn(&S) -> bool) -> usize {
        self.states.iter().filter(|s| pred(s)).count()
    }

    /// Groups agents by `key` and counts each group.
    ///
    /// # Examples
    ///
    /// ```
    /// use pp_engine::Population;
    ///
    /// let pop = Population::new(vec![1u8, 2, 2, 3]);
    /// let counts = pop.count_by(|&s| s);
    /// assert_eq!(counts[&2], 2);
    /// ```
    pub fn count_by<K: Eq + Hash>(&self, key: impl Fn(&S) -> K) -> HashMap<K, usize> {
        let mut out = HashMap::new();
        for s in &self.states {
            *out.entry(key(s)).or_insert(0) += 1;
        }
        out
    }
}

impl<S> FromIterator<S> for Population<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Population {
            states: iter.into_iter().collect(),
        }
    }
}

impl<S> Extend<S> for Population<S> {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        self.states.extend(iter);
    }
}

impl<S> std::ops::Index<usize> for Population<S> {
    type Output = S;

    fn index(&self, u: usize) -> &S {
        &self.states[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut pop = Population::new(vec![10, 20]);
        assert_eq!(pop.len(), 2);
        assert_eq!(*pop.state(1), 20);
        pop.set_state(1, 99);
        assert_eq!(pop[1], 99);
        assert_eq!(pop.push(7), 2);
        assert_eq!(pop.len(), 3);
    }

    #[test]
    fn counting() {
        let pop: Population<u8> = [1, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(pop.count_matching(|&x| x == 3), 3);
        let by = pop.count_by(|&x| x);
        assert_eq!(by[&1], 2);
        assert_eq!(by[&2], 1);
        assert_eq!(by[&3], 3);
    }

    #[test]
    fn iter_preserves_order() {
        let pop = Population::new(vec!['x', 'y']);
        let collected: Vec<(usize, char)> = pop.iter().map(|(i, &c)| (i, c)).collect();
        assert_eq!(collected, vec![(0, 'x'), (1, 'y')]);
    }

    #[test]
    fn extend_and_into_states() {
        let mut pop = Population::new(vec![1]);
        pop.extend([2, 3]);
        assert_eq!(pop.into_states(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_population() {
        let pop: Population<u8> = Population::new(vec![]);
        assert!(pop.is_empty());
        assert_eq!(pop.count_matching(|_| true), 0);
    }
}
