//! The lane-parallel ensemble engine: L replicas per step loop.
//!
//! Every real workload in this workspace — convergence sweeps, the
//! `pp-stats` equivalence harnesses, the adversary t-bins — runs
//! *ensembles* of independent replicas of one `(topology, protocol)`
//! pair, and [`replicate`](crate::replicate()) schedules them one scalar
//! run at a time. A single run is already at the memory/port floor
//! ([`TurboSimulator`](crate::TurboSimulator) on the ring matches a
//! hand-written minimal loop), so the remaining headroom is *data
//! parallelism across replicas*, not more scalar speed.
//!
//! [`VecSimulator`] steps `L` replicas in lockstep:
//!
//! * **Lane-major SoA state.** The state array is `[n × L]` words
//!   (`states[u·L + l]` = agent `u` in replica `l`), so loading the
//!   scheduled agent's row touches all `L` replicas with one contiguous
//!   load — at `W = u8`, `L = 32` that is exactly one AVX2 register (half
//!   an AVX-512 register) per agent.
//! * **A shared schedule walk.** All lanes schedule the *same* agent
//!   each step: one multiply-shift draw from a turbo-style Weyl walk
//!   keyed by the ensemble's master seed serves every lane, which is
//!   what makes the row load/store contiguous.
//! * **Per-lane partner/aux streams.** Each lane owns an independent
//!   Weyl walk keyed by its own seed (derivation keyed like
//!   `CounterRng::for_shard(seed, lane, block)` — every component hashed
//!   through the SplitMix64 finalizer), so partner choices and
//!   transition entropy are independent across lanes and each lane
//!   reproduces the scalar trajectory `F(master_seed, lane_seed)`
//!   regardless of which group, slot, or width it runs in.
//!
//! With `L = 1` and `lane_seed == master_seed` the walks coincide with
//! [`TurboSimulator`](crate::TurboSimulator)'s positions exactly, so a one-lane vec run is
//! **bit-exact** against turbo under a shared seed — that is the anchor
//! test in `tests/vec_equivalence.rs`, and it pins the whole derivation.
//!
//! # Equivalence contract (per lane)
//!
//! A lane's marginal trajectory is distributed exactly like a scalar
//! turbo run: same schedule distribution, same partner distribution, same
//! transition entropy. Lanes sharing a master seed also share *which*
//! agent is scheduled each step, so they are conditionally independent
//! given the schedule — observables can correlate positively across
//! lanes of one group, never across groups with distinct masters. The
//! `pp-stats` harness in `tests/vec_equivalence.rs` checks the full
//! battery per lane; EXPERIMENTS.md ("Ensemble tier") states the
//! contract.

use crate::packed::MAX_PACKED_OBSERVATIONS;
use crate::{PackedProtocol, Population, TurboWord};
use pp_graph::Topology;
use rand::rngs::{splitmix64, CounterRng, GOLDEN};

/// Hash tweak that turns a seed into a Weyl-walk base; must match
/// `TurboSimulator`'s so one-lane runs are bit-exact against turbo.
const WALK_TWEAK: u64 = 0xA076_1D64_78BD_642F;

/// The lane-parallel ensemble simulator: `L` replicas of one
/// `(protocol, topology)` pair stepped in lockstep.
///
/// See the [module docs](self) for the randomness derivation and the
/// per-lane equivalence contract. Use [`replicate_vec`](crate::replicate_vec)
/// to run an arbitrary seed list through lane groups with a scalar
/// remainder fallback.
///
/// # Examples
///
/// ```
/// use pp_engine::{PackedProtocol, VecSimulator};
/// use pp_graph::Cycle;
/// use rand::Rng;
///
/// #[derive(Debug)]
/// struct PackedVoter;
///
/// impl PackedProtocol for PackedVoter {
///     type State = u8;
///     fn pack(&self, s: &u8) -> u32 {
///         *s as u32
///     }
///     fn unpack(&self, p: u32) -> u8 {
///         p as u8
///     }
///     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
///         observed[0]
///     }
///     fn name(&self) -> String {
///         "packed-voter".into()
///     }
/// }
///
/// let states: Vec<u8> = (0..8).collect();
/// // Four replicas of the same initial configuration, one step loop.
/// let mut sim = VecSimulator::<_, _, u8, 4>::from_seed(PackedVoter, Cycle::new(8), &states, 7);
/// sim.run(10_000);
/// assert_eq!(sim.step_count(), 10_000);
/// // Lanes hold independent replicas.
/// let lane0 = sim.lane_states_packed(0);
/// assert_eq!(lane0.len(), 8);
/// ```
#[derive(Debug)]
pub struct VecSimulator<P: PackedProtocol, T: Topology, W: TurboWord = u8, const L: usize = 8> {
    protocol: P,
    topology: T,
    /// Lane-major SoA: `states[u * L + l]` is agent `u` in replica `l`.
    states: Vec<W>,
    step: u64,
    master_seed: u64,
    lane_seeds: [u64; L],
    /// Schedule-walk base (from the master seed); step `t`'s scheduling
    /// draw sits at `sched_base + (t·words + 1)·GOLDEN`.
    sched_base: u64,
    /// Per-lane partner/aux walk bases (from the lane seeds); lane `l`'s
    /// observation `j` at step `t` sits at
    /// `lane_bases[l] + (t·words + 2 + j)·GOLDEN`.
    lane_bases: [u64; L],
}

impl<P: PackedProtocol, T: Topology, W: TurboWord, const L: usize> VecSimulator<P, T, W, L> {
    /// Uniform random words each lane consumes per time-step: one
    /// scheduling slot (shared across lanes) plus one per observation.
    /// Matches [`TurboSimulator`](crate::TurboSimulator)'s layout so
    /// one-lane runs visit the same Weyl positions.
    const WORDS_PER_STEP: u64 = 1 + P::OBSERVATIONS as u64;

    /// Creates an `L`-lane simulator at time-step 0: every lane starts
    /// from the same packed initial configuration, lane `l`'s partner/aux
    /// walk is keyed by `lane_seeds[l]`, and the shared schedule walk by
    /// `master_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `L == 0`, the number of initial states does not match
    /// the topology size, the population is smaller than 2,
    /// `P::OBSERVATIONS` is 0 or above [`MAX_PACKED_OBSERVATIONS`], the
    /// topology exceeds `u32::MAX` nodes, or any packed initial state
    /// overflows the storage word `W`.
    pub fn new(
        protocol: P,
        topology: T,
        initial_states: &[P::State],
        master_seed: u64,
        lane_seeds: [u64; L],
    ) -> Self {
        let packed = initial_states.iter().map(|s| protocol.pack(s)).collect();
        Self::from_packed(protocol, topology, packed, master_seed, lane_seeds)
    }

    /// [`new`](Self::new) from already-packed (`u32`) states; each lane
    /// starts from a copy of the given configuration.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_packed(
        protocol: P,
        topology: T,
        states: Vec<u32>,
        master_seed: u64,
        lane_seeds: [u64; L],
    ) -> Self {
        assert!(L > 0, "vec engine needs at least one lane");
        assert_eq!(
            states.len(),
            topology.len(),
            "population size {} != topology size {}",
            states.len(),
            topology.len()
        );
        assert!(states.len() >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(states.len()).is_ok(),
            "vec batch buffers store node ids as u32; {} agents is too many",
            states.len()
        );
        assert!(
            (1..=MAX_PACKED_OBSERVATIONS).contains(&P::OBSERVATIONS),
            "packed protocol must observe 1..={MAX_PACKED_OBSERVATIONS} agents, got {}",
            P::OBSERVATIONS
        );
        let mut lane_major = Vec::with_capacity(states.len() * L);
        for &p in &states {
            let w = W::narrow(p);
            for _ in 0..L {
                lane_major.push(w);
            }
        }
        let mut lane_bases = [0u64; L];
        for (base, &seed) in lane_bases.iter_mut().zip(&lane_seeds) {
            *base = splitmix64(seed ^ WALK_TWEAK);
        }
        VecSimulator {
            protocol,
            topology,
            states: lane_major,
            step: 0,
            master_seed,
            lane_seeds,
            sched_base: splitmix64(master_seed ^ WALK_TWEAK),
            lane_bases,
        }
    }

    /// An `L`-lane simulator from a single seed: lane 0's partner/aux
    /// walk is keyed by `seed` itself — so at `L = 1` this is positionally
    /// identical to `TurboSimulator::new(.., seed)` — and lanes `1..L`
    /// by a widened batch draw from `seed`'s counter stream
    /// ([`CounterRng::next_u64x`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_seed(protocol: P, topology: T, initial_states: &[P::State], seed: u64) -> Self {
        Self::new(
            protocol,
            topology,
            initial_states,
            seed,
            Self::lane_seeds_from(seed),
        )
    }

    /// The lane-seed derivation behind [`from_seed`](Self::from_seed):
    /// `[seed, d₁, …, d_{L−1}]` with the `dᵢ` one batch draw from
    /// `CounterRng::for_step(seed, 0)`.
    pub fn lane_seeds_from(seed: u64) -> [u64; L] {
        let mut seeds = CounterRng::for_step(seed, 0).next_u64x::<L>();
        seeds[0] = seed;
        seeds
    }

    /// Runs one batch of `len` time-steps as a single fused loop.
    ///
    /// Per step: one shared multiply-shift scheduling draw picks agent
    /// `u` for every lane, the `L`-word row `states[u·L..]` is loaded,
    /// each lane hashes its own walk for partner/aux words, and
    /// [`PackedProtocol::transition_vec`] advances all lanes at once.
    ///
    /// The lane work is *phase-split* into separate fixed-trip loops —
    /// hash all lanes, then draw all partners, then gather — because
    /// that is what the autovectorizer needs: a fused
    /// hash→partner→gather body has a bounds-checked load in its middle
    /// and compiles fully scalar, while the split phases are pure
    /// register arithmetic (SplitMix64 is 8 lanes per AVX-512 word via
    /// `vpmullq`) plus one inherently scalar gather loop. For the same
    /// reason the scratch buffers live outside the step loop (a
    /// `[[u32; L]; MAX_PACKED_OBSERVATIONS]` local re-zeroed per step is
    /// a `memset` call per step) and every row index is clamped with a
    /// no-op `min` that lets the compiler discharge the bounds checks.
    ///
    /// `inline(never)` for the same code-layout reason as the turbo
    /// engine's batch loop (entry-aligned standalone symbol).
    #[inline(never)]
    fn run_batch(&mut self, len: u64) {
        let m = P::OBSERVATIONS;
        // Split borrows, as in the turbo engine: disjoint locals let the
        // compiler keep slice pointers and walk bases in registers across
        // the per-step stores.
        let VecSimulator {
            states,
            topology,
            protocol,
            sched_base,
            lane_bases,
            step,
            ..
        } = self;
        let states = states.as_mut_slice();
        let n = states.len() / L;
        // Re-slice to exactly `n·L` words (a no-op — the length is always
        // a multiple of `L`). This states the array bound without the
        // division, which is what lets the compiler prove `v·L + l < len`
        // from `v ≤ n−1` and erase the per-lane bounds checks in the
        // row and gather loops below.
        let states = &mut states[..n * L];
        let sched_base = *sched_base;
        let lane_bases = *lane_bases;
        let stride = Self::WORDS_PER_STEP.wrapping_mul(GOLDEN);
        // Position offset of this step's word block: (t · words) · GOLDEN.
        let mut woff = step.wrapping_mul(stride);
        // Per-step scratch, hoisted: slots `< m` are fully rewritten
        // every step, slots `>= m` are never read. Everything stays in
        // the storage width `W` — rows move with plain 32-byte copies
        // and the transition's mask arithmetic runs at `u8` width (32
        // lanes per vector register), with no widen/narrow pass.
        let mut me = [W::ZERO; L];
        let mut observed = [[W::ZERO; L]; MAX_PACKED_OBSERVATIONS];
        let mut aux = [0u64; L];
        let mut partners = [0usize; L];
        for _ in 0..len {
            let x = splitmix64(sched_base.wrapping_add(woff).wrapping_add(GOLDEN));
            // Multiply-shift scheduling draw (bias n/2^64), shared by all
            // lanes — the one draw that keeps the row access contiguous.
            // `u < n` always holds; the `min` restates it in terms the
            // bounds-check eliminator can use.
            let u = (((x as u128 * n as u128) >> 64) as usize).min(n - 1);
            let row = u * L;
            me.copy_from_slice(&states[row..row + L]);
            for (j, slot) in observed.iter_mut().take(m).enumerate() {
                let off = woff.wrapping_add(GOLDEN.wrapping_mul(2 + j as u64));
                // Phase 1: per-lane walk words — straight-line u64
                // arithmetic, no loads. `aux` keeps the last
                // observation's words, as `transition_vec` expects.
                for (a, base) in aux.iter_mut().zip(&lane_bases) {
                    *a = splitmix64(base.wrapping_add(off));
                }
                // Phase 2: per-lane partner draws, batched so the
                // topology hoists its `u`-only work (neighbour
                // candidates, modular coordinates) out of the lane loop.
                topology.sample_partners_turbo(u, &aux, &mut partners);
                // Phase 3: the row gather — the one inherently scalar
                // loop. Samplers guarantee `v < n`; clamping the flat
                // index (a no-op) keeps it below `len` by construction,
                // so the loop carries no panic edge.
                let last = n * L - 1;
                for l in 0..L {
                    debug_assert!(
                        partners[l] < n,
                        "sampler returned node {} >= {n}",
                        partners[l]
                    );
                    let idx = (partners[l] * L + l).min(last);
                    slot[l] = states[idx];
                }
            }
            protocol.transition_vec(&mut me, &observed[..m], &aux);
            states[row..row + L].copy_from_slice(&me);
            woff = woff.wrapping_add(stride);
        }
        self.step += len;
    }

    /// Runs `steps` time-steps (per lane: every lane advances `steps`).
    pub fn run(&mut self, steps: u64) {
        // Recorded per batch, not per step: one branch per `run` call.
        pp_obs::obs_count!("vec.steps", steps);
        pp_obs::obs_count!("vec.lane_steps", steps.saturating_mul(L as u64));
        pp_obs::obs_count!("vec.batches", 1);
        self.run_batch(steps);
    }

    /// Number of agents (per lane).
    pub fn len(&self) -> usize {
        self.states.len() / L
    }

    /// Returns `true` if there are no agents (impossible by construction,
    /// provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of lanes (`L`).
    pub fn lanes(&self) -> usize {
        L
    }

    /// Number of time-steps executed so far (per lane).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The master seed keying the shared schedule walk.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The per-lane seeds keying the partner/aux walks.
    pub fn lane_seeds(&self) -> &[u64; L] {
        &self.lane_seeds
    }

    /// The raw lane-major state words: `[u·L + l]` = agent `u`, lane `l`.
    pub fn states_words(&self) -> &[W] {
        &self.states
    }

    /// Lane `l`'s population widened back to packed `u32` form.
    ///
    /// # Panics
    ///
    /// Panics if `l >= L`.
    pub fn lane_states_packed(&self, l: usize) -> Vec<u32> {
        assert!(l < L, "lane {l} out of range for {L} lanes");
        self.states[l..]
            .iter()
            .step_by(L)
            .map(|w| w.widen())
            .collect()
    }

    /// Lane `l`'s population decoded into generic states.
    ///
    /// # Panics
    ///
    /// Panics if `l >= L`.
    pub fn lane_states_unpacked(&self, l: usize) -> Vec<P::State> {
        assert!(l < L, "lane {l} out of range for {L} lanes");
        self.states[l..]
            .iter()
            .step_by(L)
            .map(|w| self.protocol.unpack(w.widen()))
            .collect()
    }

    /// Lane `l` decoded into a generic-engine [`Population`], for
    /// checkers written against the reference types.
    ///
    /// # Panics
    ///
    /// Panics if `l >= L`.
    pub fn lane_population(&self, l: usize) -> Population<P::State> {
        Population::new(self.lane_states_unpacked(l))
    }

    /// Decoded state of agent `u` in lane 0 — the observed replica of
    /// the [`Engine`](crate::Engine) surface.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn state(&self, u: usize) -> P::State {
        assert!(u < self.len(), "agent {u} out of range");
        self.protocol.unpack(self.states[u * L].widen())
    }

    /// Overwrites the state of agent `u` in **every lane** — structural
    /// mutations apply to all replicas, keeping the lanes exchangeable
    /// replicas of the same (mutated) process.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or the packed state overflows `W`.
    pub fn set_state(&mut self, u: usize, state: &P::State) {
        assert!(u < self.len(), "agent {u} out of range");
        let w = W::narrow(self.protocol.pack(state));
        for slot in &mut self.states[u * L..(u + 1) * L] {
            *slot = w;
        }
    }

    /// Replaces the population of **every lane** with the given packed
    /// configuration, resizing the topology (via
    /// [`Topology::resized`]) when the length changes — the bulk-rewrite
    /// path of the [`Engine`](crate::Engine) structural-mutation surface.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 states are given, a state overflows `W`, or
    /// the length changed and the topology family has no canonical resize.
    pub fn replace_packed_states(&mut self, states: Vec<u32>) {
        assert!(states.len() >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(states.len()).is_ok(),
            "vec batch buffers store node ids as u32; {} agents is too many",
            states.len()
        );
        if states.len() != self.len() {
            self.topology = crate::engine::resize_topology(&self.topology, states.len());
        }
        let mut lane_major = Vec::with_capacity(states.len() * L);
        for &p in &states {
            let w = W::narrow(p);
            for _ in 0..L {
                lane_major.push(w);
            }
        }
        self.states = lane_major;
    }

    /// Appends one agent (same packed state in every lane), resizing the
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if the state overflows `W` or the topology family has no
    /// canonical resize.
    pub fn push_packed_agent(&mut self, p: u32) {
        let n = self.len() + 1;
        assert!(
            u32::try_from(n).is_ok(),
            "vec batch buffers store node ids as u32; {n} agents is too many"
        );
        self.topology = crate::engine::resize_topology(&self.topology, n);
        let w = W::narrow(p);
        for _ in 0..L {
            self.states.push(w);
        }
    }

    /// Removes agent `u` (from every lane), moving the last agent's row
    /// into its slot, and resizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`, the removal would leave fewer than 2
    /// agents, or the topology family has no canonical resize.
    pub fn swap_remove_packed_agent(&mut self, u: usize) {
        let n = self.len();
        assert!(u < n, "agent {u} out of range");
        assert!(n > 2, "removal would leave fewer than 2 agents");
        self.topology = crate::engine::resize_topology(&self.topology, n - 1);
        let last = (n - 1) * L;
        let row = u * L;
        for l in 0..L {
            self.states[row + l] = self.states[last + l];
        }
        self.states.truncate(last);
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Rebuilds the full resume state from a snapshot: **all** lanes'
    /// words (lane-major, `n·L` entries — the Engine surface observes
    /// lane 0 but every lane is part of the ensemble's state), clock,
    /// and the master/lane seeds with their derived walk bases. The
    /// caller has validated the arity and that every word fits `W`.
    pub(crate) fn restore_raw(
        &mut self,
        lane_major: Vec<u32>,
        step: u64,
        master_seed: u64,
        lane_seeds: [u64; L],
    ) {
        debug_assert_eq!(lane_major.len(), self.states.len());
        self.states = lane_major.into_iter().map(W::narrow).collect();
        self.step = step;
        self.master_seed = master_seed;
        self.lane_seeds = lane_seeds;
        self.sched_base = splitmix64(master_seed ^ WALK_TWEAK);
        for (base, &seed) in self.lane_bases.iter_mut().zip(&lane_seeds) {
            *base = splitmix64(seed ^ WALK_TWEAK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TurboSimulator;
    use pp_graph::{Complete, Cycle, Torus2d};
    use rand::Rng;

    /// Voter dynamics over raw u32 labels.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Two-sample protocol exercising the m = 2 arm.
    #[derive(Debug, Clone)]
    struct MaxOfTwo;

    impl PackedProtocol for MaxOfTwo {
        type State = u32;

        const OBSERVATIONS: usize = 2;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            me.max(observed[0]).max(observed[1])
        }

        fn name(&self) -> String {
            "max2".into()
        }
    }

    /// The anchor property: one lane with `lane_seed == master_seed`
    /// visits exactly the turbo engine's Weyl positions, so the
    /// trajectories are bit-identical — for both storage widths and both
    /// observation arities.
    #[test]
    fn one_lane_is_bit_exact_vs_turbo() {
        let init: Vec<u32> = (0..64).map(|u| u % 200).collect();
        for seed in [0u64, 9, 0xDEAD_BEEF] {
            let mut turbo = TurboSimulator::<_, _, u8>::new(Copy1, Torus2d::new(8, 8), &init, seed);
            let mut vec =
                VecSimulator::<_, _, u8, 1>::new(Copy1, Torus2d::new(8, 8), &init, seed, [seed]);
            for _ in 0..5 {
                turbo.run(3_000);
                vec.run(3_000);
                assert_eq!(
                    turbo.states_packed(),
                    vec.lane_states_packed(0),
                    "seed {seed}"
                );
            }
            let mut turbo2 =
                TurboSimulator::<_, _, u32>::new(MaxOfTwo, Cycle::new(64), &init, seed);
            let mut vec2 =
                VecSimulator::<_, _, u32, 1>::new(MaxOfTwo, Cycle::new(64), &init, seed, [seed]);
            turbo2.run(10_000);
            vec2.run(10_000);
            assert_eq!(
                turbo2.states_packed(),
                vec2.lane_states_packed(0),
                "seed {seed}"
            );
        }
    }

    /// Each lane of a multi-lane run reproduces the scalar trajectory of
    /// its own seed: `F(master, lane_seed)` is independent of grouping,
    /// lane slot, and `L`.
    #[test]
    fn lanes_reproduce_scalar_trajectories_byte_identically() {
        const L: usize = 8;
        let init: Vec<u32> = (0..60).map(|u| u % 7).collect();
        let master = 4242;
        let lane_seeds: [u64; L] = core::array::from_fn(|l| 900 + 13 * l as u64);
        let mut wide =
            VecSimulator::<_, _, u8, L>::new(Copy1, Torus2d::new(6, 10), &init, master, lane_seeds);
        wide.run(20_000);
        for (l, &s) in lane_seeds.iter().enumerate() {
            let mut scalar =
                VecSimulator::<_, _, u8, 1>::new(Copy1, Torus2d::new(6, 10), &init, master, [s]);
            scalar.run(20_000);
            assert_eq!(
                wide.lane_states_packed(l),
                scalar.lane_states_packed(0),
                "lane {l} diverged from its scalar trajectory"
            );
        }
        // Moving a seed to a different lane slot changes nothing.
        let mut swapped_seeds = lane_seeds;
        swapped_seeds.swap(2, 5);
        let mut swapped = VecSimulator::<_, _, u8, L>::new(
            Copy1,
            Torus2d::new(6, 10),
            &init,
            master,
            swapped_seeds,
        );
        swapped.run(20_000);
        assert_eq!(wide.lane_states_packed(2), swapped.lane_states_packed(5));
        assert_eq!(wide.lane_states_packed(5), swapped.lane_states_packed(2));
    }

    #[test]
    fn deterministic_and_batch_split_invariant() {
        const L: usize = 4;
        let init: Vec<u32> = (0..64).collect();
        let seeds = VecSimulator::<Copy1, Cycle, u8, L>::lane_seeds_from(9);
        let mut a = VecSimulator::<_, _, u8, L>::new(Copy1, Cycle::new(64), &init, 9, seeds);
        let mut b = VecSimulator::<_, _, u8, L>::new(Copy1, Cycle::new(64), &init, 9, seeds);
        a.run(10_000);
        b.run(3_000);
        b.run(7_000); // different batch split, same step keys
        assert_eq!(a.states_words(), b.states_words());
        let mut c = VecSimulator::<_, _, u8, L>::from_seed(Copy1, Cycle::new(64), &init, 10);
        c.run(10_000);
        assert_ne!(a.states_words(), c.states_words());
    }

    #[test]
    fn lanes_with_distinct_seeds_diverge() {
        const L: usize = 4;
        let init: Vec<u32> = (0..32).collect();
        let mut sim = VecSimulator::<_, _, u32, L>::from_seed(Copy1, Complete::new(32), &init, 5);
        sim.run(5_000);
        // With overwhelming probability at least one pair of lanes has
        // diverged after 5k voter steps on distinct partner streams.
        let distinct = (0..L)
            .map(|l| sim.lane_states_packed(l))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 1,
            "all lanes produced identical trajectories"
        );
    }

    #[test]
    fn accessors_and_mutation_surface() {
        const L: usize = 3;
        let init: Vec<u32> = vec![5, 6, 7];
        let mut sim = VecSimulator::<_, _, u32, L>::from_seed(Copy1, Complete::new(3), &init, 1);
        assert_eq!(sim.len(), 3);
        assert_eq!(sim.lanes(), L);
        assert!(!sim.is_empty());
        assert_eq!(sim.master_seed(), 1);
        assert_eq!(sim.lane_seeds()[0], 1);
        assert_eq!(sim.state(2), 7);
        sim.set_state(2, &9);
        for l in 0..L {
            assert_eq!(sim.lane_states_packed(l), vec![5, 6, 9], "lane {l}");
        }
        assert_eq!(sim.lane_population(0).states(), &[5, 6, 9]);
        sim.push_packed_agent(4);
        assert_eq!(sim.len(), 4);
        assert_eq!(sim.topology().len(), 4);
        assert_eq!(sim.lane_states_unpacked(1), vec![5, 6, 9, 4]);
        sim.swap_remove_packed_agent(0);
        assert_eq!(sim.lane_states_packed(2), vec![4, 6, 9]);
        sim.replace_packed_states(vec![1, 2]);
        assert_eq!(sim.len(), 2);
        assert_eq!(sim.topology().len(), 2);
        assert_eq!(sim.lane_states_packed(0), vec![1, 2]);
        assert_eq!(PackedProtocol::name(sim.protocol()), "copy");
        sim.run(8);
        assert_eq!(sim.step_count(), 8);
    }

    #[test]
    fn consensus_reached_in_every_lane() {
        const L: usize = 8;
        let init: Vec<u32> = (0..32).collect();
        let mut sim = VecSimulator::<_, _, u32, L>::from_seed(Copy1, Complete::new(32), &init, 5);
        sim.run(200_000);
        for l in 0..L {
            let lane = sim.lane_states_packed(l);
            assert!(
                lane.iter().all(|&s| s == lane[0]),
                "lane {l} did not reach consensus"
            );
        }
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn rejects_size_mismatch() {
        VecSimulator::<_, _, u32, 2>::from_seed(Copy1, Cycle::new(4), &[1u32, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "overflows u8")]
    fn u8_storage_rejects_wide_states() {
        VecSimulator::<_, _, u8, 2>::from_seed(Copy1, Cycle::new(3), &[1u32, 300, 2], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_lane_out_of_range() {
        let init: Vec<u32> = vec![1, 2, 3];
        let sim = VecSimulator::<_, _, u32, 2>::from_seed(Copy1, Cycle::new(3), &init, 0);
        sim.lane_states_packed(2);
    }
}
