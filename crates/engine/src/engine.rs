//! The common contract of every simulation engine tier.
//!
//! Four fast tiers grew next to the generic [`Simulator`]
//! — packed, turbo, sharded, and the count-based dense engine in
//! `pp-dense` — each with its own ad-hoc driver API. Every workload that
//! wanted to ride a faster tier (the bench experiments, the adversary
//! suite) had to duplicate its driver loop per engine. [`Engine`] is the
//! one contract they all implement, so a workload written once runs on
//! whichever tier is fastest for it.
//!
//! # Observation currency: class counts
//!
//! The trait's bulk observable is [`class_counts`](Engine::class_counts):
//! the population tallied by **packed word** (the protocol's `u32` state
//! encoding, see [`PackedProtocol`]). Per-agent
//! engines tally their state array in `O(n)`; the dense engine *is* a
//! count vector, so its tally is `O(k)` — which is what keeps `n = 10⁸`
//! dense runs observable through the same generic driver that serves the
//! per-agent tiers. [`run_until`](Engine::run_until) and
//! [`run_observed`](Engine::run_observed) hand these counts to their
//! predicates; checkers that need per-agent resolution (fairness
//! occupancy, per-block statistics) stream through
//! [`visit_states`](Engine::visit_states) instead.
//!
//! # Structural mutation
//!
//! The adversary suite rewrites per-agent states
//! ([`set_state`](Engine::set_state) /
//! [`set_states`](Engine::set_states)) and grows or shrinks the population
//! ([`push_agent`](Engine::push_agent) /
//! [`swap_remove_agent`](Engine::swap_remove_agent)). Resizing requires
//! the topology family to have a canonical resize
//! ([`Topology::resized`]); on families
//! without one the engine panics rather than simulate on a stale edge
//! set. The dense engine exposes the same surface through a canonical
//! agent ordering (agents sorted by class), which makes index-based
//! adversarial processes — churn's uniform victim, shocks' recruit
//! sampling — distributionally exact on counts too.
//!
//! # Equivalence tiers
//!
//! The trait unifies the *API*, not the guarantee. `Simulator` and
//! `PackedSimulator` are bit-exact twins under a shared seed; the turbo,
//! sharded, and dense tiers promise the same process distribution,
//! verified by the `pp-stats` statistical-equivalence harness. See
//! EXPERIMENTS.md ("The Engine trait") for the full contract table.
//!
//! # Examples
//!
//! ```
//! use pp_engine::{Engine, PackedSimulator, Simulator};
//! use pp_graph::Complete;
//! use rand::Rng;
//!
//! /// Voter dynamics in both engine vocabularies.
//! #[derive(Debug, Clone)]
//! struct Copycat;
//!
//! impl pp_engine::Protocol for Copycat {
//!     type State = u32;
//!     fn transition(&self, _me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
//!         *observed[0]
//!     }
//!     fn name(&self) -> String {
//!         "copycat".into()
//!     }
//! }
//!
//! impl pp_engine::PackedProtocol for Copycat {
//!     type State = u32;
//!     fn pack(&self, s: &u32) -> u32 {
//!         *s
//!     }
//!     fn unpack(&self, p: u32) -> u32 {
//!         p
//!     }
//!     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
//!         observed[0]
//!     }
//!     fn name(&self) -> String {
//!         "copycat".into()
//!     }
//! }
//!
//! // One driver, any tier: the harness picks the engine at runtime.
//! let init: Vec<u32> = (0..8).collect();
//! let mut engines: Vec<Box<dyn Engine<State = u32>>> = vec![
//!     Box::new(Simulator::new(Copycat, Complete::new(8), init.clone(), 1)),
//!     Box::new(PackedSimulator::new(Copycat, Complete::new(8), &init, 1)),
//! ];
//! for e in &mut engines {
//!     e.run(100);
//!     assert_eq!(e.class_counts().iter().sum::<u64>(), 8);
//! }
//! ```

use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::{
    PackedProtocol, PackedSimulator, Protocol, ShardedSimulator, Simulator, TurboSimulator,
    TurboWord, VecSimulator,
};
use pp_graph::Topology;

/// The driver contract shared by every engine tier.
///
/// Object-safe: experiment harnesses hold `Box<dyn Engine<State = S>>`
/// and dispatch once per *run call*, so the per-interaction hot loops stay
/// fully monomorphized inside each engine.
pub trait Engine: Send {
    /// The per-agent state the engine simulates (decoded form).
    type State: Clone + std::fmt::Debug + Send + Sync;

    /// Number of agents.
    fn len(&self) -> usize;

    /// Returns `true` if there are no agents (impossible by construction;
    /// provided for API symmetry).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of time-steps executed so far.
    fn step_count(&self) -> u64;

    /// The seed the engine was created with.
    fn seed(&self) -> u64;

    /// Runs `steps` time-steps.
    fn run(&mut self, steps: u64);

    /// Tallies the population by packed word: `counts[w]` is the number of
    /// agents whose [`PackedProtocol`] encoding equals `w`. The vector is
    /// sized to the largest occupied word plus one; absent words are zero.
    ///
    /// `O(n)` for per-agent engines, `O(k)` for the count-based dense
    /// engine — predicates written against class counts therefore inherit
    /// each tier's native observation cost.
    fn class_counts(&self) -> Vec<u64>;

    /// Streams `(agent index, state)` over the population in agent order.
    ///
    /// Engines without per-agent identity (the dense engine) synthesize a
    /// canonical ordering — agents sorted by class — which is stable
    /// between mutations but **not** across time-steps; per-agent
    /// *trajectories* are only meaningful on the per-agent tiers.
    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State));

    /// Decodes the full population in agent order (allocates).
    fn snapshot(&self) -> Vec<Self::State> {
        let mut out = Vec::with_capacity(self.len());
        self.visit_states(&mut |_, s| out.push(s.clone()));
        out
    }

    /// Decoded state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    fn state(&self, u: usize) -> Self::State;

    /// Overwrites the state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    fn set_state(&mut self, u: usize, state: &Self::State);

    /// Replaces the whole population. A different length resizes the
    /// population; engines over a fixed topology family resize it via
    /// [`Topology::resized`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 states are given, or if the length changed
    /// and the topology family has no canonical resize.
    fn set_states(&mut self, states: &[Self::State]);

    /// Appends one agent in the given state, resizing the topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology family has no canonical resize.
    fn push_agent(&mut self, state: &Self::State);

    /// Removes agent `u`, moving the last agent into its slot (the
    /// classic `swap_remove`), and resizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`, the removal would leave fewer than 2
    /// agents, or the topology family has no canonical resize.
    fn swap_remove_agent(&mut self, u: usize);

    /// Display name of the topology family the engine simulates on
    /// (e.g. `complete`, `ring`, `torus-8x8`) — lets callers report *which*
    /// family rejected an operation without holding the concrete type.
    fn topology_name(&self) -> String;

    /// Whether the engine's topology family has a canonical resize
    /// ([`Topology::resized`]), i.e. whether
    /// the population-resizing mutations ([`push_agent`](Engine::push_agent),
    /// [`swap_remove_agent`](Engine::swap_remove_agent), length-changing
    /// [`set_states`](Engine::set_states)) are available. Callers that can
    /// degrade gracefully (the adversary grid, the model checker) consult
    /// this instead of catching the resize panic.
    fn supports_resize(&self) -> bool;

    /// Captures the complete simulation state as a versioned
    /// [`EngineSnapshot`]: packed population, clock, seed, and the
    /// tier-private resume words (see the [`snapshot`](crate::snapshot)
    /// module docs for each tier's layout).
    ///
    /// Takes `&mut self` because a tier may first have to advance to its
    /// nearest *quiescent point* — the sharded tier drains to the next
    /// block boundary (up to `block − 1` extra steps), where the
    /// deferred cross-shard queues are empty; every other tier captures
    /// at the current clock. Read the returned snapshot's `clock` for
    /// the actual capture point.
    ///
    /// Restoring the snapshot into a freshly built engine of the same
    /// `(tier, protocol, topology, n)` — in this process or another —
    /// continues the trajectory bit-exactly: `run(a); save; restore;
    /// run(b)` equals `run(a); run(b)` (verified for all six tiers by
    /// `tests/engine_snapshot.rs`).
    fn save_snapshot(&mut self) -> EngineSnapshot;

    /// Replaces this engine's complete simulation state with a
    /// snapshot's, resuming its trajectory from `(seed, clock)`.
    ///
    /// Fails closed: the identity header (tier, protocol, topology,
    /// population size) is validated against this engine and the payload
    /// against the tier's shape invariants (aux arity, storage width,
    /// block alignment, count conservation); on any mismatch the engine
    /// is left unchanged and the error names what disagreed. A snapshot
    /// is never partially applied.
    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError>;

    /// Runs until `pred(class_counts, step)` holds, checking every
    /// `check_every` steps (and once before the first step), for at most
    /// `max_steps` steps. Returns the step count at which the predicate
    /// first held, or `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        pred: &mut dyn FnMut(&[u64], u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step_count() + max_steps;
        if pred(&self.class_counts(), self.step_count()) {
            return Some(self.step_count());
        }
        while self.step_count() < deadline {
            let burst = check_every.min(deadline - self.step_count());
            self.run(burst);
            if pred(&self.class_counts(), self.step_count()) {
                return Some(self.step_count());
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, class_counts)`
    /// before the first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    fn run_observed(&mut self, steps: u64, every: u64, observer: &mut dyn FnMut(u64, &[u64])) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step_count(), &self.class_counts());
        let deadline = self.step_count() + steps;
        while self.step_count() < deadline {
            let burst = every.min(deadline - self.step_count());
            self.run(burst);
            observer(self.step_count(), &self.class_counts());
        }
    }
}

/// Tallies packed words into a counts vector sized to the largest
/// occupied word plus one.
pub(crate) fn tally_packed(words: impl Iterator<Item = u32>) -> Vec<u64> {
    let mut counts: Vec<u64> = Vec::new();
    for w in words {
        let i = w as usize;
        if i >= counts.len() {
            counts.resize(i + 1, 0);
        }
        counts[i] += 1;
    }
    counts
}

/// The panic message for resizing shocks on non-resizable families.
pub(crate) fn resize_topology<T: Topology>(topology: &T, new_len: usize) -> T {
    topology.resized(new_len).unwrap_or_else(|| {
        panic!(
            "topology family `{}` has no canonical resize; population-resizing \
             shocks need a resizable family (e.g. Complete)",
            topology.name()
        )
    })
}

impl<P, T> Engine for Simulator<P, T>
where
    P: Protocol + PackedProtocol<State = <P as Protocol>::State>,
    <P as Protocol>::State: Send + Sync,
    T: Topology,
{
    type State = <P as Protocol>::State;

    fn len(&self) -> usize {
        self.population().len()
    }

    fn step_count(&self) -> u64 {
        Simulator::step_count(self)
    }

    fn seed(&self) -> u64 {
        Simulator::seed(self)
    }

    fn run(&mut self, steps: u64) {
        Simulator::run(self, steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        let protocol = self.protocol();
        tally_packed(
            self.population()
                .states()
                .iter()
                .map(|s| PackedProtocol::pack(protocol, s)),
        )
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        for (u, s) in self.population().iter() {
            f(u, s);
        }
    }

    fn state(&self, u: usize) -> Self::State {
        self.population().state(u).clone()
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        self.population_mut().set_state(u, state.clone());
    }

    fn set_states(&mut self, states: &[Self::State]) {
        assert!(states.len() >= 2, "population needs at least 2 agents");
        if states.len() != self.population().len() {
            let topology = resize_topology(self.topology(), states.len());
            self.replace_population(states.to_vec(), topology);
        } else {
            for (u, s) in states.iter().enumerate() {
                self.population_mut().set_state(u, s.clone());
            }
        }
    }

    fn push_agent(&mut self, state: &Self::State) {
        let topology = resize_topology(self.topology(), self.population().len() + 1);
        self.population_mut().push(state.clone());
        self.set_topology(topology);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        assert!(
            self.population().len() > 2,
            "removal would leave fewer than 2 agents"
        );
        let topology = resize_topology(self.topology(), self.population().len() - 1);
        self.population_mut().swap_remove(u);
        self.set_topology(topology);
    }

    fn topology_name(&self) -> String {
        self.topology().name()
    }

    fn supports_resize(&self) -> bool {
        self.topology().resized(self.len()).is_some()
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        EngineSnapshot {
            engine: "agent".into(),
            protocol: PackedProtocol::name(self.protocol()),
            topology: self.topology().name(),
            n: self.len() as u64,
            clock: Simulator::step_count(self),
            seed: Simulator::seed(self),
            states: self
                .population()
                .states()
                .iter()
                .map(|s| PackedProtocol::pack(self.protocol(), s))
                .collect(),
            aux: self.rng_state().to_vec(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "agent",
            &PackedProtocol::name(self.protocol()),
            &self.topology().name(),
            self.len() as u64,
        )?;
        let rng_state = sequential_rng_state(snapshot)?;
        check_states_arity(snapshot, snapshot.n)?;
        for (u, &p) in snapshot.states.iter().enumerate() {
            let s = PackedProtocol::unpack(self.protocol(), p);
            self.population_mut().set_state(u, s);
        }
        self.restore_raw(snapshot.clock, snapshot.seed, rng_state);
        Ok(())
    }
}

/// Validates the shared sequential-tier aux layout: exactly the four
/// xoshiro256++ state words, not all zero.
fn sequential_rng_state(snapshot: &EngineSnapshot) -> Result<[u64; 4], SnapshotError> {
    let aux: [u64; 4] = snapshot.aux.as_slice().try_into().map_err(|_| {
        SnapshotError::BadPayload(format!(
            "sequential tier aux must be the 4 generator words, got {}",
            snapshot.aux.len()
        ))
    })?;
    if aux == [0, 0, 0, 0] {
        return Err(SnapshotError::BadPayload(
            "all-zero generator state is unreachable".into(),
        ));
    }
    Ok(aux)
}

/// Validates that the snapshot carries exactly `expected` state words.
fn check_states_arity(snapshot: &EngineSnapshot, expected: u64) -> Result<(), SnapshotError> {
    if snapshot.states.len() as u64 != expected {
        return Err(SnapshotError::BadPayload(format!(
            "expected {expected} state words, got {}",
            snapshot.states.len()
        )));
    }
    Ok(())
}

/// Validates that every packed state word fits the tier's storage width.
fn check_states_width<W: TurboWord>(snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
    if let Some(&p) = snapshot.states.iter().find(|&&p| p > W::CAPACITY) {
        return Err(SnapshotError::BadPayload(format!(
            "state word {p} overflows the tier's storage capacity {}",
            W::CAPACITY
        )));
    }
    Ok(())
}

impl<P, T> Engine for PackedSimulator<P, T>
where
    P: PackedProtocol,
    P::State: Send + Sync,
    T: Topology,
{
    type State = P::State;

    fn len(&self) -> usize {
        PackedSimulator::len(self)
    }

    fn step_count(&self) -> u64 {
        PackedSimulator::step_count(self)
    }

    fn seed(&self) -> u64 {
        PackedSimulator::seed(self)
    }

    fn run(&mut self, steps: u64) {
        PackedSimulator::run(self, steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        tally_packed(self.states_packed().iter().copied())
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        for (u, &p) in self.states_packed().iter().enumerate() {
            f(u, &self.protocol().unpack(p));
        }
    }

    fn state(&self, u: usize) -> Self::State {
        PackedSimulator::state(self, u)
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        PackedSimulator::set_state(self, u, state);
    }

    fn set_states(&mut self, states: &[Self::State]) {
        let packed: Vec<u32> = states.iter().map(|s| self.protocol().pack(s)).collect();
        self.replace_packed_states(packed);
    }

    fn push_agent(&mut self, state: &Self::State) {
        let mut packed = self.states_packed().to_vec();
        packed.push(self.protocol().pack(state));
        self.replace_packed_states(packed);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        let mut packed = self.states_packed().to_vec();
        assert!(packed.len() > 2, "removal would leave fewer than 2 agents");
        packed.swap_remove(u);
        self.replace_packed_states(packed);
    }

    fn topology_name(&self) -> String {
        self.topology().name()
    }

    fn supports_resize(&self) -> bool {
        self.topology().resized(self.len()).is_some()
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        EngineSnapshot {
            engine: "packed".into(),
            protocol: self.protocol().name(),
            topology: self.topology().name(),
            n: self.len() as u64,
            clock: PackedSimulator::step_count(self),
            seed: PackedSimulator::seed(self),
            states: self.states_packed().to_vec(),
            aux: self.rng_state().to_vec(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "packed",
            &self.protocol().name(),
            &self.topology().name(),
            self.len() as u64,
        )?;
        let rng_state = sequential_rng_state(snapshot)?;
        check_states_arity(snapshot, snapshot.n)?;
        self.replace_packed_states(snapshot.states.clone());
        self.restore_raw(snapshot.clock, snapshot.seed, rng_state);
        Ok(())
    }
}

impl<P, T, W> Engine for TurboSimulator<P, T, W>
where
    P: PackedProtocol,
    P::State: Send + Sync,
    T: Topology,
    W: TurboWord,
{
    type State = P::State;

    fn len(&self) -> usize {
        TurboSimulator::len(self)
    }

    fn step_count(&self) -> u64 {
        TurboSimulator::step_count(self)
    }

    fn seed(&self) -> u64 {
        TurboSimulator::seed(self)
    }

    fn run(&mut self, steps: u64) {
        TurboSimulator::run(self, steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        tally_packed(self.states_words().iter().map(|w| w.widen()))
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        for (u, w) in self.states_words().iter().enumerate() {
            f(u, &self.protocol().unpack(w.widen()));
        }
    }

    fn state(&self, u: usize) -> Self::State {
        TurboSimulator::state(self, u)
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        TurboSimulator::set_state(self, u, state);
    }

    fn set_states(&mut self, states: &[Self::State]) {
        let packed: Vec<u32> = states.iter().map(|s| self.protocol().pack(s)).collect();
        self.replace_packed_states(packed);
    }

    fn push_agent(&mut self, state: &Self::State) {
        let mut packed = self.states_packed();
        packed.push(self.protocol().pack(state));
        self.replace_packed_states(packed);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        let mut packed = self.states_packed();
        assert!(packed.len() > 2, "removal would leave fewer than 2 agents");
        packed.swap_remove(u);
        self.replace_packed_states(packed);
    }

    fn topology_name(&self) -> String {
        self.topology().name()
    }

    fn supports_resize(&self) -> bool {
        self.topology().resized(self.len()).is_some()
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        EngineSnapshot {
            engine: "turbo".into(),
            protocol: self.protocol().name(),
            topology: self.topology().name(),
            n: self.len() as u64,
            clock: TurboSimulator::step_count(self),
            seed: TurboSimulator::seed(self),
            states: TurboSimulator::states_packed(self),
            // The whole stream is keyed by (seed, step): no private words.
            aux: Vec::new(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "turbo",
            &self.protocol().name(),
            &self.topology().name(),
            self.len() as u64,
        )?;
        if !snapshot.aux.is_empty() {
            return Err(SnapshotError::BadPayload(format!(
                "turbo tier carries no aux words, got {}",
                snapshot.aux.len()
            )));
        }
        check_states_arity(snapshot, snapshot.n)?;
        check_states_width::<W>(snapshot)?;
        self.replace_packed_states(snapshot.states.clone());
        self.restore_raw(snapshot.clock, snapshot.seed);
        Ok(())
    }
}

impl<P, T, W> Engine for ShardedSimulator<P, T, W>
where
    P: PackedProtocol,
    P::State: Send + Sync,
    T: Topology,
    W: TurboWord,
{
    type State = P::State;

    fn len(&self) -> usize {
        ShardedSimulator::len(self)
    }

    fn step_count(&self) -> u64 {
        ShardedSimulator::step_count(self)
    }

    fn seed(&self) -> u64 {
        ShardedSimulator::seed(self)
    }

    fn run(&mut self, steps: u64) {
        ShardedSimulator::run(self, steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        tally_packed(self.states_packed().into_iter())
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        for (u, p) in self.states_packed().into_iter().enumerate() {
            f(u, &self.protocol().unpack(p));
        }
    }

    fn state(&self, u: usize) -> Self::State {
        ShardedSimulator::state(self, u)
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        ShardedSimulator::set_state(self, u, state);
    }

    fn set_states(&mut self, states: &[Self::State]) {
        let packed: Vec<u32> = states.iter().map(|s| self.protocol().pack(s)).collect();
        self.replace_packed_states(packed);
    }

    fn push_agent(&mut self, state: &Self::State) {
        let mut packed = self.states_packed();
        packed.push(self.protocol().pack(state));
        self.replace_packed_states(packed);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        let mut packed = self.states_packed();
        assert!(packed.len() > 2, "removal would leave fewer than 2 agents");
        packed.swap_remove(u);
        self.replace_packed_states(packed);
    }

    fn topology_name(&self) -> String {
        self.topology().name()
    }

    fn supports_resize(&self) -> bool {
        self.topology().resized(self.len()).is_some()
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        // Drain to the block boundary first: it is the tier's quiescent
        // point (deferred cross-shard queues empty, per-shard streams
        // re-keyed fresh per block), so `(states, clock, seed, layout)`
        // is the complete state there — and only there.
        let clock = self.drain_to_block_boundary();
        EngineSnapshot {
            engine: "sharded".into(),
            protocol: self.protocol().name(),
            topology: self.topology().name(),
            n: self.len() as u64,
            clock,
            seed: ShardedSimulator::seed(self),
            states: ShardedSimulator::states_packed(self),
            // The layout and read mode are part of the trajectory: a
            // restore on a machine with a different core count must not
            // re-derive them.
            aux: vec![
                self.partition().shards() as u64,
                self.block(),
                self.read_mode().aux_word(),
            ],
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "sharded",
            &self.protocol().name(),
            &self.topology().name(),
            self.len() as u64,
        )?;
        let [shards, block, mode_word]: [u64; 3] =
            snapshot.aux.as_slice().try_into().map_err(|_| {
                SnapshotError::BadPayload(format!(
                    "sharded tier aux must be [shards, block, read_mode], got {} words",
                    snapshot.aux.len()
                ))
            })?;
        if shards == 0 || shards > snapshot.n {
            return Err(SnapshotError::BadPayload(format!(
                "shard count {shards} out of range for {} agents",
                snapshot.n
            )));
        }
        if block == 0 || block > u32::MAX as u64 {
            return Err(SnapshotError::BadPayload(format!(
                "block length {block} out of range"
            )));
        }
        let read_mode = crate::sharded::ReadMode::from_aux_word(mode_word).ok_or_else(|| {
            SnapshotError::BadPayload(format!(
                "unknown sharded read-mode code {mode_word} (expected 0 = defer, 1 = snapshot)"
            ))
        })?;
        if !snapshot.clock.is_multiple_of(block) {
            return Err(SnapshotError::BadPayload(format!(
                "clock {} is not on the {block}-step block grid; sharded \
                 snapshots are only taken at block boundaries",
                snapshot.clock
            )));
        }
        check_states_arity(snapshot, snapshot.n)?;
        check_states_width::<W>(snapshot)?;
        self.restore_raw(
            snapshot.states.clone(),
            snapshot.clock,
            snapshot.seed,
            shards as usize,
            block,
            read_mode,
        );
        Ok(())
    }
}

/// The ensemble engine on the Engine surface: **lane 0 is the observed
/// replica** (class counts, snapshots, per-agent reads), while structural
/// mutations — set/replace/push/remove — apply to **every lane**, keeping
/// the lanes exchangeable replicas of the same mutated process. Replicas
/// re-diverge through their per-lane streams after a bulk rewrite.
impl<P, T, W, const L: usize> Engine for VecSimulator<P, T, W, L>
where
    P: PackedProtocol,
    P::State: Send + Sync,
    T: Topology,
    W: TurboWord,
{
    type State = P::State;

    fn len(&self) -> usize {
        VecSimulator::len(self)
    }

    fn step_count(&self) -> u64 {
        VecSimulator::step_count(self)
    }

    fn seed(&self) -> u64 {
        self.master_seed()
    }

    fn run(&mut self, steps: u64) {
        VecSimulator::run(self, steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        tally_packed(self.lane_states_packed(0).into_iter())
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        for (u, p) in self.lane_states_packed(0).into_iter().enumerate() {
            f(u, &self.protocol().unpack(p));
        }
    }

    fn state(&self, u: usize) -> Self::State {
        VecSimulator::state(self, u)
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        VecSimulator::set_state(self, u, state);
    }

    fn set_states(&mut self, states: &[Self::State]) {
        let packed: Vec<u32> = states.iter().map(|s| self.protocol().pack(s)).collect();
        self.replace_packed_states(packed);
    }

    fn push_agent(&mut self, state: &Self::State) {
        let packed = self.protocol().pack(state);
        self.push_packed_agent(packed);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        self.swap_remove_packed_agent(u);
    }

    fn topology_name(&self) -> String {
        self.topology().name()
    }

    fn supports_resize(&self) -> bool {
        self.topology().resized(self.len()).is_some()
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        EngineSnapshot {
            engine: "vec".into(),
            protocol: self.protocol().name(),
            topology: self.topology().name(),
            n: self.len() as u64,
            clock: VecSimulator::step_count(self),
            seed: self.master_seed(),
            // All lanes, lane-major: the Engine surface observes lane 0
            // but the ensemble's state is every replica.
            states: self.states_words().iter().map(|w| w.widen()).collect(),
            aux: std::iter::once(L as u64)
                .chain(self.lane_seeds().iter().copied())
                .collect(),
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "vec",
            &self.protocol().name(),
            &self.topology().name(),
            self.len() as u64,
        )?;
        if snapshot.aux.len() != 1 + L || snapshot.aux[0] != L as u64 {
            return Err(SnapshotError::BadPayload(format!(
                "vec tier aux must be [L, lane_seeds…] with L = {L}, got {:?}",
                snapshot.aux.first()
            )));
        }
        check_states_arity(snapshot, snapshot.n * L as u64)?;
        check_states_width::<W>(snapshot)?;
        let mut lane_seeds = [0u64; L];
        lane_seeds.copy_from_slice(&snapshot.aux[1..]);
        self.restore_raw(
            snapshot.states.clone(),
            snapshot.clock,
            snapshot.seed,
            lane_seeds,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{Complete, Cycle};
    use rand::Rng;

    /// Voter dynamics in both engine vocabularies.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl Protocol for Copy1 {
        type State = u32;

        fn transition(&self, _me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
            *observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: rand::Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    fn engines(n: usize, seed: u64) -> Vec<(&'static str, Box<dyn Engine<State = u32>>)> {
        let init: Vec<u32> = (0..n as u32).collect();
        vec![
            (
                "generic",
                Box::new(Simulator::new(Copy1, Complete::new(n), init.clone(), seed)),
            ),
            (
                "packed",
                Box::new(PackedSimulator::new(Copy1, Complete::new(n), &init, seed)),
            ),
            (
                "turbo",
                Box::new(TurboSimulator::<_, _, u32>::new(
                    Copy1,
                    Complete::new(n),
                    &init,
                    seed,
                )),
            ),
            (
                "sharded",
                Box::new(ShardedSimulator::<_, _, u32>::new(
                    Copy1,
                    Complete::new(n),
                    &init,
                    seed,
                )),
            ),
            (
                "vec",
                Box::new(VecSimulator::<_, _, u32, 4>::from_seed(
                    Copy1,
                    Complete::new(n),
                    &init,
                    seed,
                )),
            ),
        ]
    }

    #[test]
    fn class_counts_and_snapshot_agree_across_tiers() {
        for (name, e) in engines(16, 3) {
            assert_eq!(e.len(), 16, "{name}");
            assert_eq!(e.snapshot(), (0..16).collect::<Vec<u32>>(), "{name}");
            let counts = e.class_counts();
            assert_eq!(counts.len(), 16, "{name}");
            assert!(counts.iter().all(|&c| c == 1), "{name}: {counts:?}");
        }
    }

    #[test]
    fn mutation_surface_is_uniform() {
        for (name, mut e) in engines(8, 5) {
            e.set_state(3, &99);
            assert_eq!(e.state(3), 99, "{name}");
            e.push_agent(&7);
            assert_eq!(e.len(), 9, "{name}");
            assert_eq!(e.state(8), 7, "{name}");
            e.swap_remove_agent(0);
            assert_eq!(e.len(), 8, "{name}");
            // swap_remove moves the last agent (state 7) into slot 0.
            assert_eq!(e.state(0), 7, "{name}");
            let fresh: Vec<u32> = (10..16).collect();
            e.set_states(&fresh);
            assert_eq!(e.len(), 6, "{name}");
            assert_eq!(e.snapshot(), fresh, "{name}");
        }
    }

    #[test]
    fn run_until_and_observed_through_the_trait() {
        for (name, mut e) in engines(8, 7) {
            let mut seen = Vec::new();
            e.run_observed(10, 4, &mut |t, counts| {
                seen.push(t);
                assert_eq!(counts.iter().sum::<u64>(), 8, "{name}");
            });
            assert_eq!(seen, vec![0, 4, 8, 10], "{name}");
            let hit = e.run_until(400_000, 64, &mut |counts, _| counts.contains(&8));
            assert!(hit.is_some(), "{name}: voter consensus not reached");
        }
    }

    #[test]
    #[should_panic(expected = "no canonical resize")]
    fn resize_on_fixed_family_panics() {
        let init: Vec<u32> = (0..8).collect();
        let csr = pp_graph::Csr::from_topology(&Cycle::new(8));
        let mut e = PackedSimulator::new(Copy1, csr, &init, 1);
        Engine::push_agent(&mut e, &0);
    }
}
