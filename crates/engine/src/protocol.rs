//! The protocol abstraction.

use rand::Rng;

/// A population protocol's local transition rule.
///
/// At every time-step the engine schedules one agent `u`, draws
/// [`observations`](Protocol::observations) random interaction partners of
/// `u` from the topology, and replaces `u`'s state with
/// [`transition(me, observed, rng)`](Protocol::transition). **Only the
/// scheduled agent changes state**, matching the model of the paper (§1.2):
/// the observed agents are read-only. This asymmetric ("one-way") model is
/// what makes the sustainability argument work — the last dark agent of a
/// colour can never be erased by somebody else.
///
/// Implementations should be cheap to call: the engine invokes `transition`
/// once per time-step, and experiments run `Θ(w² n log n)` steps.
///
/// The trait is object-safe; sweeps may store `Box<dyn Protocol<State = S>>`.
///
/// # Examples
///
/// ```
/// use pp_engine::Protocol;
/// use rand::Rng;
///
/// /// Agents hold a bit and copy the majority of two observed agents.
/// #[derive(Debug)]
/// struct TwoSampleMajority;
///
/// impl Protocol for TwoSampleMajority {
///     type State = bool;
///
///     fn observations(&self) -> usize {
///         2
///     }
///
///     fn transition(&self, me: &bool, observed: &[&bool], _rng: &mut dyn Rng) -> bool {
///         let ones = observed.iter().filter(|&&&b| b).count() + usize::from(*me);
///         ones >= 2
///     }
///
///     fn name(&self) -> String {
///         "two-sample-majority".into()
///     }
/// }
/// ```
pub trait Protocol {
    /// Per-agent state. Cloned on writes only; observation passes references.
    type State: Clone + std::fmt::Debug;

    /// Number of partners the scheduled agent observes per activation.
    ///
    /// `1` for pairwise protocols (the paper's model); 2-Choices and
    /// 3-Majority use `2`. Partners are drawn independently and uniformly
    /// from the scheduled agent's neighbours, so for multi-sample protocols
    /// the same partner may be observed twice (the standard convention).
    fn observations(&self) -> usize {
        1
    }

    /// Computes the scheduled agent's next state.
    ///
    /// `observed` has exactly [`observations`](Protocol::observations)
    /// entries. The returned state replaces `me`; returning `me.clone()`
    /// encodes "no change".
    fn transition(
        &self,
        me: &Self::State,
        observed: &[&Self::State],
        rng: &mut dyn Rng,
    ) -> Self::State;

    /// Short protocol name for experiment tables (e.g. `diversification`).
    fn name(&self) -> String;
}

impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;

    fn observations(&self) -> usize {
        (**self).observations()
    }

    fn transition(
        &self,
        me: &Self::State,
        observed: &[&Self::State],
        rng: &mut dyn Rng,
    ) -> Self::State {
        (**self).transition(me, observed, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    type State = P::State;

    fn observations(&self) -> usize {
        (**self).observations()
    }

    fn transition(
        &self,
        me: &Self::State,
        observed: &[&Self::State],
        rng: &mut dyn Rng,
    ) -> Self::State {
        (**self).transition(me, observed, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct Incr;

    impl Protocol for Incr {
        type State = u32;

        fn transition(&self, me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
            me + *observed[0]
        }

        fn name(&self) -> String {
            "incr".into()
        }
    }

    #[test]
    fn default_observations_is_one() {
        assert_eq!(Incr.observations(), 1);
    }

    #[test]
    fn blanket_impls_delegate() {
        let boxed: Box<dyn Protocol<State = u32>> = Box::new(Incr);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(boxed.transition(&1, &[&2], &mut rng), 3);
        assert_eq!(boxed.name(), "incr");
        let by_ref = &Incr;
        assert_eq!(by_ref.transition(&1, &[&2], &mut rng), 3);
        assert_eq!(by_ref.observations(), 1);
    }
}
