//! Multi-job, multi-seed sweep scheduling.
//!
//! The topology experiments run a grid of (job × seed) simulations whose
//! costs differ wildly — a cycle run mixes orders of magnitude slower than
//! a complete-graph run at equal budget. [`sweep_grid`] flattens the grid
//! into one shared work-stealing pool (built on
//! [`replicate`](crate::replicate()), which claims work by atomic index), so
//! no thread idles behind an unlucky contiguous chunk of slow jobs.

use crate::replicate;

/// Runs `f(job, seed)` for every pair in `jobs × seeds` through one shared
/// work-stealing pool and returns `grid[job][seed_index]`.
///
/// `f` must be deterministic given `(job, seed)` for results to be
/// reproducible; the grid order is fixed regardless of which thread ran
/// which cell.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep_grid;
///
/// let grid = sweep_grid(3, &[10, 20], |job, seed| job as u64 * seed);
/// assert_eq!(grid, vec![vec![0, 0], vec![10, 20], vec![20, 40]]);
/// ```
///
/// # Panics
///
/// Panics if `jobs * seeds.len()` overflows `usize`.
pub fn sweep_grid<R, F>(jobs: usize, seeds: &[u64], f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    if jobs == 0 || seeds.is_empty() {
        return (0..jobs).map(|_| Vec::new()).collect();
    }
    let total = jobs
        .checked_mul(seeds.len())
        .expect("sweep grid size overflows usize");
    let flat = replicate(0..total as u64, |idx| {
        let idx = idx as usize;
        f(idx / seeds.len(), seeds[idx % seeds.len()])
    });
    let mut grid: Vec<Vec<R>> = Vec::with_capacity(jobs);
    let mut it = flat.into_iter();
    for _ in 0..jobs {
        grid.push(it.by_ref().take(seeds.len()).collect());
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let grid = sweep_grid(4, &[1, 2, 3], |job, seed| (job, seed));
        assert_eq!(grid.len(), 4);
        for (j, row) in grid.iter().enumerate() {
            assert_eq!(row, &[(j, 1), (j, 2), (j, 3)]);
        }
    }

    #[test]
    fn empty_inputs() {
        let grid: Vec<Vec<u64>> = sweep_grid(0, &[1], |_, s| s);
        assert!(grid.is_empty());
        let grid: Vec<Vec<u64>> = sweep_grid(3, &[], |_, s| s);
        assert_eq!(grid, vec![Vec::<u64>::new(); 3]);
    }

    #[test]
    fn single_cell() {
        assert_eq!(sweep_grid(1, &[7], |j, s| j as u64 + s), vec![vec![7]]);
    }
}
