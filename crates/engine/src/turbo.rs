//! The counter-based relaxed-equivalence turbo engine.
//!
//! [`PackedSimulator`](crate::PackedSimulator) already removes every
//! per-interaction indirection, but its promise of **bit-exact** trajectory
//! equivalence with the generic engine pins it to one sequential xoshiro
//! stream: draw `t + 1` cannot begin before draw `t` retires, so the RNG's
//! serial latency — not arithmetic throughput — caps the step rate
//! (ROADMAP "Per-step latency ceiling").
//!
//! [`TurboSimulator`] trades draw-for-draw identity for **statistical
//! equivalence**, the way counter-based RNGs are used in large-scale
//! parallel simulation. Each time-step `t` owns fixed positions of a
//! SplitMix64 Weyl walk (`splitmix64(base + position · GOLDEN)`), so any
//! batch of future steps' scheduling and partner draws is dependency-free
//! straight-line arithmetic the CPU pipelines across steps while earlier
//! steps' state loads are still in flight. The
//! relaxation also removes the costs the exact engines cannot avoid on
//! their serial stream — Lemire rejection becomes multiply-shift sampling
//! (bias `O(n/2⁶⁴)`, forever below statistical resolution), partner
//! draws become branch-free bit-field selections
//! ([`Topology::sample_partner_turbo`]), and probabilistic transitions
//! compare a per-step entropy word against an integer threshold instead
//! of conditionally drawing. Per-step randomness stays uniform (to the
//! stated biases) and independent across steps, so the simulated process
//! is the *same Markov chain* as the exact engines' — verified
//! distributionally by the `pp-stats` equivalence harness rather than by
//! trajectory comparison.
//!
//! The state array is generic over [`TurboWord`]: `u32` matches the packed
//! engine, while `u8` quarters the footprint for protocols whose packed
//! words fit a byte (Diversification with `k ≤ 127` colours), keeping
//! `n = 10⁶` populations cache-resident.
//!
//! Two equivalence tiers now exist side by side:
//!
//! | tier | engines | guarantee | verified by |
//! |------|---------|-----------|-------------|
//! | bit-exact | `Simulator` ↔ `PackedSimulator` | identical trajectory per seed | shared-seed equality tests |
//! | statistical | `PackedSimulator` ↔ `TurboSimulator`, `DenseSimulator` | identical process distribution | `pp_stats::equivalence` harness |

use crate::packed::MAX_PACKED_OBSERVATIONS;
use crate::{PackedProtocol, Population};
use pp_graph::Topology;
use rand::rngs::{splitmix64, CounterRng, GOLDEN};

/// A state word the turbo engine can store its SoA array in.
///
/// [`PackedProtocol`] speaks `u32`; a `TurboWord` is the narrower storage
/// type the engine converts through on load/store. `u8` quarters the
/// state-array footprint when every reachable packed word fits a byte —
/// for Diversification's `colour << 1 | shade` encoding that is `k ≤ 127`
/// colours (see [`fits_in`](TurboWord::fits_in)).
///
/// The bitwise supertraits and mask helpers exist for
/// [`PackedProtocol::transition_vec`]
/// overrides, which run their mask arithmetic directly in the storage
/// width: at `W = u8` that packs 32 replica lanes into one 32-byte
/// vector register instead of four, and the engine's load/store loops
/// move rows verbatim with no widen/narrow pass.
pub trait TurboWord:
    Copy
    + Send
    + Sync
    + std::fmt::Debug
    + PartialEq
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
    + 'static
{
    /// Largest packed value this word can hold.
    const CAPACITY: u32;

    /// The all-zeros word.
    const ZERO: Self;

    /// The word holding packed value 1 (the shade/parity bit).
    const ONE: Self;

    /// Narrows a packed word for storage.
    ///
    /// # Panics
    ///
    /// Panics if `p` exceeds [`CAPACITY`](TurboWord::CAPACITY) — a protocol
    /// whose transition emits states outside the declared alphabet must not
    /// silently truncate them.
    fn narrow(p: u32) -> Self;

    /// Widens a stored word back to the packed form.
    fn widen(self) -> u32;

    /// Two's-complement negation: turns a 0/1 word into an all-zeros /
    /// all-ones select mask for branch-free transition arithmetic.
    fn wrapping_neg(self) -> Self;

    /// `1` if `b` else `0`, as a storage word.
    fn from_bool(b: bool) -> Self;

    /// Whether every packed word in `0..=max_packed` is storable.
    fn fits_in(max_packed: u32) -> bool {
        max_packed <= Self::CAPACITY
    }
}

impl TurboWord for u32 {
    const CAPACITY: u32 = u32::MAX;
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn narrow(p: u32) -> Self {
        p
    }

    #[inline(always)]
    fn widen(self) -> u32 {
        self
    }

    #[inline(always)]
    fn wrapping_neg(self) -> Self {
        u32::wrapping_neg(self)
    }

    #[inline(always)]
    fn from_bool(b: bool) -> Self {
        u32::from(b)
    }
}

impl TurboWord for u8 {
    const CAPACITY: u32 = u8::MAX as u32;
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn narrow(p: u32) -> Self {
        // Release builds must not silently truncate either: the check is
        // one perfectly-predicted compare against an immediate.
        assert!(p <= Self::CAPACITY, "packed word {p} overflows u8 storage");
        p as u8
    }

    #[inline(always)]
    fn widen(self) -> u32 {
        self as u32
    }

    #[inline(always)]
    fn wrapping_neg(self) -> Self {
        u8::wrapping_neg(self)
    }

    #[inline(always)]
    fn from_bool(b: bool) -> Self {
        u8::from(b)
    }
}

/// The counter-based batch-stepping simulator.
///
/// Same scheduling model as [`PackedSimulator`](crate::PackedSimulator) —
/// per time-step, a uniform agent observes uniform neighbour(s) and
/// transitions — but the randomness of step `t` comes from fixed,
/// independently computable positions of a seeded SplitMix64 Weyl walk
/// instead of one sequential generator, so the per-step index arithmetic
/// of many future steps pipelines with no loop-carried RNG dependency
/// while the state array catches up. Trajectories therefore differ
/// from the exact engines under a shared seed, while the process
/// distribution is identical; the `pp-stats` statistical-equivalence
/// harness is the contract test.
///
/// # Examples
///
/// ```
/// use pp_engine::{PackedProtocol, TurboSimulator};
/// use pp_graph::Cycle;
/// use rand::Rng;
///
/// #[derive(Debug)]
/// struct PackedVoter;
///
/// impl PackedProtocol for PackedVoter {
///     type State = u8;
///     fn pack(&self, s: &u8) -> u32 {
///         *s as u32
///     }
///     fn unpack(&self, p: u32) -> u8 {
///         p as u8
///     }
///     fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
///         observed[0]
///     }
///     fn name(&self) -> String {
///         "packed-voter".into()
///     }
/// }
///
/// let states: Vec<u8> = (0..8).collect();
/// // u8 storage: every packed voter state fits a byte.
/// let mut sim = TurboSimulator::<_, _, u8>::new(PackedVoter, Cycle::new(8), &states, 7);
/// sim.run(10_000);
/// assert_eq!(sim.step_count(), 10_000);
/// ```
#[derive(Debug)]
pub struct TurboSimulator<P: PackedProtocol, T: Topology, W: TurboWord = u32> {
    protocol: P,
    topology: T,
    states: Vec<W>,
    step: u64,
    seed: u64,
    /// Start of this simulator's Weyl walk (derived from the seed); step
    /// `t` owns the positions `base + (t·words + j)·GOLDEN`.
    weyl_base: u64,
}

impl<P: PackedProtocol, T: Topology, W: TurboWord> TurboSimulator<P, T, W> {
    /// Creates a simulator at time-step 0, packing the given initial
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if the number of initial states does not match the topology
    /// size, the population is smaller than 2, `P::OBSERVATIONS` is 0 or
    /// above [`MAX_PACKED_OBSERVATIONS`], the topology exceeds `u32::MAX`
    /// nodes, or any packed initial state overflows the storage word `W`.
    pub fn new(protocol: P, topology: T, initial_states: &[P::State], seed: u64) -> Self {
        let packed = initial_states.iter().map(|s| protocol.pack(s)).collect();
        Self::from_packed(protocol, topology, packed, seed)
    }

    /// Creates a simulator from already-packed (`u32`) states, narrowing
    /// them into `W` storage.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn from_packed(protocol: P, topology: T, states: Vec<u32>, seed: u64) -> Self {
        assert_eq!(
            states.len(),
            topology.len(),
            "population size {} != topology size {}",
            states.len(),
            topology.len()
        );
        assert!(states.len() >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(states.len()).is_ok(),
            "turbo batch buffers store node ids as u32; {} agents is too many",
            states.len()
        );
        assert!(
            (1..=MAX_PACKED_OBSERVATIONS).contains(&P::OBSERVATIONS),
            "packed protocol must observe 1..={MAX_PACKED_OBSERVATIONS} agents, got {}",
            P::OBSERVATIONS
        );
        TurboSimulator {
            protocol,
            topology,
            states: states.into_iter().map(W::narrow).collect(),
            step: 0,
            seed,
            // Hashed, so related seeds start unrelated walks.
            weyl_base: splitmix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Uniform random words this engine derives per time-step: one for
    /// scheduling plus one per observation. The transition's `aux`
    /// entropy rides in the low 32 bits of the last partner word —
    /// partner draws consume a word's *high* bits (1–2 bits for the
    /// structured families, the top `log₂ d` for degree-`d` neighbour
    /// selection), so the fields are disjoint for the structured
    /// topologies and correlated only at `O(d/2³²)` for the rest, far
    /// below the equivalence harness's resolution.
    const WORDS_PER_STEP: u64 = 1 + P::OBSERVATIONS as u64;

    /// Runs one batch of `len` time-steps as a single fused loop.
    ///
    /// Each step's randomness is `splitmix64` evaluated at fixed positions
    /// of the simulator's Weyl walk, so there is no loop-carried RNG
    /// dependency: the CPU pipelines the index arithmetic of many future
    /// steps while earlier steps' state loads are still in flight. The
    /// relaxation also removes every rejection loop (multiply-shift
    /// scheduling, bias `n/2⁶⁴`), every partner-draw branch and divide
    /// ([`Topology::sample_partner_turbo`]), and — via `transition_turbo`
    /// overrides — the data-dependent transition branches.
    ///
    /// An earlier variant of this engine materialised 1024-step buffers of
    /// resolved indices (a separate index pass feeding an apply pass); the
    /// buffer traffic made it ~2× slower than this fused loop at equal
    /// randomness, so the batching now lives only in the *randomness
    /// structure* (independent per-step streams), not in memory.
    ///
    /// `inline(never)`: the loop is called with large `len` (call overhead
    /// is nil) and keeping it a standalone, entry-aligned symbol makes its
    /// code layout independent of the surrounding binary — inlined into
    /// large callers it was observed to land on slow-decode alignments
    /// (2–3× step-rate swings between otherwise identical builds).
    #[inline(never)]
    fn run_batch(&mut self, len: u64) {
        let m = P::OBSERVATIONS;
        // Split borrows: with the state slice, topology, and protocol in
        // *disjoint* locals, the compiler knows the per-step state store
        // cannot alias the `Vec` descriptor or the topology/protocol
        // fields, so slice pointer/length and topology constants stay in
        // registers across iterations instead of being conservatively
        // reloaded after every store (measured ~3× on the ring).
        let TurboSimulator {
            states,
            topology,
            protocol,
            weyl_base,
            step,
            ..
        } = self;
        let states = states.as_mut_slice();
        let n = states.len();
        let mut pos =
            weyl_base.wrapping_add(step.wrapping_mul(Self::WORDS_PER_STEP.wrapping_mul(GOLDEN)));
        for _ in 0..len {
            pos = pos.wrapping_add(GOLDEN);
            let x = splitmix64(pos);
            // Multiply-shift scheduling draw (bias n/2^64).
            let u = ((x as u128 * n as u128) >> 64) as usize;
            let me = states[u].widen();
            let mut observed = [0u32; MAX_PACKED_OBSERVATIONS];
            let mut last = x;
            for slot in observed.iter_mut().take(m) {
                pos = pos.wrapping_add(GOLDEN);
                last = splitmix64(pos);
                let v = topology.sample_partner_turbo(u, last);
                *slot = states[v].widen();
            }
            // Transition entropy: the unconsumed low bits of the last
            // partner word; the fallback stream for protocols drawing
            // beyond it is parked one hash away.
            let mut rng = CounterRng::from_state(last ^ GOLDEN);
            let next = protocol.transition_turbo(me, &observed[..m], last, &mut rng);
            states[u] = W::narrow(next);
        }
        self.step += len;
    }

    /// Runs `steps` time-steps.
    pub fn run(&mut self, steps: u64) {
        // Recorded per batch, not per step: one branch per `run` call.
        pp_obs::obs_count!("turbo.steps", steps);
        pp_obs::obs_count!("turbo.batches", 1);
        self.run_batch(steps);
    }

    /// Runs until `pred(states, step)` holds, checking every `check_every`
    /// steps (and once before the first step), for at most `max_steps`
    /// steps. Returns the step count at which the predicate first held, or
    /// `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        mut pred: impl FnMut(&[W], u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step + max_steps;
        if pred(&self.states, self.step) {
            return Some(self.step);
        }
        while self.step < deadline {
            let burst = check_every.min(deadline - self.step);
            self.run(burst);
            if pred(&self.states, self.step) {
                return Some(self.step);
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, states)` before
    /// the first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_observed(&mut self, steps: u64, every: u64, mut observer: impl FnMut(u64, &[W])) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step, &self.states);
        let deadline = self.step + steps;
        while self.step < deadline {
            let burst = every.min(deadline - self.step);
            self.run(burst);
            observer(self.step, &self.states);
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if there are no agents (impossible by construction,
    /// provided for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of time-steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stored state words, indexed by agent id.
    pub fn states_words(&self) -> &[W] {
        &self.states
    }

    /// The population widened back to packed `u32` form.
    pub fn states_packed(&self) -> Vec<u32> {
        self.states.iter().map(|w| w.widen()).collect()
    }

    /// Decodes the full population into generic states.
    pub fn states_unpacked(&self) -> Vec<P::State> {
        self.states
            .iter()
            .map(|w| self.protocol.unpack(w.widen()))
            .collect()
    }

    /// Decodes the population into a generic-engine [`Population`], for
    /// checkers written against the reference types.
    pub fn population(&self) -> Population<P::State> {
        Population::new(self.states_unpacked())
    }

    /// Decoded state of agent `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn state(&self, u: usize) -> P::State {
        self.protocol.unpack(self.states[u].widen())
    }

    /// Overwrites the state of agent `u` — the hook adversarial processes
    /// use to apply structural changes between time-steps.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or the packed state overflows `W`.
    pub fn set_state(&mut self, u: usize, state: &P::State) {
        self.states[u] = W::narrow(self.protocol.pack(state));
    }

    /// Replaces the whole packed population, resizing the topology (via
    /// [`Topology::resized`]) when the length changes — the bulk-rewrite
    /// path of the [`Engine`](crate::Engine) structural-mutation surface.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 states are given, a state overflows `W`, or
    /// the length changed and the topology family has no canonical resize.
    pub fn replace_packed_states(&mut self, states: Vec<u32>) {
        assert!(states.len() >= 2, "population needs at least 2 agents");
        assert!(
            u32::try_from(states.len()).is_ok(),
            "turbo batch buffers store node ids as u32; {} agents is too many",
            states.len()
        );
        if states.len() != self.states.len() {
            self.topology = crate::engine::resize_topology(&self.topology, states.len());
        }
        self.states = states.into_iter().map(W::narrow).collect();
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Rewinds the non-population resume state to a snapshot's values:
    /// the whole stream is keyed by `(seed, step)`, so clock and seed
    /// (plus the seed-derived walk base) are the entire private state.
    pub(crate) fn restore_raw(&mut self, step: u64, seed: u64) {
        self.step = step;
        self.seed = seed;
        self.weyl_base = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{Complete, Cycle, Torus2d};
    use rand::Rng;

    /// Voter dynamics over raw u32 labels.
    #[derive(Debug, Clone)]
    struct Copy1;

    impl PackedProtocol for Copy1 {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Two-sample protocol exercising the m = 2 arm.
    #[derive(Debug, Clone)]
    struct MaxOfTwo;

    impl PackedProtocol for MaxOfTwo {
        type State = u32;

        const OBSERVATIONS: usize = 2;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: Rng>(&self, me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            me.max(observed[0]).max(observed[1])
        }

        fn name(&self) -> String {
            "max2".into()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let init: Vec<u32> = (0..64).collect();
        let mut a = TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(64), &init, 9);
        let mut b = TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(64), &init, 9);
        a.run(10_000);
        b.run(3_000);
        b.run(7_000); // different batch split, same step keys
        assert_eq!(a.states_packed(), b.states_packed());
        let mut c = TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(64), &init, 10);
        c.run(10_000);
        assert_ne!(a.states_packed(), c.states_packed());
    }

    #[test]
    fn u8_storage_matches_u32_storage_exactly() {
        // Same seed ⇒ same counter streams ⇒ identical trajectories; the
        // word width is storage only.
        let init: Vec<u32> = (0..64).map(|u| u % 200).collect();
        let mut wide = TurboSimulator::<_, _, u32>::new(Copy1, Torus2d::new(8, 8), &init, 4);
        let mut narrow = TurboSimulator::<_, _, u8>::new(Copy1, Torus2d::new(8, 8), &init, 4);
        for _ in 0..5 {
            wide.run(3_000);
            narrow.run(3_000);
            assert_eq!(wide.states_packed(), narrow.states_packed());
        }
    }

    #[test]
    fn voter_on_complete_reaches_consensus() {
        let init: Vec<u32> = (0..32).collect();
        let mut sim = TurboSimulator::<_, _, u32>::new(Copy1, Complete::new(32), &init, 5);
        let hit = sim.run_until(2_000_000, 64, |states, _| {
            states.iter().all(|&s| s == states[0])
        });
        assert!(hit.is_some(), "voter consensus not reached");
    }

    #[test]
    fn max_of_two_floods_maximum() {
        let init: Vec<u32> = (0..48).collect();
        let mut sim = TurboSimulator::<_, _, u32>::new(MaxOfTwo, Torus2d::new(6, 8), &init, 2);
        let hit = sim.run_until(1_000_000, 48, |states, _| states.iter().all(|&s| s == 47));
        assert!(hit.is_some(), "maximum did not flood the torus");
    }

    #[test]
    fn observer_and_accessors() {
        let init: Vec<u32> = vec![5, 6, 7];
        let mut sim = TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(3), &init, 1);
        assert_eq!(sim.len(), 3);
        assert!(!sim.is_empty());
        assert_eq!(sim.seed(), 1);
        assert_eq!(sim.state(2), 7);
        sim.set_state(2, &9);
        assert_eq!(sim.states_words()[2], 9u32);
        assert_eq!(sim.states_packed(), vec![5, 6, 9]);
        assert_eq!(sim.population().states(), &[5, 6, 9]);
        assert_eq!(PackedProtocol::name(sim.protocol()), "copy");
        assert_eq!(sim.topology().len(), 3);
        let mut seen = Vec::new();
        sim.run_observed(10, 4, |t, _| seen.push(t));
        assert_eq!(seen, vec![0, 4, 8, 10]);
        assert_eq!(sim.step_count(), 10);
    }

    #[test]
    fn split_runs_agree_with_step_count() {
        let init: Vec<u32> = (0..16).collect();
        let mut sim = TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(16), &init, 3);
        sim.run(3 * 1024 + 17);
        assert_eq!(sim.step_count(), 3 * 1024 + 17);
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn rejects_size_mismatch() {
        TurboSimulator::<_, _, u32>::new(Copy1, Cycle::new(4), &[1u32, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "overflows u8")]
    fn u8_storage_rejects_wide_states() {
        TurboSimulator::<_, _, u8>::new(Copy1, Cycle::new(3), &[1u32, 300, 2], 0);
    }
}
