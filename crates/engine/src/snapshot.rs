//! The versioned engine snapshot surface.
//!
//! A [`EngineSnapshot`] captures everything a tier needs to continue a
//! run bit-exactly in another process: the packed population, the clock
//! (step count), the construction seed, and a small tier-private `aux`
//! word vector (documented per tier below). Together with the
//! deterministic trajectory contract — every tier is a pure function of
//! `(protocol, topology, initial states, seed)` plus its private
//! generator state — a save/restore boundary is invisible to the
//! simulation: `run(a); save; restore; run(b)` produces the same states
//! as `run(a); run(b)` on every tier (verified by
//! `tests/engine_snapshot.rs`).
//!
//! The struct is deliberately *not* a serialization format: it is the
//! in-memory exchange currency between an engine and whatever persists
//! it. The `pp-serve` crate defines the `pp-snapshot-v1` JSON document
//! (schema-checked, checksummed, unknown fields rejected) on top of it.
//!
//! # Per-tier `aux` layout
//!
//! | tier | `states` | `aux` |
//! |------|----------|-------|
//! | `agent` | packed words, agent order | xoshiro256++ state `[s0, s1, s2, s3]` |
//! | `packed` | packed words, agent order | xoshiro256++ state `[s0, s1, s2, s3]` |
//! | `turbo` | packed words, agent order | empty (stream fully keyed by `(seed, clock)`) |
//! | `sharded` | packed words, agent order | `[shards, block]` (layout is part of the trajectory) |
//! | `vec` | lane-major words, `n·L` entries | `[L, lane_seed_0, …, lane_seed_{L−1}]` |
//! | `dense` | empty | `[classes, count_0, …, count_{classes−1}, s0, s1, s2, s3, epsilon_bits]` |
//!
//! The sharded tier's [`save_snapshot`](crate::Engine::save_snapshot)
//! first **drains to the next block boundary** (runs up to `block − 1`
//! extra steps): between boundaries shards hold deferred cross-shard
//! interactions that only the boundary merge resolves, so the boundary is
//! the tier's quiescent point. The returned snapshot's `clock` reflects
//! the drain; a snapshot whose `clock` is not a block multiple is
//! rejected on restore as corrupt.

use std::fmt;

/// A point-in-time capture of one engine's complete simulation state.
///
/// Produced by [`Engine::save_snapshot`](crate::Engine::save_snapshot),
/// consumed by [`Engine::restore_snapshot`](crate::Engine::restore_snapshot).
/// The identity fields (`engine`, `protocol`, `topology`, `n`) make a
/// snapshot self-describing: restore validates all four against the
/// receiving engine and fails closed on any mismatch rather than
/// resuming a different process than the one saved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Tier tag: `agent`, `packed`, `turbo`, `sharded`, `vec`, or `dense`
    /// (the `EngineKind` names of the bench dispatch layer).
    pub engine: String,
    /// Protocol display name (e.g. `diversification`).
    pub protocol: String,
    /// Topology display name (e.g. `complete`, `torus-8x8`).
    pub topology: String,
    /// Number of agents.
    pub n: u64,
    /// Time-steps executed when the snapshot was taken.
    pub clock: u64,
    /// The construction seed — the key of every counter-based stream, so
    /// restoring it is what keeps *future* turbo/sharded/vec blocks on
    /// the saved trajectory.
    pub seed: u64,
    /// Packed per-agent words; layout is tier-specific (see module docs).
    pub states: Vec<u32>,
    /// Tier-private resume words; layout is tier-specific (see module docs).
    pub aux: Vec<u64>,
}

/// Why a snapshot could not be restored. Every variant is a fail-closed
/// rejection: the receiving engine is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was taken on a different engine tier.
    EngineMismatch {
        /// The receiving engine's tier tag.
        expected: String,
        /// The snapshot's tier tag.
        got: String,
    },
    /// The snapshot was taken under a different protocol.
    ProtocolMismatch {
        /// The receiving engine's protocol name.
        expected: String,
        /// The snapshot's protocol name.
        got: String,
    },
    /// The snapshot was taken on a different topology.
    TopologyMismatch {
        /// The receiving engine's topology display name.
        expected: String,
        /// The snapshot's topology display name.
        got: String,
    },
    /// The snapshot's population size differs from the receiving engine's.
    SizeMismatch {
        /// The receiving engine's agent count.
        expected: u64,
        /// The snapshot's agent count.
        got: u64,
    },
    /// The payload is internally inconsistent (wrong `aux` arity, state
    /// words overflowing the tier's storage width, a clock off the
    /// sharded block grid, …) — the signature of a corrupted or
    /// hand-edited snapshot.
    BadPayload(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::EngineMismatch { expected, got } => {
                write!(f, "snapshot is for engine `{got}`, not `{expected}`")
            }
            SnapshotError::ProtocolMismatch { expected, got } => {
                write!(f, "snapshot is for protocol `{got}`, not `{expected}`")
            }
            SnapshotError::TopologyMismatch { expected, got } => {
                write!(f, "snapshot is for topology `{got}`, not `{expected}`")
            }
            SnapshotError::SizeMismatch { expected, got } => {
                write!(f, "snapshot holds {got} agents, engine has {expected}")
            }
            SnapshotError::BadPayload(why) => write!(f, "corrupt snapshot payload: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl EngineSnapshot {
    /// Validates the identity header against the receiving engine.
    ///
    /// Restore implementations call this first; payload-shape checks are
    /// tier-specific and come after.
    pub fn check_identity(
        &self,
        engine: &str,
        protocol: &str,
        topology: &str,
        n: u64,
    ) -> Result<(), SnapshotError> {
        if self.engine != engine {
            return Err(SnapshotError::EngineMismatch {
                expected: engine.to_string(),
                got: self.engine.clone(),
            });
        }
        if self.protocol != protocol {
            return Err(SnapshotError::ProtocolMismatch {
                expected: protocol.to_string(),
                got: self.protocol.clone(),
            });
        }
        if self.topology != topology {
            return Err(SnapshotError::TopologyMismatch {
                expected: topology.to_string(),
                got: self.topology.clone(),
            });
        }
        if self.n != n {
            return Err(SnapshotError::SizeMismatch {
                expected: n,
                got: self.n,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> EngineSnapshot {
        EngineSnapshot {
            engine: "turbo".into(),
            protocol: "copy".into(),
            topology: "complete".into(),
            n: 8,
            clock: 100,
            seed: 7,
            states: vec![0; 8],
            aux: Vec::new(),
        }
    }

    #[test]
    fn identity_check_accepts_match_and_names_the_mismatch() {
        let s = snap();
        assert!(s.check_identity("turbo", "copy", "complete", 8).is_ok());
        assert!(matches!(
            s.check_identity("agent", "copy", "complete", 8),
            Err(SnapshotError::EngineMismatch { .. })
        ));
        assert!(matches!(
            s.check_identity("turbo", "voter", "complete", 8),
            Err(SnapshotError::ProtocolMismatch { .. })
        ));
        assert!(matches!(
            s.check_identity("turbo", "copy", "cycle", 8),
            Err(SnapshotError::TopologyMismatch { .. })
        ));
        assert!(matches!(
            s.check_identity("turbo", "copy", "complete", 9),
            Err(SnapshotError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn errors_render_the_offending_values() {
        let s = snap();
        let e = s
            .check_identity("agent", "copy", "complete", 8)
            .unwrap_err();
        assert!(e.to_string().contains("turbo") && e.to_string().contains("agent"));
        let b = SnapshotError::BadPayload("aux arity".into());
        assert!(b.to_string().contains("aux arity"));
    }
}
