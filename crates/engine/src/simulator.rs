//! The sequential uniform random scheduler.

use crate::{Population, Protocol};
use pp_graph::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Observation counts up to this bound are gathered into fixed stack
/// buffers; beyond it the engine falls back to heap allocation (no protocol
/// in the workspace observes more than 2 partners).
const STACK_OBSERVATIONS: usize = 8;

/// Drives a [`Protocol`] on a [`Population`] over a [`Topology`] with the
/// paper's scheduler: each time-step activates one uniformly random agent,
/// which observes uniformly random neighbour(s) and updates its own state.
///
/// A run is fully determined by `(protocol, topology, initial states, seed)`;
/// experiments record seeds so every reported number is reproducible.
///
/// # Examples
///
/// ```
/// use pp_engine::{Protocol, Simulator};
/// use pp_graph::Complete;
/// use rand::Rng;
///
/// #[derive(Debug)]
/// struct Noop;
/// impl Protocol for Noop {
///     type State = u8;
///     fn transition(&self, me: &u8, _observed: &[&u8], _rng: &mut dyn Rng) -> u8 {
///         *me
///     }
///     fn name(&self) -> String {
///         "noop".into()
///     }
/// }
///
/// let mut sim = Simulator::new(Noop, Complete::new(3), vec![1, 2, 3], 0);
/// sim.run(100);
/// assert_eq!(sim.step_count(), 100);
/// assert_eq!(sim.population().states(), &[1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Simulator<P: Protocol, T: Topology> {
    protocol: P,
    topology: T,
    population: Population<P::State>,
    rng: StdRng,
    step: u64,
    seed: u64,
}

impl<P: Protocol, T: Topology> Simulator<P, T> {
    /// Creates a simulator at time-step 0.
    ///
    /// # Panics
    ///
    /// Panics if the number of initial states does not match the topology
    /// size, the population is smaller than 2, or the protocol requests
    /// zero observations.
    pub fn new(protocol: P, topology: T, initial_states: Vec<P::State>, seed: u64) -> Self {
        assert_eq!(
            initial_states.len(),
            topology.len(),
            "population size {} != topology size {}",
            initial_states.len(),
            topology.len()
        );
        assert!(
            initial_states.len() >= 2,
            "population needs at least 2 agents"
        );
        assert!(
            protocol.observations() >= 1,
            "protocol must observe at least one agent"
        );
        Simulator {
            protocol,
            topology,
            population: Population::new(initial_states),
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            seed,
        }
    }

    /// Executes one time-step: schedule, observe, transition.
    pub fn step(&mut self) {
        let n = self.population.len();
        debug_assert_eq!(
            n,
            self.topology.len(),
            "population and topology sizes diverged; did an adversary forget set_topology?"
        );
        let u = self.rng.random_range(0..n);
        let m = self.protocol.observations();
        let next = match m {
            1 => {
                let v = self.topology.sample_partner(u, &mut self.rng);
                self.protocol.transition(
                    self.population.state(u),
                    &[self.population.state(v)],
                    &mut self.rng,
                )
            }
            2 => {
                let v = self.topology.sample_partner(u, &mut self.rng);
                let w = self.topology.sample_partner(u, &mut self.rng);
                self.protocol.transition(
                    self.population.state(u),
                    &[self.population.state(v), self.population.state(w)],
                    &mut self.rng,
                )
            }
            m if m <= STACK_OBSERVATIONS => {
                // Fixed stack buffers: no per-step heap allocation on the
                // multi-observation path. RNG draw order matches the former
                // Vec-collecting code exactly (all partners first).
                let mut partners = [0usize; STACK_OBSERVATIONS];
                for p in partners.iter_mut().take(m) {
                    *p = self.topology.sample_partner(u, &mut self.rng);
                }
                let me = self.population.state(u);
                let mut refs: [&P::State; STACK_OBSERVATIONS] = [me; STACK_OBSERVATIONS];
                for (r, &v) in refs.iter_mut().zip(partners.iter().take(m)) {
                    *r = self.population.state(v);
                }
                self.protocol.transition(me, &refs[..m], &mut self.rng)
            }
            _ => {
                let partners: Vec<usize> = (0..m)
                    .map(|_| self.topology.sample_partner(u, &mut self.rng))
                    .collect();
                let refs: Vec<&P::State> =
                    partners.iter().map(|&v| self.population.state(v)).collect();
                self.protocol
                    .transition(self.population.state(u), &refs, &mut self.rng)
            }
        };
        self.population.set_state(u, next);
        self.step += 1;
    }

    /// Runs `steps` time-steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until `pred(population, step)` holds, checking every
    /// `check_every` steps (and once before the first step), for at most
    /// `max_steps` steps. Returns the step count at which the predicate
    /// first held, or `None` on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        mut pred: impl FnMut(&Population<P::State>, u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step + max_steps;
        if pred(&self.population, self.step) {
            return Some(self.step);
        }
        while self.step < deadline {
            let burst = check_every.min(deadline - self.step);
            self.run(burst);
            if pred(&self.population, self.step) {
                return Some(self.step);
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, population)` before
    /// the first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_observed(
        &mut self,
        steps: u64,
        every: u64,
        mut observer: impl FnMut(u64, &Population<P::State>),
    ) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step, &self.population);
        let deadline = self.step + steps;
        while self.step < deadline {
            let burst = every.min(deadline - self.step);
            self.run(burst);
            observer(self.step, &self.population);
        }
    }

    /// Number of time-steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current population (read-only).
    pub fn population(&self) -> &Population<P::State> {
        &self.population
    }

    /// Mutable access to the population — the hook the adversary crate uses
    /// to apply structural changes between time-steps.
    ///
    /// When agents are added or removed the topology must be updated too;
    /// see [`set_topology`](Self::set_topology).
    pub fn population_mut(&mut self) -> &mut Population<P::State> {
        &mut self.population
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The interaction topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Replaces the topology (e.g. after the adversary added agents).
    ///
    /// # Panics
    ///
    /// Panics if the new topology size does not match the population.
    pub fn set_topology(&mut self, topology: T) {
        assert_eq!(
            topology.len(),
            self.population.len(),
            "new topology size {} != population size {}",
            topology.len(),
            self.population.len()
        );
        self.topology = topology;
    }

    /// Replaces population and topology together — the resize path of the
    /// [`Engine`](crate::Engine) structural-mutation surface (the two must
    /// change atomically or the size assertions fire).
    ///
    /// # Panics
    ///
    /// Panics if the sizes disagree or fewer than 2 states are given.
    pub fn replace_population(&mut self, states: Vec<P::State>, topology: T) {
        assert_eq!(
            states.len(),
            topology.len(),
            "population size {} != topology size {}",
            states.len(),
            topology.len()
        );
        assert!(states.len() >= 2, "population needs at least 2 agents");
        self.population = Population::new(states);
        self.topology = topology;
    }

    /// Consumes the simulator, returning the final population.
    pub fn into_population(self) -> Population<P::State> {
        self.population
    }

    /// The sequential generator's full state, for the snapshot surface.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rewinds (or fast-forwards) the non-population resume state — clock,
    /// seed, and generator position — to a snapshot's values. The caller
    /// (the [`Engine`](crate::Engine) restore path) has already validated
    /// the payload and replaced the population.
    pub(crate) fn restore_raw(&mut self, step: u64, seed: u64, rng_state: [u64; 4]) {
        self.step = step;
        self.seed = seed;
        self.rng = StdRng::from_state(rng_state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::Complete;
    use rand::Rng;

    /// Voter dynamics: copy the observed state.
    #[derive(Debug)]
    struct Copy1;

    impl Protocol for Copy1 {
        type State = u8;

        fn transition(&self, _me: &u8, observed: &[&u8], _rng: &mut dyn Rng) -> u8 {
            *observed[0]
        }

        fn name(&self) -> String {
            "copy".into()
        }
    }

    /// Counts how many observations arrive per activation.
    #[derive(Debug)]
    struct CountObs(usize);

    impl Protocol for CountObs {
        type State = usize;

        fn observations(&self) -> usize {
            self.0
        }

        fn transition(&self, _me: &usize, observed: &[&usize], _rng: &mut dyn Rng) -> usize {
            observed.len()
        }

        fn name(&self) -> String {
            "count-obs".into()
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mk = || {
            Simulator::new(
                Copy1,
                Complete::new(16),
                (0..16).map(|i| i as u8).collect(),
                5,
            )
        };
        let mut a = mk();
        let mut b = mk();
        a.run(500);
        b.run(500);
        assert_eq!(a.population().states(), b.population().states());
    }

    #[test]
    fn different_seed_differs() {
        let states: Vec<u8> = (0..32).map(|i| i as u8).collect();
        let mut a = Simulator::new(Copy1, Complete::new(32), states.clone(), 1);
        let mut b = Simulator::new(Copy1, Complete::new(32), states, 2);
        a.run(200);
        b.run(200);
        assert_ne!(a.population().states(), b.population().states());
    }

    #[test]
    fn observation_arity_respected() {
        // 3 and 5 hit the stack-buffer arm, 12 the heap fallback.
        for m in [1, 2, 3, 5, 12] {
            let mut sim = Simulator::new(CountObs(m), Complete::new(8), vec![0; 8], 3);
            sim.run(50);
            // Any agent that was activated now stores m.
            assert!(sim.population().states().iter().all(|&s| s == 0 || s == m));
            assert!(sim.population().states().contains(&m));
        }
    }

    #[test]
    fn run_until_finds_consensus() {
        let mut sim = Simulator::new(Copy1, Complete::new(8), vec![0, 1, 1, 1, 1, 1, 1, 1], 7);
        let hit = sim.run_until(100_000, 8, |pop, _| {
            pop.count_matching(|&s| s == pop[0]) == pop.len()
        });
        assert!(hit.is_some());
    }

    #[test]
    fn run_until_timeout_returns_none() {
        #[derive(Debug)]
        struct Never;
        impl Protocol for Never {
            type State = u8;
            fn transition(&self, me: &u8, _o: &[&u8], _rng: &mut dyn Rng) -> u8 {
                *me
            }
            fn name(&self) -> String {
                "never".into()
            }
        }
        let mut sim = Simulator::new(Never, Complete::new(4), vec![0, 1, 2, 3], 1);
        assert_eq!(sim.run_until(100, 10, |_, _| false), None);
        assert_eq!(sim.step_count(), 100);
    }

    #[test]
    fn run_observed_cadence() {
        let mut sim = Simulator::new(Copy1, Complete::new(4), vec![0, 1, 2, 3], 1);
        let mut seen = Vec::new();
        sim.run_observed(10, 4, |t, _| seen.push(t));
        assert_eq!(seen, vec![0, 4, 8, 10]);
    }

    #[test]
    fn step_counter_advances() {
        let mut sim = Simulator::new(Copy1, Complete::new(4), vec![0, 0, 0, 0], 1);
        sim.run(7);
        assert_eq!(sim.step_count(), 7);
        assert_eq!(sim.seed(), 1);
    }

    #[test]
    #[should_panic(expected = "population size")]
    fn rejects_size_mismatch() {
        Simulator::new(Copy1, Complete::new(4), vec![0u8; 3], 0);
    }
}
