//! Property-based tests for the engine: scheduler invariants that every
//! protocol run must satisfy.

use pp_engine::{Protocol, Simulator};
use pp_graph::{Complete, Cycle, Topology};
use proptest::prelude::*;
use rand::Rng;

/// A conservation-friendly protocol: agents carry tokens and the scheduled
/// agent sets its count to the observed count (Voter on integers).
#[derive(Debug)]
struct Adopt;

impl Protocol for Adopt {
    type State = u32;

    fn transition(&self, _me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
        *observed[0]
    }

    fn name(&self) -> String {
        "adopt".into()
    }
}

/// Marks agents that were ever activated.
#[derive(Debug)]
struct MarkActive;

impl Protocol for MarkActive {
    type State = bool;

    fn transition(&self, _me: &bool, _observed: &[&bool], _rng: &mut dyn Rng) -> bool {
        true
    }

    fn name(&self) -> String {
        "mark".into()
    }
}

proptest! {
    #[test]
    fn population_size_is_invariant(n in 2usize..50, steps in 0u64..2000, seed in 0u64..50) {
        let mut sim = Simulator::new(Adopt, Complete::new(n), (0..n as u32).collect(), seed);
        sim.run(steps);
        prop_assert_eq!(sim.population().len(), n);
        prop_assert_eq!(sim.step_count(), steps);
    }

    #[test]
    fn values_never_invented(n in 2usize..30, steps in 0u64..2000, seed in 0u64..50) {
        // Adopt only copies existing values, so the value set can only shrink.
        let init: Vec<u32> = (0..n as u32).collect();
        let mut sim = Simulator::new(Adopt, Complete::new(n), init.clone(), seed);
        sim.run(steps);
        for &s in sim.population().states() {
            prop_assert!(init.contains(&s));
        }
    }

    #[test]
    fn scheduler_eventually_touches_everyone(n in 2usize..20, seed in 0u64..50) {
        let mut sim = Simulator::new(MarkActive, Complete::new(n), vec![false; n], seed);
        // Coupon collector: 20 * n * ln(n) + 200 steps is astronomically safe.
        let budget = (20.0 * n as f64 * (n as f64).ln()) as u64 + 200;
        sim.run(budget);
        prop_assert!(sim.population().states().iter().all(|&b| b));
    }

    #[test]
    fn determinism_across_topologies(n in 3usize..20, steps in 0u64..500, seed in 0u64..50) {
        let run = |seed| {
            let mut sim = Simulator::new(Adopt, Cycle::new(n), (0..n as u32).collect(), seed);
            sim.run(steps);
            sim.into_population().into_states()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn cycle_runs_stay_local(seed in 0u64..20) {
        // On a cycle, value 0 can only spread one hop per adoption; after few
        // steps distant agents must still hold their original values.
        let n = 30;
        let init: Vec<u32> = (0..n as u32).collect();
        let mut sim = Simulator::new(Adopt, Cycle::new(n), init, seed);
        sim.run(3);
        // At most 3 agents changed.
        let changed = sim
            .population()
            .iter()
            .filter(|&(i, &s)| s != i as u32)
            .count();
        prop_assert!(changed <= 3);
    }
}

#[test]
fn topology_len_checked_against_population() {
    let sim = Simulator::new(Adopt, Complete::new(5), (0..5).collect(), 0);
    assert_eq!(sim.topology().len(), sim.population().len());
}

/// Satellite guarantee for the work-stealing sweep: scheduling is pure
/// plumbing. Whatever interleaving the thread pool produces, the results
/// of `sweep_grid` must be **byte-identical** to a sequential reference
/// run of the same deterministic per-cell function — here a real packed
/// simulation per (job, seed) cell, so the test exercises the exact usage
/// pattern of the topology experiments.
#[test]
fn sweep_grid_matches_sequential_reference_byte_for_byte() {
    use pp_engine::{sweep_grid, PackedProtocol, PackedSimulator};

    #[derive(Debug, Clone)]
    struct PackedAdopt;

    impl PackedProtocol for PackedAdopt {
        type State = u32;

        fn pack(&self, s: &u32) -> u32 {
            *s
        }

        fn unpack(&self, p: u32) -> u32 {
            p
        }

        fn transition<R: rand::Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }

        fn name(&self) -> String {
            "packed-adopt".into()
        }
    }

    // Heterogeneous cell costs (different sizes and step counts), so the
    // work-stealing pool genuinely scrambles completion order.
    let sizes = [24usize, 96, 48, 160];
    let seeds: Vec<u64> = (0..6).collect();
    let cell = |job: usize, seed: u64| -> Vec<u32> {
        let n = sizes[job];
        let init: Vec<u32> = (0..n as u32).collect();
        let mut sim = PackedSimulator::new(PackedAdopt, Cycle::new(n), &init, seed);
        sim.run(n as u64 * 40);
        sim.states_packed().to_vec()
    };

    let pooled = sweep_grid(sizes.len(), &seeds, cell);
    // Sequential reference: plain nested loops, no pool.
    let reference: Vec<Vec<Vec<u32>>> = (0..sizes.len())
        .map(|job| seeds.iter().map(|&s| cell(job, s)).collect())
        .collect();
    assert_eq!(
        pooled, reference,
        "work-stealing sweep diverged from the sequential reference"
    );

    // And the pooled result is itself reproducible run to run.
    assert_eq!(pooled, sweep_grid(sizes.len(), &seeds, cell));
}
