//! Property-based tests for the engine: scheduler invariants that every
//! protocol run must satisfy.

use pp_engine::{Protocol, Simulator};
use pp_graph::{Complete, Cycle, Topology};
use proptest::prelude::*;
use rand::Rng;

/// A conservation-friendly protocol: agents carry tokens and the scheduled
/// agent sets its count to the observed count (Voter on integers).
#[derive(Debug)]
struct Adopt;

impl Protocol for Adopt {
    type State = u32;

    fn transition(&self, _me: &u32, observed: &[&u32], _rng: &mut dyn Rng) -> u32 {
        *observed[0]
    }

    fn name(&self) -> String {
        "adopt".into()
    }
}

/// Marks agents that were ever activated.
#[derive(Debug)]
struct MarkActive;

impl Protocol for MarkActive {
    type State = bool;

    fn transition(&self, _me: &bool, _observed: &[&bool], _rng: &mut dyn Rng) -> bool {
        true
    }

    fn name(&self) -> String {
        "mark".into()
    }
}

proptest! {
    #[test]
    fn population_size_is_invariant(n in 2usize..50, steps in 0u64..2000, seed in 0u64..50) {
        let mut sim = Simulator::new(Adopt, Complete::new(n), (0..n as u32).collect(), seed);
        sim.run(steps);
        prop_assert_eq!(sim.population().len(), n);
        prop_assert_eq!(sim.step_count(), steps);
    }

    #[test]
    fn values_never_invented(n in 2usize..30, steps in 0u64..2000, seed in 0u64..50) {
        // Adopt only copies existing values, so the value set can only shrink.
        let init: Vec<u32> = (0..n as u32).collect();
        let mut sim = Simulator::new(Adopt, Complete::new(n), init.clone(), seed);
        sim.run(steps);
        for &s in sim.population().states() {
            prop_assert!(init.contains(&s));
        }
    }

    #[test]
    fn scheduler_eventually_touches_everyone(n in 2usize..20, seed in 0u64..50) {
        let mut sim = Simulator::new(MarkActive, Complete::new(n), vec![false; n], seed);
        // Coupon collector: 20 * n * ln(n) + 200 steps is astronomically safe.
        let budget = (20.0 * n as f64 * (n as f64).ln()) as u64 + 200;
        sim.run(budget);
        prop_assert!(sim.population().states().iter().all(|&b| b));
    }

    #[test]
    fn determinism_across_topologies(n in 3usize..20, steps in 0u64..500, seed in 0u64..50) {
        let run = |seed| {
            let mut sim = Simulator::new(Adopt, Cycle::new(n), (0..n as u32).collect(), seed);
            sim.run(steps);
            sim.into_population().into_states()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn cycle_runs_stay_local(seed in 0u64..20) {
        // On a cycle, value 0 can only spread one hop per adoption; after few
        // steps distant agents must still hold their original values.
        let n = 30;
        let init: Vec<u32> = (0..n as u32).collect();
        let mut sim = Simulator::new(Adopt, Cycle::new(n), init, seed);
        sim.run(3);
        // At most 3 agents changed.
        let changed = sim
            .population()
            .iter()
            .filter(|&(i, &s)| s != i as u32)
            .count();
        prop_assert!(changed <= 3);
    }
}

#[test]
fn topology_len_checked_against_population() {
    let sim = Simulator::new(Adopt, Complete::new(5), (0..5).collect(), 0);
    assert_eq!(sim.topology().len(), sim.population().len());
}
