//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this crate vendors the subset of the
//! proptest API the workspace's property tests use: the [`proptest!`] macro,
//! [`Strategy`] over ranges / collections / mapped values, and the
//! `prop_assert!` family. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures are reproducible;
//! there is **no shrinking** — a failing case is reported as-is.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Run-time configuration for one `proptest!` test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type the generated test body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for `v` drawn from `self`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// A strategy that re-draws until `f` accepts the value (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// A strategy built from each drawn value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy combinators for collections, under the `prop::` path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::RngExt;

        /// Sizes accepted by [`vec()`]: a fixed length, a half-open range, or
        /// an inclusive range.
        pub trait IntoSizeRange {
            /// Draws one length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        /// A strategy generating `Vec`s of values from `elem`.
        pub struct VecStrategy<S, L> {
            elem: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.len.sample_len(rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Vectors with lengths drawn from `len` and elements from `elem`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { elem, len }
        }
    }
}

/// Builds the deterministic RNG for one named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __cfg.cases.saturating_mul(20).max(1_000) {
                        panic!("proptest: too many rejected cases in {}", stringify!($name));
                    }
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    let __inputs =
                        format!(concat!("" $(, stringify!($arg), " = {:?}; ")*) $(, &$arg)*);
                    #[allow(clippy::redundant_closure_call)]
                    let __result: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        ::core::result::Result::Ok(()) => { __ran += 1; }
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs: {}",
                                __ran + 1,
                                stringify!($name),
                                msg,
                                __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Like `assert!` inside `proptest!` bodies: fails the case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Like `assert_ne!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0f64..1.0, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn map_applies(x in (0u32..5).prop_map(|v| v * 10)) {
            prop_assert_eq!(x % 10, 0);
            prop_assert!(x <= 40);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honoured(_x in 0u32..2) {
            // Runs without exhausting the attempt budget.
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        always_fails();
    }
}
