//! Regression pin for the deferred-threshold Lemire sampler.
//!
//! `uniform_below` / `random_index` defer the `(2^64 − span) mod span`
//! rejection threshold — a hardware division — until the widening
//! multiply's low half falls below `span`. The deferral is sound because
//! `threshold < span`: a low half `≥ span` can never be rejected, so the
//! accept/reject decisions (and hence outputs *and* RNG consumption) must
//! be bit-identical to the straightforward eager-threshold formulation.
//! This suite pins that claim against a reference implementation across the
//! bound edge cases where the modular arithmetic is most fragile: powers of
//! two (threshold 0), `bound = 1`, `u32::MAX`, and spans just above 2³².

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Textbook Lemire with the threshold computed eagerly, before the first
/// accept test. The gold standard the shipped sampler must match.
fn reference_lemire(span: u64, rng: &mut impl Rng) -> u64 {
    assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Counts `next_u64` calls, so tests can pin RNG *consumption* (one
/// rejected draw consumed vs skipped would silently desynchronize
/// shared-seed trajectories) in addition to outputs.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: Rng> Rng for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Replays a fixed script of raw values, panicking if over-consumed.
struct ScriptedRng {
    values: Vec<u64>,
    at: usize,
}

impl Rng for ScriptedRng {
    fn next_u64(&mut self) -> u64 {
        let v = self.values[self.at];
        self.at += 1;
        v
    }
}

/// The edge-case spans: 1, small non-powers, powers of two (threshold is
/// exactly 0), `u32::MAX` and its neighbours (the 32/64-bit seam), and
/// spans near 2⁶³ where the rejection probability is largest (~1/2).
fn edge_spans() -> Vec<u64> {
    vec![
        1,
        2,
        3,
        4,
        5,
        7,
        8,
        16,
        1 << 20,
        (1 << 20) + 1,
        u32::MAX as u64 - 1,
        u32::MAX as u64,
        u32::MAX as u64 + 1,
        u32::MAX as u64 + 2,
        (1 << 62) + 11,
        1 << 63,
        (1 << 63) + 1,
        u64::MAX - 1,
        u64::MAX,
    ]
}

#[test]
fn deferred_threshold_matches_reference_outputs_and_consumption() {
    for span in edge_spans() {
        let mut shipped = CountingRng {
            inner: StdRng::seed_from_u64(0xA11CE ^ span),
            draws: 0,
        };
        let mut reference = CountingRng {
            inner: StdRng::seed_from_u64(0xA11CE ^ span),
            draws: 0,
        };
        // 2 000 draws gives spans near 2⁶³ (reject probability ≈ 1/2)
        // ~1000 expected rejections, exercising the deferred branch hard.
        for i in 0..2_000 {
            let got = shipped.random_range(0..span);
            let want = reference_lemire(span, &mut reference);
            assert_eq!(got, want, "span {span}, draw {i}: output diverged");
            assert_eq!(
                shipped.draws, reference.draws,
                "span {span}, draw {i}: RNG consumption diverged"
            );
            assert!(got < span, "span {span}: out-of-range sample {got}");
        }
    }
}

#[test]
fn random_index_pins_to_reference_at_usize_edges() {
    // The monomorphized fast-path sampler must make the same decisions.
    for span in [1usize, 2, 3, 4, 8, 1 << 16, u32::MAX as usize] {
        let mut shipped = CountingRng {
            inner: StdRng::seed_from_u64(0xB0B ^ span as u64),
            draws: 0,
        };
        let mut reference = CountingRng {
            inner: StdRng::seed_from_u64(0xB0B ^ span as u64),
            draws: 0,
        };
        for i in 0..1_000 {
            let got = shipped.inner.random_index(span);
            shipped.draws = 0; // random_index talks to inner directly
            let want = reference_lemire(span as u64, &mut reference) as usize;
            assert_eq!(got, want, "span {span}, draw {i}");
        }
    }
}

#[test]
fn bound_one_never_rejects_and_returns_zero() {
    // span = 1 ⇒ threshold = 0 ⇒ every draw accepts with value 0, and
    // exactly one u64 is consumed per sample.
    let mut rng = CountingRng {
        inner: StdRng::seed_from_u64(5),
        draws: 0,
    };
    for i in 1..=500u64 {
        assert_eq!(rng.random_range(0..1u64), 0);
        assert_eq!(rng.draws, i, "bound 1 must consume exactly one draw");
    }
}

#[test]
fn power_of_two_bounds_never_reject() {
    // Powers of two divide 2⁶⁴ exactly: threshold = 0, so one draw per
    // sample no matter what the raw value is.
    for shift in [1u32, 2, 8, 16, 31, 32, 33, 62, 63] {
        let span = 1u64 << shift;
        let mut rng = CountingRng {
            inner: StdRng::seed_from_u64(shift as u64),
            draws: 0,
        };
        for i in 1..=300u64 {
            let x = rng.random_range(0..span);
            assert!(x < span);
            assert_eq!(rng.draws, i, "2^{shift} must never reject");
        }
    }
}

#[test]
fn scripted_rejection_path_is_taken_exactly_when_reference_rejects() {
    // span = 2⁶³ + 1 ⇒ threshold = (2⁶⁴ − span) mod span = 2⁶³ − 1.
    // A raw draw x maps to low half (x·span) mod 2⁶⁴ = (x·2⁶³ + x) mod 2⁶⁴.
    // x = 1 gives low half 2⁶³ + 1 ≥ span − 1… pick values by construction:
    let span: u64 = (1 << 63) + 1;
    let threshold = span.wrapping_neg() % span;
    assert_eq!(threshold, (1 << 63) - 1, "edge-case arithmetic changed");
    // Find one rejecting and one accepting raw value.
    let low_half = |x: u64| (x as u128 * span as u128) as u64;
    let rejecting = (0..200u64)
        .find(|&x| low_half(x) < threshold)
        .expect("a rejecting raw value below 200");
    let accepting = (0..200u64)
        .find(|&x| low_half(x) >= threshold)
        .expect("an accepting raw value below 200");
    // Shipped sampler must consume both rejected draws, then accept.
    let mut scripted = ScriptedRng {
        values: vec![rejecting, rejecting, accepting],
        at: 0,
    };
    let got = scripted.random_range(0..span);
    assert_eq!(scripted.at, 3, "must consume exactly the two rejections");
    assert_eq!(got, ((accepting as u128 * span as u128) >> 64) as u64);
}

#[test]
fn full_width_inclusive_range_is_identity() {
    // 0..=u64::MAX cannot use Lemire (span overflows); every raw bit
    // pattern is returned as-is, one draw per sample.
    let mut a = StdRng::seed_from_u64(31);
    let mut b = StdRng::seed_from_u64(31);
    for _ in 0..200 {
        assert_eq!(a.random_range(0..=u64::MAX), b.next_u64());
    }
}

#[test]
fn u32_max_bound_agrees_across_integer_widths() {
    // The same span sampled through u32, u64, and usize ranges must make
    // identical decisions (they share one u64-space implementation).
    let span = u32::MAX;
    let mut a = StdRng::seed_from_u64(77);
    let mut b = StdRng::seed_from_u64(77);
    let mut c = StdRng::seed_from_u64(77);
    for _ in 0..1_000 {
        let x32 = a.random_range(0..span);
        let x64 = b.random_range(0..span as u64);
        let xus = c.random_range(0..span as usize);
        assert_eq!(x32 as u64, x64);
        assert_eq!(x64, xus as u64);
    }
}
