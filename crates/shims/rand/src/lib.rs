//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! small slice of the `rand` API it actually uses:
//!
//! * [`Rng`] — the dyn-safe core trait (`next_u64`); protocols take
//!   `&mut dyn Rng` so the trait must stay object-safe;
//! * [`RngExt`] — the sampling extension (`random_range`, `random_bool`),
//!   blanket-implemented for every `Rng` including `dyn Rng`;
//! * [`SeedableRng`] + [`rngs::StdRng`] — a seedable xoshiro256++ generator
//!   (SplitMix64 seeding), deterministic across platforms.
//!
//! Integer sampling uses Lemire's widening-multiply rejection method, so
//! `random_range` over integer ranges is exactly uniform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// A counter-based generator: an independent SplitMix64 output stream
    /// per `(seed, counter)` key.
    ///
    /// Where [`StdRng`] is *sequential* — each draw advances one shared
    /// 256-bit state, so draw `t + 1` cannot begin before draw `t`
    /// finishes — `CounterRng` derives its whole stream from a single
    /// 64-bit key. Streams for different counters are computed
    /// independently, so a simulation that keys one stream per time-step
    /// (`for_step(seed, t)`) can resolve the randomness of thousands of
    /// future steps in a batch with no serial dependency between them.
    /// This is the relaxed-equivalence trade of the turbo engine: the
    /// joint draw sequence is no longer bit-identical to the sequential
    /// stream, but each draw is still uniform and draws are independent
    /// across steps, which is all the process distribution depends on.
    ///
    /// The generator is SplitMix64 over a Weyl sequence: the key fixes the
    /// starting point, every draw adds the golden-ratio increment and
    /// returns the finalizer mix of the new position. SplitMix64's
    /// finalizer is a bijection on `u64`, and the full-period Weyl walk
    /// never revisits a position within 2⁶⁴ draws, so per-stream outputs
    /// are equidistributed; it passes BigCrush as seeded here. The entire
    /// state is one `u64` ([`state`](CounterRng::state) /
    /// [`from_state`](CounterRng::from_state)), so a stream can be parked
    /// in a batch buffer and resumed later for pennies.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::CounterRng;
    /// use rand::Rng;
    ///
    /// // Streams are deterministic per (seed, counter) …
    /// let mut a = CounterRng::for_step(7, 1000);
    /// let mut b = CounterRng::for_step(7, 1000);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// // … and unrelated across counters.
    /// let mut c = CounterRng::for_step(7, 1001);
    /// assert_ne!(a.next_u64(), c.next_u64());
    /// ```
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CounterRng {
        x: u64,
    }

    /// The golden-ratio Weyl increment of SplitMix64.
    pub const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// SplitMix64's finalizer: a well-mixing bijection on `u64`
    /// (Stafford's MurmurHash3 variant 13 constants).
    ///
    /// This is the counter-based randomness primitive the turbo simulation
    /// engine builds on: `splitmix64(base + t · GOLDEN)` is draw `t` of a
    /// stream with no serial dependency between draws, so a batch of
    /// draws compiles to independent straight-line arithmetic.
    #[inline]
    pub fn splitmix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    use splitmix64 as mix;

    impl CounterRng {
        /// The stream for key `(seed, counter)`.
        ///
        /// The key is hashed (not merely XORed) into the Weyl start, so
        /// related keys — consecutive counters, consecutive seeds — start
        /// at unrelated positions and low-entropy seeds are safe.
        #[inline]
        pub fn for_step(seed: u64, counter: u64) -> Self {
            // Two rounds of the finalizer over an injective combination:
            // distinct (seed, counter) pairs with counter < 2⁶³ map to
            // distinct starts (mix is a bijection and the combination
            // seed-then-counter is fed through sequentially).
            CounterRng {
                x: mix(mix(seed ^ GOLDEN).wrapping_add(counter.wrapping_mul(GOLDEN))),
            }
        }

        /// The stream for key `(seed, shard, block)` — the shard-keyed
        /// derivation the graph-partitioned engine uses.
        ///
        /// Each shard of a partitioned simulation consumes its own
        /// sequential stream per step-block; deriving the key from all
        /// three components keeps the streams of different shards (and of
        /// the same shard across blocks) unrelated, exactly like
        /// [`for_step`](Self::for_step) keeps per-step streams unrelated.
        /// The combination is injective for `shard < 2³²` and
        /// `block < 2⁶³`, and every component is hashed through the
        /// SplitMix64 finalizer so low-entropy seeds and consecutive
        /// shard/block indices start at unrelated Weyl positions.
        #[inline]
        pub fn for_shard(seed: u64, shard: u64, block: u64) -> Self {
            CounterRng {
                x: mix(
                    mix(mix(seed ^ GOLDEN).wrapping_add(shard.wrapping_mul(GOLDEN)))
                        .wrapping_add(block.wrapping_mul(GOLDEN)),
                ),
            }
        }

        /// Resumes a stream parked with [`state`](Self::state).
        #[inline]
        pub fn from_state(x: u64) -> Self {
            CounterRng { x }
        }

        /// Skips the next `draws` outputs in `O(1)`: the generator is a
        /// Weyl walk, so advancing by `k` draws is one multiply-add on the
        /// state. Lets a paused consumer (a shard resuming mid-block)
        /// realign with a stream position counted elsewhere without
        /// replaying the skipped outputs.
        #[inline]
        pub fn advance_by(&mut self, draws: u64) {
            self.x = self.x.wrapping_add(draws.wrapping_mul(GOLDEN));
        }

        /// The full generator state; feed to
        /// [`from_state`](Self::from_state) to resume the stream.
        #[inline]
        pub fn state(&self) -> u64 {
            self.x
        }

        /// The next `N` outputs as one widened batch draw, advancing the
        /// stream by `N` — output-identical to `N` sequential
        /// [`next_u64`](crate::Rng::next_u64) calls.
        ///
        /// Where `next_u64` chains each draw through the updated state,
        /// the batch form computes all `N` Weyl positions up front, so
        /// the `N` finalizer mixes are independent straight-line
        /// arithmetic the compiler can vectorize (the ensemble engine
        /// uses this to derive a register's worth of lane keys at once).
        #[inline]
        pub fn next_u64x<const N: usize>(&mut self) -> [u64; N] {
            let mut out = [0u64; N];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = mix(self.x.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)));
            }
            self.x = self.x.wrapping_add((N as u64).wrapping_mul(GOLDEN));
            out
        }
    }

    impl crate::Rng for CounterRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(GOLDEN);
            mix(self.x)
        }
    }

    impl crate::SeedableRng for CounterRng {
        fn seed_from_u64(seed: u64) -> Self {
            CounterRng::for_step(seed, 0)
        }
    }

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Statistically strong for simulation workloads, 256-bit state, and
    /// deterministic given the seed — which is all the experiment harness
    /// asks of it (it is *not* cryptographically secure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Resumes a generator parked with [`state`](Self::state).
        ///
        /// The engine snapshot surface uses this to serialize a sequential
        /// generator mid-stream: save the four state words, restore them
        /// later (possibly in another process), and the continuation is
        /// bit-identical to the uninterrupted stream.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ cannot leave
        /// (and [`seed_from_u64`](crate::SeedableRng::seed_from_u64) never
        /// produces) — a corrupted snapshot must be rejected, not resumed
        /// into a degenerate generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s != [0, 0, 0, 0],
                "xoshiro256++ cannot run from the all-zero state"
            );
            StdRng { s }
        }

        /// The full generator state; feed to
        /// [`from_state`](Self::from_state) to resume the stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                StdRng::from_state([0xDEAD_BEEF, 1, 2, 3])
            } else {
                StdRng::from_state(s)
            }
        }
    }
}

/// Exact non-uniform distributions.
pub mod distr {
    use crate::{Rng, RngExt};

    /// Mean below which inversion (BINV) beats the envelope sampler.
    const BINV_THRESHOLD: f64 = 10.0;

    /// An exact draw from `Binomial(n, p)`.
    ///
    /// Sampling is exact (up to `f64` rounding in the acceptance
    /// arithmetic, the same caveat as every floating-point implementation
    /// of these algorithms): inversion (BINV) when the mean `n·min(p,1−p)`
    /// is below 10, otherwise a BTPE-style four-region envelope
    /// (triangle / parallelogram / two exponential tails, Kachitvichyanukul
    /// & Schmeiser 1988) whose acceptance test evaluates the *exact* pmf
    /// ratio `f(y)/f(mode)` by product recursion from the mode — expected
    /// `O(√(npq))` work per draw, with no Stirling approximations in the
    /// accept path. Both regimes draw variable numbers of words from
    /// `rng`, so callers that need a fixed stream layout must park the
    /// sampler on a dedicated stream.
    ///
    /// This is the primitive behind the sharded engine's multinomial
    /// count-split: a conditional-binomial chain over shard sizes splits a
    /// block's scheduled steps exactly as the old shared-schedule scan
    /// distributed them, without any per-step shared work.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability (`NaN` or outside `[0, 1]`).
    pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial probability must be in [0, 1], got {p}"
        );
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Work in the p ≤ 1/2 half-plane; mirror the draw back at the end.
        let (pp, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
        let x = if (n as f64) * pp < BINV_THRESHOLD {
            binv(rng, n, pp)
        } else {
            btpe(rng, n, pp)
        };
        if flipped {
            n - x
        } else {
            x
        }
    }

    /// Inversion by sequential search from 0 — exact, `O(np)` expected,
    /// used only below [`BINV_THRESHOLD`]. Requires `0 < p ≤ 1/2`.
    fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
        let q = 1.0 - p;
        let s = p / q;
        let a = (n as f64 + 1.0) * s;
        // q^n through the log so huge n with tiny p cannot underflow the
        // intermediate power chain.
        let r0 = ((n as f64) * q.ln()).exp();
        loop {
            let mut u = rng.random_unit();
            let mut r = r0;
            let mut x = 0u64;
            loop {
                if u <= r {
                    return x;
                }
                u -= r;
                x += 1;
                if x > n {
                    // Float starvation (r underflowed before u drained):
                    // retry with fresh uniforms rather than return n+1.
                    break;
                }
                r *= a / (x as f64) - s;
            }
        }
    }

    /// Four-region envelope rejection for `np ≥ 10`, `0 < p ≤ 1/2`: the
    /// BTPE region decomposition with the acceptance ratio computed as the
    /// exact pmf ratio `f(y)/f(m)` by recursion from the mode `m`.
    fn btpe<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
        let nf = n as f64;
        let r = p;
        let q = 1.0 - r;
        let npq = nf * r * q;
        let f_m = nf * r + r;
        let m = f_m.floor(); // the mode, as f64 (≥ 10 here)
        let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
        let xm = m + 0.5;
        let xl = xm - p1;
        let xr = xm + p1;
        let c = 0.134 + 20.5 / (15.3 + m);
        let al = (f_m - xl) / (f_m - xl * r);
        let lambda_l = al * (1.0 + 0.5 * al);
        let ar = (xr - f_m) / (xr * q);
        let lambda_r = ar * (1.0 + 0.5 * ar);
        let p2 = p1 * (1.0 + 2.0 * c);
        let p3 = p2 + c / lambda_l;
        let p4 = p3 + c / lambda_r;
        let s = r / q;
        let a = (nf + 1.0) * s;
        loop {
            let u = rng.random_unit() * p4;
            let mut v = rng.random_unit();
            let y: f64;
            if u <= p1 {
                // Triangular core: accepted outright.
                return (xm - p1 * v + u) as u64;
            } else if u <= p2 {
                // Parallelogram beside the triangle.
                let x = xl + (u - p1) / c;
                v = v * c + 1.0 - (x - xm).abs() / p1;
                if v > 1.0 {
                    continue;
                }
                y = x.floor();
            } else if u <= p3 {
                // Left exponential tail.
                y = (xl + v.ln() / lambda_l).floor();
                if y < 0.0 {
                    continue;
                }
                v *= (u - p2) * lambda_l;
            } else {
                // Right exponential tail.
                y = (xr - v.ln() / lambda_r).floor();
                if y > nf {
                    continue;
                }
                v *= (u - p3) * lambda_r;
            }
            // Exact acceptance: v ≤ f(y)/f(m), the pmf ratio by product
            // recursion from the mode (each factor is the textbook ratio
            // f(i)/f(i−1) = a/i − s).
            let yi = y as i64;
            let mi = m as i64;
            let mut f = 1.0f64;
            if mi < yi {
                for i in (mi + 1)..=yi {
                    f *= a / (i as f64) - s;
                }
            } else {
                for i in (yi + 1)..=mi {
                    f /= a / (i as f64) - s;
                }
            }
            if v <= f {
                return y as u64;
            }
        }
    }
}

/// The dyn-safe core of a random generator: a stream of `u64`s.
///
/// Kept object-safe on purpose — the simulation engine passes `&mut dyn Rng`
/// into protocol transition rules.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (taken from the high half).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value using `next` as the bit source.
    fn sample_one(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Unbiased uniform draw in `[0, span)` via Lemire's method.
///
/// The rejection threshold `(2^64 − span) mod span` — a hardware division —
/// is only computed when the low product half falls below `span`
/// (probability `span / 2^64`, i.e. effectively never at simulation spans).
/// Since `threshold < span`, a low half `≥ span` is always accepted, so the
/// accept/reject decisions — and therefore the output stream — are
/// bit-identical to the eager-threshold form.
fn uniform_below(span: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    let mut x = next();
    let mut m = (x as u128) * (span as u128);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            x = next();
            m = (x as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= u64::MAX as u128);
                let off = uniform_below(span as u64, next);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return next() as $t;
                }
                let off = uniform_below(span as u64, next);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let x = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                // Guard against rounding up to the excluded endpoint.
                if x >= self.end as f64 { self.start } else { x as $t }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (start as f64 + (end as f64 - start as f64) * unit) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Sampling helpers, blanket-implemented for every [`Rng`] (including
/// `dyn Rng`, so protocol transition rules can sample through the trait
/// object they are handed).
pub trait RngExt: Rng {
    /// A uniform draw from `range` (half-open or inclusive; integer draws
    /// are exactly uniform, float draws are uniform to 53-bit resolution).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_one(&mut next)
    }

    /// Monomorphized uniform draw in `[0, span)`.
    ///
    /// Exactly the same Lemire rejection stream as
    /// `random_range(0..span)` — identical `next_u64` consumption and
    /// identical outputs — but compiled without the `dyn FnMut` hop that
    /// `random_range` routes bit generation through, so on a concrete RNG
    /// the whole draw inlines. This is the scheduling/partner draw of the
    /// packed simulation fast path.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    #[inline]
    fn random_index(&mut self, span: usize) -> usize
    where
        Self: Sized,
    {
        assert!(span > 0, "cannot sample from empty range");
        let span = span as u64;
        let mut m = (self.next_u64() as u128) * (span as u128);
        if (m as u64) < span {
            // Rejection is possible only here; same deferred-threshold
            // decisions as `uniform_below`.
            let threshold = span.wrapping_neg() % span;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (span as u128);
            }
        }
        (m >> 64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::{CounterRng, StdRng};
    use super::*;

    #[test]
    fn counter_rng_deterministic_and_resumable() {
        let mut a = CounterRng::for_step(3, 77);
        let mut b = CounterRng::for_step(3, 77);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Park mid-stream, resume elsewhere: identical continuation.
        let parked = a.state();
        let tail: Vec<u64> = (0..20).map(|_| a.next_u64()).collect();
        let mut resumed = CounterRng::from_state(parked);
        let resumed_tail: Vec<u64> = (0..20).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn counter_rng_streams_differ_across_keys() {
        // Consecutive counters and consecutive seeds must not produce
        // overlapping or correlated prefixes.
        let prefix = |seed, counter| -> Vec<u64> {
            let mut r = CounterRng::for_step(seed, counter);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let base = prefix(0, 0);
        assert_ne!(base, prefix(0, 1));
        assert_ne!(base, prefix(1, 0));
        assert_ne!(prefix(5, 1000), prefix(5, 1001));
    }

    #[test]
    fn counter_rng_uniformity() {
        // Aggregate across many per-step streams, the way the turbo
        // engine consumes them: small-range draws must be uniform.
        let mut counts = [0u32; 7];
        let trials_per_stream = 4;
        let streams = 25_000u64;
        for t in 0..streams {
            let mut r = CounterRng::for_step(42, t);
            for _ in 0..trials_per_stream {
                counts[r.random_range(0usize..7)] += 1;
            }
        }
        let total = (streams * trials_per_stream) as f64;
        for &c in &counts {
            let frac = c as f64 / total;
            assert!((frac - 1.0 / 7.0).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn counter_rng_bit_balance() {
        // Each output bit is ~50/50 across per-step streams.
        let mut ones = [0u32; 64];
        let streams = 20_000u64;
        for t in 0..streams {
            let x = CounterRng::for_step(9, t).next_u64();
            for (bit, slot) in ones.iter_mut().enumerate() {
                *slot += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in ones.iter().enumerate() {
            let frac = c as f64 / streams as f64;
            assert!((frac - 0.5).abs() < 0.02, "bit {bit} fraction {frac}");
        }
    }

    #[test]
    fn shard_streams_are_deterministic_and_unrelated() {
        let prefix = |seed, shard, block| -> Vec<u64> {
            let mut r = CounterRng::for_shard(seed, shard, block);
            (0..8).map(|_| r.next_u64()).collect()
        };
        // Deterministic per key.
        assert_eq!(prefix(7, 3, 11), prefix(7, 3, 11));
        // Every key component matters.
        let base = prefix(7, 3, 11);
        assert_ne!(base, prefix(8, 3, 11));
        assert_ne!(base, prefix(7, 4, 11));
        assert_ne!(base, prefix(7, 3, 12));
        // Consecutive shards and blocks do not overlap either.
        assert_ne!(prefix(0, 0, 0), prefix(0, 1, 0));
        assert_ne!(prefix(0, 0, 0), prefix(0, 0, 1));
    }

    #[test]
    fn advance_by_matches_sequential_draws() {
        for skip in [0u64, 1, 2, 63, 1000] {
            let mut a = CounterRng::for_shard(5, 2, 9);
            let mut b = CounterRng::for_shard(5, 2, 9);
            for _ in 0..skip {
                a.next_u64();
            }
            b.advance_by(skip);
            assert_eq!(a, b, "skip {skip}");
            assert_eq!(a.next_u64(), b.next_u64(), "skip {skip}");
        }
    }

    #[test]
    fn next_u64x_matches_sequential_draws() {
        // The widened batch draw is a pure reshaping of the stream: same
        // outputs, same end state as N sequential next_u64 calls.
        let mut seq = CounterRng::for_shard(5, 2, 9);
        let mut batch = CounterRng::for_shard(5, 2, 9);
        let expected: Vec<u64> = (0..8).map(|_| seq.next_u64()).collect();
        assert_eq!(batch.next_u64x::<8>().to_vec(), expected);
        assert_eq!(seq, batch, "batch draw must advance the state by N");
        assert_eq!(seq.next_u64(), batch.next_u64());
        // Degenerate widths behave too.
        let before = batch;
        let mut b = batch;
        assert_eq!(b.next_u64x::<0>(), [0u64; 0]);
        assert_eq!(b, before);
        let mut one = batch;
        let mut next = batch;
        assert_eq!(one.next_u64x::<1>()[0], next.next_u64());
    }

    #[test]
    fn lane_streams_start_unrelated_bitwise() {
        // Adjacent for_shard lanes must not share low-bit structure: the
        // ensemble engine keys one partner/aux stream per SIMD lane this
        // way, and any cross-lane bit correlation would couple replicas.
        // (The distributional chi-square version of this check lives in
        // pp-stats' counter_stream_independence test.)
        let draws = 4_096;
        for lane in 0..4u64 {
            let mut a = CounterRng::for_shard(33, lane, 0);
            let mut b = CounterRng::for_shard(33, lane + 1, 0);
            let mut agree = [0u32; 64];
            for _ in 0..draws {
                let x = a.next_u64() ^ b.next_u64();
                for (bit, slot) in agree.iter_mut().enumerate() {
                    *slot += ((x >> bit) & 1) as u32;
                }
            }
            for (bit, &c) in agree.iter().enumerate() {
                let frac = c as f64 / draws as f64;
                assert!(
                    (frac - 0.5).abs() < 0.05,
                    "lanes {lane}/{} bit {bit} xor fraction {frac}",
                    lane + 1
                );
            }
        }
    }

    #[test]
    fn counter_rng_seedable() {
        let mut a = CounterRng::seed_from_u64(11);
        let mut b = CounterRng::for_step(11, 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_draws_are_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn random_index_matches_random_range_stream() {
        // Same algorithm ⇒ same draws from the same RNG state, for spans
        // with and without Lemire rejection.
        for span in [1usize, 2, 3, 7, 10, 1000, (1 << 60) + 3] {
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            for _ in 0..500 {
                assert_eq!(a.random_index(span), b.random_range(0..span), "span {span}");
            }
            assert_eq!(a, b, "RNG states diverged for span {span}");
        }
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x = dyn_rng.random_range(0..10u32);
        assert!(x < 10);
        let _ = dyn_rng.random_bool(0.5);
    }

    /// Exact Binomial(n, p) pmf by recursion from `f(0) = q^n`.
    fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
        let q = 1.0 - p;
        let s = p / q;
        let a = (n as f64 + 1.0) * s;
        let mut pmf = Vec::with_capacity(n as usize + 1);
        let mut f = ((n as f64) * q.ln()).exp();
        pmf.push(f);
        for x in 1..=n {
            f *= a / (x as f64) - s;
            pmf.push(f);
        }
        pmf
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(distr::binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(distr::binomial(&mut rng, 50, 0.0), 0);
        assert_eq!(distr::binomial(&mut rng, 50, 1.0), 50);
        assert!(distr::binomial(&mut rng, 1, 0.5) <= 1);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn binomial_rejects_non_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        distr::binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn binomial_draws_stay_in_range_and_track_mean() {
        // Covers both regimes (BINV below mean 10, the envelope above) and
        // the p > 1/2 mirror.
        for &(n, p) in &[
            (40u64, 0.1f64),
            (40, 0.9),
            (1_000, 0.003),
            (1_000, 0.35),
            (16_384, 0.25),
            (16_384, 0.75),
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let trials = 20_000u64;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let x = distr::binomial(&mut rng, n, p);
                assert!(x <= n, "draw {x} above n = {n}");
                sum += x as f64;
                sumsq += (x as f64) * (x as f64);
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
            // 6-sigma bands on the empirical mean and a loose band on the
            // variance: deterministic given the seed, so never flaky.
            assert!(
                (mean - em).abs() < 6.0 * (ev / trials as f64).sqrt(),
                "n={n} p={p}: mean {mean} vs {em}"
            );
            assert!(
                (var - ev).abs() < 0.1 * ev,
                "n={n} p={p}: var {var} vs {ev}"
            );
        }
    }

    #[test]
    fn binomial_matches_exact_pmf_by_chi_square() {
        // Chi-square of the empirical histogram against the exact pmf,
        // buckets merged so every expected count is ≥ 10. One case per
        // sampling regime. Deterministic seeds keep the statistic fixed;
        // the thresholds sit at roughly the 10⁻³ tail of chi²(df) for the
        // resulting bucket counts, so a systematic bias fails loudly.
        for &(n, p, seed) in &[(60u64, 0.08f64, 11u64), (2_048, 0.3, 12), (512, 0.7, 13)] {
            let trials = 40_000u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..trials {
                counts[distr::binomial(&mut rng, n, p) as usize] += 1;
            }
            let pmf = binomial_pmf(n, p);
            // Merge outcomes into buckets of expected mass ≥ 10 draws.
            let mut stat = 0.0;
            let mut buckets = 0usize;
            let (mut obs, mut exp) = (0.0f64, 0.0f64);
            for x in 0..=n as usize {
                obs += counts[x] as f64;
                exp += pmf[x] * trials as f64;
                if exp >= 10.0 && (trials as f64 - exp) >= 10.0 {
                    stat += (obs - exp) * (obs - exp) / exp;
                    buckets += 1;
                    obs = 0.0;
                    exp = 0.0;
                }
            }
            if exp > 0.0 {
                stat += (obs - exp) * (obs - exp) / exp;
                buckets += 1;
            }
            let df = (buckets - 1).max(1) as f64;
            // chi² p≈10⁻³ critical value ≈ df + 3.1·√(2df) + 4 for the df
            // range these grids produce.
            let critical = df + 3.1 * (2.0 * df).sqrt() + 4.0;
            assert!(
                stat < critical,
                "n={n} p={p}: chi-square {stat:.1} over {buckets} buckets \
                 (critical {critical:.1})"
            );
        }
    }

    #[test]
    fn binomial_is_deterministic_given_the_stream() {
        let mut a = CounterRng::for_shard(9, u64::MAX, 4);
        let mut b = CounterRng::for_shard(9, u64::MAX, 4);
        for _ in 0..200 {
            assert_eq!(
                distr::binomial(&mut a, 16_384, 0.23),
                distr::binomial(&mut b, 16_384, 0.23)
            );
        }
        assert_eq!(a, b, "identical draws must consume identical words");
    }
}
