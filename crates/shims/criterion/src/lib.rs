//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this crate vendors the subset of
//! criterion's API the workspace's benches use: groups, `bench_function`,
//! `bench_with_input`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! adaptive wall-clock loop (warm-up, then batches until ~0.25 s of
//! samples); results are printed as `ns/iter` plus derived throughput.
//! Set `CRITERION_QUICK=1` to cap measurement at a single batch for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation: converts time-per-iteration into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher<'a> {
    elapsed: &'a mut Duration,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `f`, adaptively choosing the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call.
        let _ = f();
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        let target = if quick {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(250)
        };
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while total < target && iters < 1_000_000 {
            let t0 = Instant::now();
            for _ in 0..batch {
                let _ = f();
            }
            total += t0.elapsed();
            iters += batch;
            if quick {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 16);
        }
        *self.elapsed = total;
        *self.iters = iters;
    }
}

fn report(id: &str, elapsed: Duration, iters: u64, throughput: Option<Throughput>) {
    let per_iter_ns = if iters == 0 {
        0.0
    } else {
        elapsed.as_nanos() as f64 / iters as f64
    };
    let rate = match throughput {
        Some(Throughput::Elements(e)) if per_iter_ns > 0.0 => {
            format!("  ({:.3e} elem/s)", e as f64 / (per_iter_ns * 1e-9))
        }
        Some(Throughput::Bytes(b)) if per_iter_ns > 0.0 => {
            format!("  ({:.3e} B/s)", b as f64 / (per_iter_ns * 1e-9))
        }
        _ => String::new(),
    };
    println!("bench: {id:<50} {per_iter_ns:>14.1} ns/iter{rate}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut elapsed = Duration::ZERO;
        let mut iters = 0;
        f(&mut Bencher {
            elapsed: &mut elapsed,
            iters: &mut iters,
        });
        report(
            &format!("{}/{}", self.name, id.id),
            elapsed,
            iters,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut elapsed = Duration::ZERO;
        let mut iters = 0;
        f(
            &mut Bencher {
                elapsed: &mut elapsed,
                iters: &mut iters,
            },
            input,
        );
        report(
            &format!("{}/{}", self.name, id.id),
            elapsed,
            iters,
            self.throughput,
        );
        self
    }

    /// Ends the group (separator line, matching criterion's API shape).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut elapsed = Duration::ZERO;
        let mut iters = 0;
        f(&mut Bencher {
            elapsed: &mut elapsed,
            iters: &mut iters,
        });
        report(id, elapsed, iters, None);
        self
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_env() {
        std::env::set_var("CRITERION_QUICK", "1");
    }

    #[test]
    fn group_benches_run() {
        quick_env();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn macros_compile() {
        quick_env();
        fn one(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, one);
        benches();
    }
}
